//! Offline stand-in for `serde`.
//!
//! Provides `Serialize` / `Deserialize` as marker traits with blanket
//! impls, plus the no-op derive macros from the `serde_derive` shim.
//! This keeps every `#[derive(Serialize, Deserialize)]` and
//! `T: Serialize` bound in the workspace compiling without network
//! access. No runtime serialization is performed anywhere in the
//! workspace, so no serializer machinery is needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches
//! use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros) backed by a simple wall-clock timer.
//! No statistics, plots or baselines — just median-of-samples timing
//! printed to stdout, enough for `cargo bench` to run and for relative
//! comparisons during development.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `"name/param"`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, recording several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for ~2 ms per sample, capped for slow bodies.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2] / u32::try_from(self.iters_per_sample.max(1)).unwrap_or(1)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.name, &b);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut b);
        self.report(&name.to_string(), &b);
        self
    }

    fn report(&self, name: &str, b: &Bencher) {
        let per_iter = b.median_per_iter();
        let mut line = format!("{}/{name}: {per_iter:?}/iter", self.name);
        if let Some(tp) = self.throughput {
            let ns = per_iter.as_nanos().max(1) as f64;
            match tp {
                Throughput::Bytes(n) => {
                    let mbps = n as f64 / ns * 1e9 / (1024.0 * 1024.0);
                    line.push_str(&format!(" ({mbps:.1} MiB/s)"));
                }
                Throughput::Elements(n) => {
                    let eps = n as f64 / ns * 1e9;
                    line.push_str(&format!(" ({eps:.0} elem/s)"));
                }
            }
        }
        println!("{line}");
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group_name = name.to_string();
        self.benchmark_group(&group_name).bench_function("", f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

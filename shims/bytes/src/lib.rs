//! Offline stand-in for the `bytes` crate.
//!
//! Implements the small slice of the `Bytes` API the workspace uses:
//! an immutable, cheaply cloneable byte buffer backed by `Arc<[u8]>`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// visible to the caller (this shim copies into an `Arc`).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length of the buffer in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the contents as a byte slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(&[1u8, 2, 3][..]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(&*a, &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"hi").to_vec(), b"hi".to_vec());
    }
}

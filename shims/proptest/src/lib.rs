//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait (ranges, tuples, `prop_map`,
//! [`Just`], `prop_oneof!`, collections, `sample::select`), the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case number; re-runs
//!   are deterministic, so the failure reproduces exactly.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test function's name via FNV-1a, so runs are reproducible across
//!   machines and never read OS entropy (matching the workspace's
//!   determinism policy).

use std::ops::Range;

/// Deterministic xoshiro256++ generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Seeds the generator through SplitMix64.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Why a single generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The inputs did not satisfy a `prop_assume!`; try another case.
    Reject,
}

/// Result type each generated case evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of values for property tests.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous composition
    /// (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric values; adequate for property tests.
        (rng.next_f64() - 0.5) * 2e12
    }
}

/// Strategy for any value of `T` (via [`Arbitrary`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.clone()).generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>`; size is a *target* (duplicate
    /// draws collapse, exactly like the real crate).
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates hash sets with up to `size.end - 1` elements.
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let len = (self.size.clone()).generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Picks one of `options` uniformly; panics on an empty list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a hash of a test name, used as its deterministic RNG seed.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` over `cases` generated inputs. Used by [`proptest!`].
pub fn run_cases<F>(test_name: &str, cases: u32, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::seed_from(seed_for(test_name));
    let mut executed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = cases.saturating_mul(8).max(1024);
    while executed < cases {
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at case {executed}: {msg}")
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    /// Alias matching `proptest::prelude`'s `prop` re-export.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}", l, r);
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// expands to a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config).cases; $($rest)*);
    };
    (@run $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), $cases, |rng| {
                $(let $pat = $crate::Strategy::generate(&($strategy), rng);)*
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default().cases; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_and_just_work(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }

        #[test]
        fn assume_discards(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::seed_from(super::seed_for("t"));
        let mut b = super::TestRng::seed_from(super::seed_for("t"));
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build
//! environment, and nothing in the workspace actually serializes at
//! runtime — the `#[derive(Serialize, Deserialize)]` annotations exist
//! so downstream tooling *can* serialize reports later. This no-op
//! derive accepts the same syntax (including `#[serde(...)]` helper
//! attributes) and emits no code; the sibling `serde` shim provides
//! blanket trait impls so bounds keep resolving.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

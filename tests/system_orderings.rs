//! Integration tests: the qualitative results of the paper's
//! evaluation hold in reduced-scale simulations.
//!
//! These tests run the system simulator at 1/3 to full scale and assert
//! the *shape* of Figures 10-13: who wins, roughly by what factor, and
//! where the multiplexing benefit saturates.

use neofog::prelude::*;

fn run(system: SystemKind, scenario: Scenario, seed: u64, slots: u64) -> SimResult {
    let mut cfg = SimConfig::paper_default(system, scenario, seed);
    cfg.slots = slots;
    Simulator::new(cfg).expect("valid config").run()
}

#[test]
fn figure10_ordering_neofog_nvp_vp() {
    // Average over three profiles to wash out seed luck.
    let mut totals = [0u64; 3];
    let mut fogs = [0u64; 3];
    for seed in 1..=3 {
        for (k, system) in SystemKind::ALL.iter().enumerate() {
            let r = run(*system, Scenario::ForestIndependent, seed, 500);
            totals[k] += r.metrics.total_processed();
            fogs[k] += r.metrics.fog_processed();
        }
    }
    let [vp, nvp, neo] = totals;
    assert!(nvp > vp, "NVP ({nvp}) should beat VP ({vp})");
    assert!(neo > nvp, "NEOFog ({neo}) should beat NVP ({nvp})");
    // Paper: 2.8X over VP, 2.0X over NVP (we land slightly lower).
    let neo_f = neo as f64;
    assert!(neo_f / vp as f64 > 1.5, "NEO/VP {}", neo_f / vp as f64);
    assert!(neo_f / nvp as f64 > 1.4, "NEO/NVP {}", neo_f / nvp as f64);
    // VP does no fog processing; NVP systems do mostly fog.
    assert_eq!(fogs[0], 0);
    assert!(fogs[2] as f64 > 0.9 * neo_f);
}

#[test]
fn figure11_dependent_gains_are_smaller_but_present() {
    let mut dep = [0u64; 3];
    for seed in 1..=3 {
        for (k, system) in SystemKind::ALL.iter().enumerate() {
            dep[k] += run(*system, Scenario::BridgeDependent, seed, 500)
                .metrics
                .total_processed();
        }
    }
    assert!(dep[2] > dep[1] && dep[1] > dep[0], "{dep:?}");
    // Paper: 2.1X / 1.7X for the dependent case.
    let gain_vp = dep[2] as f64 / dep[0] as f64;
    assert!((1.4..=3.5).contains(&gain_vp), "NEO/VP dependent {gain_vp}");
}

#[test]
fn wakeup_counts_vp_higher_than_nvp() {
    // The NVP's higher activation threshold costs it wakeups (paper:
    // 13656 vs 12383).
    let vp = run(SystemKind::NosVp, Scenario::ForestIndependent, 2, 500);
    let nvp = run(SystemKind::NosNvp, Scenario::ForestIndependent, 2, 500);
    assert!(vp.metrics.total_wakeups() >= nvp.metrics.total_wakeups());
    // Wakeups plus failures account for every scheduled slot.
    let m = &vp.metrics;
    assert_eq!(m.total_wakeups() + m.total_failures(), 500 * 10);
}

#[test]
fn figure12_sunny_multiplexing_adds_little() {
    let mut fogs = Vec::new();
    for factor in [1u32, 3] {
        let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::MountainSunny, 4);
        cfg.multiplex = factor;
        cfg.slots = 500;
        fogs.push(
            Simulator::new(cfg)
                .expect("valid config")
                .run()
                .metrics
                .fog_processed(),
        );
    }
    // High power: the in-fog rate is already high; 3x multiplexing
    // gains far less than 2x (the paper shows "minimal gains").
    let gain = fogs[1] as f64 / fogs[0].max(1) as f64;
    assert!(gain < 1.8, "sunny multiplex gain {gain}");
}

#[test]
fn figure13_rainy_multiplexing_doubles_then_saturates() {
    let mut fogs = Vec::new();
    for factor in [1u32, 3, 5] {
        let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::MountainRainy, 4);
        cfg.multiplex = factor;
        cfg.slots = 750;
        fogs.push(
            Simulator::new(cfg)
                .expect("valid config")
                .run()
                .metrics
                .fog_processed(),
        );
    }
    let g3 = fogs[1] as f64 / fogs[0].max(1) as f64;
    let g5 = fogs[2] as f64 / fogs[1].max(1) as f64;
    assert!(
        g3 > 1.6,
        "3x should roughly double in-fog processing, got {g3:.2}"
    );
    assert!(
        g5 < g3,
        "growth should slow beyond 3x: g3={g3:.2} g5={g5:.2}"
    );
}

#[test]
fn rainy_sampling_tops_out_below_ideal() {
    // Paper: "total successful sampling under the reduced power
    // conditions reduces to 8000" (of 15000).
    let r = run(SystemKind::FiosNeoFog, Scenario::MountainRainy, 4, 1500);
    let captured = r.metrics.total_captured();
    assert!(
        (6500..=9500).contains(&captured),
        "rainy captured {captured} should be near the paper's 8000"
    );
}

#[test]
fn neofog_spends_radio_budget_on_compute_instead() {
    let vp = run(SystemKind::NosVp, Scenario::ForestIndependent, 1, 500);
    let neo = run(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 1, 500);
    assert!(
        neo.metrics.total_radio_energy() < vp.metrics.total_radio_energy() * 0.2,
        "NVRF should slash radio energy"
    );
    assert!(neo.metrics.total_compute_energy() > vp.metrics.total_compute_energy());
}

#[test]
fn figure9_vp_hoards_stored_energy() {
    // Figure 9: the VP without load balancing keeps its capacitor far
    // fuller than balanced NVP nodes, which convert the same income
    // into fog work instead.
    let results = neofog::core::experiment::figure9(1, None).expect("figure9 runs");
    let mean = |m: &neofog::core::NetworkMetrics| -> f64 {
        let values: Vec<f32> = m
            .nodes
            .iter()
            .take(3)
            .flat_map(|n| n.stored_series.iter().copied())
            .collect();
        values.iter().map(|&v| f64::from(v)).sum::<f64>() / values.len() as f64
    };
    let vp = mean(&results[0].1);
    let tree = mean(&results[1].1);
    let dist = mean(&results[2].1);
    assert!(vp > 3.0 * tree, "VP {vp:.1} vs tree-balanced {tree:.1}");
    assert!(vp > 3.0 * dist, "VP {vp:.1} vs distributed {dist:.1}");
}

#[test]
fn headline_gains_exceed_paper_baseline() {
    // The abstract: 4.2X in-fog at baseline, 8X at 3X multiplexing.
    // Our NOS-VP baseline is weaker in rain, so the measured gains sit
    // above the paper's; assert they at least clear the paper's bar.
    let h = neofog::core::experiment::headline(3).expect("headline runs");
    assert!(
        h.baseline_gain > 4.0,
        "baseline gain {:.1}",
        h.baseline_gain
    );
    assert!(h.multiplexed_gain > h.baseline_gain);
}

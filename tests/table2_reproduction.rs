//! Integration test: the energy model reproduces Table 2 of the paper
//! exactly (to the printed precision), spanning the workloads, sensors
//! and rf crates.

use neofog::rf::RfTimings;
use neofog::workloads::App;

#[test]
fn naive_energies_to_the_digit() {
    let expect_compute = [1366.86, 1153.68, 140.448, 1196.316, 4188.36];
    let expect_tx = [22_809.6, 5_702.4, 5_702.4, 17_107.2, 2_851.2];
    for ((app, c), t) in App::ALL.iter().zip(expect_compute).zip(expect_tx) {
        let row = app.energy_row();
        assert!(
            (row.naive_compute.as_nanojoules() - c).abs() < 1e-6,
            "{app:?} compute"
        );
        assert!(
            (row.naive_tx.as_nanojoules() - t).abs() < 1e-6,
            "{app:?} tx"
        );
    }
}

#[test]
fn tx_energy_column_is_radio_airtime() {
    // The Table 2 TX column equals the rf crate's on-air model:
    // payload bytes x 2851.2 nJ.
    let rf = RfTimings::paper_default();
    for app in App::ALL {
        let row = app.energy_row();
        let air = rf.on_air_energy(app.payload_bytes());
        assert!(
            (row.naive_tx.as_nanojoules() - air.as_nanojoules()).abs() < 1e-9,
            "{app:?}"
        );
    }
}

#[test]
fn savings_match_paper_within_rounding() {
    let expect = [-55.2, -48.8, -57.1, -54.9, -24.1];
    for (app, pct) in App::ALL.iter().zip(expect) {
        let row = app.energy_row();
        let got = row.energy_saved_ratio * 100.0;
        assert!(
            (got - pct).abs() < 0.15,
            "{app:?}: {got:.2}% vs paper {pct}%"
        );
    }
}

#[test]
fn compute_ratios_match_paper() {
    let naive = [5.65, 16.8, 2.4, 6.53, 59.5];
    let buffered = [92.2, 94.1, 91.5, 92.7, 98.5];
    for ((app, n), b) in App::ALL.iter().zip(naive).zip(buffered) {
        let row = app.energy_row();
        assert!(
            (row.naive_compute_ratio * 100.0 - n).abs() < 0.1,
            "{app:?} naive"
        );
        assert!(
            (row.buffered_compute_ratio * 100.0 - b).abs() < 0.1,
            "{app:?} buffered"
        );
    }
}

#[test]
fn compression_stays_in_the_paper_band() {
    // §5.1: "reduce the data size to 3% - 14.5% of its original".
    for app in App::ALL {
        let ratio = app.compression_ratio();
        assert!((0.028..=0.145).contains(&ratio), "{app:?}: {ratio}");
    }
}

#[test]
fn instruction_energy_comes_from_the_nvp_model() {
    // 2.508 nJ/inst = 0.209 mW x 12 cycles @ 1 MHz.
    let spec = neofog::nvp::ProcSpec::paper_nvp();
    for app in App::ALL {
        let via_model = spec.execution_energy(app.naive_instructions());
        let row = app.energy_row();
        assert!((via_model.as_nanojoules() - row.naive_compute.as_nanojoules()).abs() < 1e-6);
    }
}

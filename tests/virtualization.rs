//! Integration tests for NVD4Q virtualization across crates: NVRF
//! state cloning, slot partitioning and simulator behaviour.

use neofog::core::nvd4q::{CloneSet, VirtualizationManager};
use neofog::prelude::*;
use neofog::types::LogicalId;

#[test]
fn join_protocol_builds_a_working_clone_set() {
    let mut mgr = VirtualizationManager::new();
    mgr.add_set(CloneSet::new(LogicalId::new(0), vec![NodeId::new(0)]));
    let mut veteran = NvRf::paper_default();
    veteran.initialize(RfConfig::new(7));

    // Two newcomers join in sequence (Algorithm 2 lines 1-4).
    let mut rf1 = NvRf::paper_default();
    let mut rf2 = NvRf::paper_default();
    mgr.join(LogicalId::new(0), NodeId::new(1), &mut rf1, &veteran)
        .unwrap();
    mgr.join(LogicalId::new(0), NodeId::new(2), &mut rf2, &veteran)
        .unwrap();

    let set = mgr.set_of(NodeId::new(2)).unwrap();
    assert_eq!(set.factor(), 3);
    // Exactly one member on duty at every slot.
    for slot in 0..30u64 {
        let on_duty: Vec<_> = set
            .members
            .iter()
            .zip(&set.schedules)
            .filter(|(_, s)| s.wakes_at(slot))
            .collect();
        assert_eq!(on_duty.len(), 1, "slot {slot}");
    }
    // Clones carry the veteran's network identity.
    assert_eq!(rf1.config().unwrap().network_epoch, 7);
    assert_eq!(rf2.config().unwrap().network_epoch, 7);
    // A clone survives power failure with its configuration intact —
    // the property that makes the whole scheme viable.
    rf2.power_failure();
    assert!(rf2.is_ready());
}

#[test]
fn multiplexed_simulation_halves_per_node_duty() {
    let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::MountainSunny, 8);
    cfg.multiplex = 2;
    cfg.slots = 400;
    let result = Simulator::new(cfg).expect("valid config").run();
    let m = &result.metrics;
    assert_eq!(m.nodes.len(), 20);
    for (i, node) in m.nodes.iter().enumerate() {
        assert!(
            node.wakeups + node.failures <= 200,
            "clone {i} scheduled more than 1/2 of slots"
        );
    }
    // The logical network still captures at (almost) the full rate.
    assert!(
        m.total_captured() > 3_600,
        "captured {}",
        m.total_captured()
    );
}

#[test]
fn virtualization_does_not_change_logical_hops() {
    // NVD4Q's contrast with naive densification (Figure 7): the
    // simulated chain keeps `positions` logical hops regardless of M.
    for factor in [1u32, 4] {
        let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::MountainSunny, 2);
        cfg.multiplex = factor;
        cfg.slots = 200;
        let result = Simulator::new(cfg).expect("valid config").run();
        // Delivery ratio is governed by the 10-position chain loss, so
        // it must not degrade with physical density.
        assert!(result.metrics.total_processed() > 0);
    }
}

#[test]
fn uniform_manager_matches_simulator_layout() {
    let mgr = VirtualizationManager::uniform(10, 3);
    assert_eq!(mgr.physical_count(), 30);
    // Physical ids group consecutively per logical position, the same
    // convention the simulator uses.
    let set = mgr.set_of(NodeId::new(17)).unwrap();
    assert_eq!(set.logical, LogicalId::new(5));
}

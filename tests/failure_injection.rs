//! Integration tests: failure modes degrade performance, never
//! functionality (paper §3.2 and §4).

use neofog::core::balance::{DistributedBalancer, FogTask, LoadBalancer, NodeBalanceState};
use neofog::core::sim::BalancerKind;
use neofog::net::{ChainMesh, ChainRouter};
use neofog::prelude::*;
use neofog::types::ChainId;

#[test]
fn chain_survives_relay_death_and_recovery() {
    // The paper's A->B->C orphan-scan walkthrough, at chain scale.
    let mesh = ChainMesh::single_chain(10, 15.0);
    let mut router = ChainRouter::new(&mesh);
    // Kill three interior relays.
    for id in [2u32, 5, 6] {
        router.mark_dead(NodeId::new(id));
    }
    let route = router
        .route_to_sink(ChainId::new(0), NodeId::new(9))
        .unwrap();
    assert_eq!(route.skipped, 3);
    assert_eq!(route.path.len(), 6);
    // Everyone recovers; the original chain re-forms.
    for id in [2u32, 5, 6] {
        router.mark_alive(NodeId::new(id));
    }
    let route = router
        .route_to_sink(ChainId::new(0), NodeId::new(9))
        .unwrap();
    assert_eq!(route.skipped, 0);
    assert_eq!(route.path.len(), 9);
    assert_eq!(router.orphan_scans(), 3);
    assert_eq!(router.rejoins(), 3);
}

#[test]
fn interrupted_balancing_affects_performance_not_functionality() {
    // A chain where every node is too weak to run the exchange: the
    // balancer must leave all queues untouched and report the
    // interruptions (paper: "no load balance will take place at that
    // region. This failure affects performance, but not functionality").
    let nodes: Vec<NodeBalanceState> = (0..6)
        .map(|i| NodeBalanceState {
            node: NodeId::new(i),
            spare_energy: Energy::from_microjoules(5.0), // below exchange cost
            efficiency: 1.0 / 2.508,
            throughput: 83_333.0,
            tasks: vec![FogTask::new(500_000, u64::from(i))],
            alive: true,
        })
        .collect();
    let mut chain = neofog::core::balance::ChainBalanceInput { nodes };
    let before = chain.clone();
    let report = DistributedBalancer::new(60).balance(&mut chain, &mut SimRng::seed_from(1));
    assert_eq!(report.tasks_moved, 0);
    assert!(report.interrupted_regions > 0);
    assert_eq!(chain, before, "queues must be untouched");
}

#[test]
fn starvation_scenario_never_panics_and_keeps_invariants() {
    // Near-zero income: everything fails energetically, nothing breaks.
    for system in SystemKind::ALL {
        let mut cfg = SimConfig::paper_default(system, Scenario::MountainRainy, 7);
        cfg.slots = 300;
        cfg.node.cap_capacity = Energy::from_millijoules(5.0);
        cfg.node.initial_charge = 0.0;
        let result = Simulator::new(cfg).expect("valid config").run();
        let m = &result.metrics;
        assert!(m.total_processed() <= m.total_captured());
        assert!(m.total_captured() <= m.total_wakeups());
        assert!(m.total_wakeups() + m.total_failures() <= 300 * 10);
    }
}

#[test]
fn packet_loss_scales_with_weather() {
    let clear = {
        let mut cfg =
            SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 5);
        cfg.slots = 400;
        Simulator::new(cfg).expect("valid config").run()
    };
    let stormy = {
        let mut cfg =
            SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 5);
        cfg.slots = 400;
        cfg.weather_loss = 0.30;
        Simulator::new(cfg).expect("valid config").run()
    };
    assert!(
        stormy.metrics.total_processed() < clear.metrics.total_processed(),
        "storm loss must cost deliveries: {} vs {}",
        stormy.metrics.total_processed(),
        clear.metrics.total_processed()
    );
}

#[test]
fn volatile_nodes_drop_undelivered_work() {
    let mut cfg = SimConfig::paper_default(SystemKind::NosVp, Scenario::ForestIndependent, 3);
    cfg.slots = 300;
    let result = Simulator::new(cfg).expect("valid config").run();
    let m = &result.metrics;
    // A VP can only deliver what it transmits in the same slot; the
    // rest evaporates at power-down.
    assert!(m.total_dropped() > 0);
    assert_eq!(m.total_captured(), m.total_processed() + m.total_dropped());
}

#[test]
fn balancer_misconfiguration_is_harmless() {
    // Running the VP system with a balancer configured is a no-op (it
    // has no fog tasks), not a crash.
    let mut cfg = SimConfig::paper_default(SystemKind::NosVp, Scenario::ForestIndependent, 9);
    cfg.balancer = BalancerKind::Distributed;
    cfg.slots = 200;
    let result = Simulator::new(cfg).expect("valid config").run();
    assert_eq!(result.metrics.balance_tasks_moved, 0);
    assert_eq!(result.metrics.fog_processed(), 0);
}

//! Integration test: the full FIOS data path with the *real* kernels —
//! sense → NV-buffer → process → compress → packetize → lossy link →
//! decompress — is lossless and preserves the application result.

use neofog::net::LinkLayer;
use neofog::prelude::*;
use neofog::rf::{LossModel, Packet, PacketKind};
use neofog::sensors::{SensorKind, SignalGenerator};
use neofog::types::PacketId;
use neofog::workloads::compress::{compress, decompress};
use neofog::workloads::pattern::{bytes_to_signal, find_matches};
use neofog::workloads::strength::{assess_strength, CableSpec, Environment};

fn beat_template() -> Vec<f64> {
    (0..60)
        .map(|t| {
            let t = f64::from(t);
            if t < 6.0 {
                100.0 * (std::f64::consts::PI * t / 6.0).sin()
            } else if t < 40.0 {
                15.0 * (std::f64::consts::PI * (t - 6.0) / 34.0).sin()
            } else {
                0.0
            }
        })
        .collect()
}

#[test]
fn ecg_batch_round_trips_through_the_whole_stack() {
    // Sense into the NV buffer.
    let mut gen = SignalGenerator::new(SensorKind::EcgFrontend, 31);
    let batch = gen.generate(8192);
    let mut buffer = NvBuffer::new(8192);
    for _ in &batch {
        buffer.push(1).unwrap();
    }
    assert!(buffer.is_full());

    // Process at the edge: count beats before shipping.
    let beats_at_edge = find_matches(&bytes_to_signal(&batch), &beat_template(), 0.8).len();
    assert!(
        beats_at_edge > 30,
        "expected beats in 8192 samples, got {beats_at_edge}"
    );

    // Compress and packetize.
    let packed = compress(&batch);
    assert!(packed.len() < batch.len() / 6, "ratio {}", packed.len());
    let pkt = Packet::with_payload(
        PacketId::new(1),
        NodeId::new(5),
        NodeId::new(0),
        PacketKind::Processed,
        bytes::Bytes::from(packed),
    );

    // Ship over a lossless link (loss statistics are tested elsewhere).
    let mut link = LinkLayer::new(LossModel::with_success(1.0));
    let mut rng = SimRng::seed_from(1);
    assert!(link.send(pkt, &mut rng));
    let delivered = link.collect(NodeId::new(0));
    assert_eq!(delivered.len(), 1);

    // The sink decompresses and reproduces the edge result exactly.
    let restored = decompress(&delivered[0].payload).unwrap();
    assert_eq!(restored, batch, "lossless end to end");
    let beats_at_sink = find_matches(&bytes_to_signal(&restored), &beat_template(), 0.8).len();
    assert_eq!(beats_at_sink, beats_at_edge);
}

#[test]
fn bridge_pipeline_detects_loosened_cable() {
    // Two synthetic cables: taut (high-frequency vibration) vs slack.
    let n = 512;
    let make = |k: usize| -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * k as f64 * i as f64 / n as f64).sin())
            .collect()
    };
    let cable = CableSpec::typical();
    let env = Environment::reference();
    let taut = assess_strength(&make(24), &cable, &env);
    let slack = assess_strength(&make(6), &cable, &env);
    assert!(taut.mean_tension > slack.mean_tension * 4.0);
    assert!(taut.energy_index > slack.energy_index);
}

#[test]
fn buffered_strategy_beats_naive_for_every_app() {
    // The pipeline abstraction agrees with the Table 2 economics.
    for app in App::ALL {
        let naive = TaskPipeline::for_app(app, Strategy::Naive);
        let buffered = TaskPipeline::for_app(app, Strategy::Buffered);
        let naive_tx_per_sample = naive.total_tx_bytes() as f64 / naive.total_samples() as f64;
        let buf_tx_per_sample = buffered.total_tx_bytes() as f64 / buffered.total_samples() as f64;
        assert!(buf_tx_per_sample < 0.15 * naive_tx_per_sample, "{app:?}");
        assert_eq!(
            app.energy_row().energy_saved_ratio.signum(),
            -1.0,
            "{app:?}"
        );
    }
}

#[test]
fn sensor_payload_sizes_flow_into_packets() {
    // The rf cost of one naive sample transmission uses the sensor's
    // payload: cross-crate consistency check.
    let rf = neofog::rf::RfTimings::paper_default();
    for app in [App::UvMeter, App::WsnTemp, App::PatternMatching] {
        let spec = neofog::sensors::SensorSpec::of(app.sensor());
        assert_eq!(spec.bytes_per_sample, app.payload_bytes(), "{app:?}");
        let airtime = rf.on_air_time(spec.bytes_per_sample);
        assert_eq!(airtime.as_micros(), u64::from(spec.bytes_per_sample) * 32);
    }
}

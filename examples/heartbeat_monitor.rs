//! Heartbeat pattern matching — the paper's most compute-intensive
//! application (Table 2: 59.5 % compute share even under the naive
//! strategy), run here with the real NCC matcher on synthetic ECG.
//!
//! ```sh
//! cargo run --release --example heartbeat_monitor
//! ```

use neofog::nvp::{IntermittentEngine, PowerInterval, ProcessorKind};
use neofog::prelude::*;
use neofog::sensors::{SensorKind, SignalGenerator};
use neofog::workloads::pattern::{bytes_to_signal, find_matches};

fn main() {
    println!("Wearable heartbeat monitor — pattern matching at the edge\n");

    // 1. Buffer a stretch of ECG into the NV FIFO.
    let mut buffer = NvBuffer::new(4096);
    let mut gen = SignalGenerator::new(SensorKind::EcgFrontend, 99);
    let stream = gen.generate(4096);
    for _ in 0..4096 {
        buffer.push(1).expect("1-byte ECG samples fit");
    }
    assert!(buffer.is_full());
    println!(
        "NV buffer filled: {} samples / {} B",
        buffer.len(),
        buffer.used()
    );

    // 2. Match the stored beat template against the batch.
    let signal = bytes_to_signal(&stream);
    let template: Vec<f64> = (0..60)
        .map(|t| {
            let t = f64::from(t);
            if t < 6.0 {
                100.0 * (std::f64::consts::PI * t / 6.0).sin()
            } else if t < 40.0 {
                15.0 * (std::f64::consts::PI * (t - 6.0) / 34.0).sin()
            } else {
                0.0
            }
        })
        .collect();
    let beats = find_matches(&signal, &template, 0.8);
    let bpm = beats.len() as f64 / (4096.0 / 200.0) * 60.0 / 60.0; // 200 samples/beat metaphor
    println!(
        "matched {} beats in the batch (best score {:.3}); ~{:.0} beats/100 s of signal",
        beats.len(),
        beats.iter().map(|m| m.score).fold(0.0, f64::max),
        bpm * 100.0
    );

    // 3. The same workload on intermittent power: NVP vs VP.
    println!("\nRunning the matching task under an unstable supply (5 ms on / 20 ms off):");
    let window = PowerInterval::new(Duration::from_millis(5), Duration::from_millis(20));
    let inst = App::PatternMatching.naive_instructions();
    for kind in [ProcessorKind::Nonvolatile, ProcessorKind::Volatile] {
        let report = IntermittentEngine::new(kind).run(inst, &vec![window; 60]);
        println!(
            "  {kind:?}: completed={} retired={} lost={} cycles={} energy={}",
            report.completed, report.retired, report.lost, report.power_cycles, report.energy
        );
    }

    // 4. Strategy comparison from the calibrated model.
    let row = App::PatternMatching.energy_row();
    println!(
        "\nTable 2: buffering saves {:.1}% (least of all apps — computation already dominates at {:.1}%)",
        -row.energy_saved_ratio * 100.0,
        row.naive_compute_ratio * 100.0
    );
}

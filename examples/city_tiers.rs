//! Tiered deployment under starvation: battery sensors in heavy rain,
//! two gateways and a cloud uplink, wired as a tiered route plan with
//! the offload balancer deciding compute-here vs ship-to-gateway vs
//! ship-to-cloud per slot — including the honest downside: gateways
//! are priced as mains-powered but still execute shipped work from
//! their own harvested budget, so concentrating the fleet's backlog
//! on two rainy-trace gateways costs end-to-end delivery even as it
//! preserves sensor batteries.
//!
//! ```sh
//! cargo run --release --example city_tiers [-- --threads <n>]
//! ```
//!
//! `--threads` shards each simulation's slot kernel (`0` = all cores;
//! the result table is identical at any width — the kernel is
//! deterministic); `--seed` and `--slots` rescale the run.

use neofog::core::report::render_table;
use neofog::net::TopologySpec;
use neofog::prelude::*;
use neofog_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse_or_exit();
    println!("Tiered offload in heavy rain: 9 sensors, 2 gateways, 1 cloud — 1 hour\n");

    // The same fleet three ways: a plain chain, a chain with the
    // offload balancer (the sink is still battery-powered, so there
    // is little worth shipping), and the tier graph whose gateways
    // are mains-powered offload targets.
    let mut rows = Vec::new();
    for (label, topology, balancer) in [
        (
            "chain + distributed",
            TopologySpec::Chain,
            BalancerKind::Distributed,
        ),
        (
            "chain + offload",
            TopologySpec::Chain,
            BalancerKind::Offload,
        ),
        (
            "tiered + offload",
            TopologySpec::Tiered { gateways: 2 },
            BalancerKind::Offload,
        ),
    ] {
        let mut cfg = SimConfig::paper_default(
            SystemKind::FiosNeoFog,
            Scenario::MountainRainy,
            args.seed.unwrap_or(11),
        );
        cfg.positions = 12;
        cfg.slots = args.slots.unwrap_or(300); // 300 x 12 s = 1 hour
        cfg.topology = topology;
        cfg.balancer = balancer;
        cfg.threads = args.sim_threads();
        let result = Simulator::new(cfg).expect("valid config").run();
        let m = &result.metrics;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", result.delivery_ratio() * 100.0),
            format!("{:.0}%", m.fog_share() * 100.0),
            m.offload_decisions.to_string(),
            m.offload_shipped_tasks.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Delivered",
                "Fog share",
                "Offload decisions",
                "Tasks shipped",
            ],
            &rows,
        )
    );
    println!("\nThe tier graph gives starved sensors somewhere to send work — the");
    println!("balancer ships thousands of tasks one hop instead of holding them on");
    println!("dying batteries. The trade is visible too: offload *prices* gateway");
    println!("compute as free (mains power), but the simulated gateways still spend");
    println!("their own harvested budget executing it, and in heavy rain the two");
    println!("gateways concentrating all relay and shipped work become the");
    println!("bottleneck — shipping preserves sensor batteries, not end-to-end");
    println!("delivery. Compare `fig_mesh` in the ample forest scenario, where the");
    println!("same tier graph delivers the most of the three topologies.");
}

//! Bridge health monitoring, end to end with the *real* kernels.
//!
//! This example runs the exact fog pipeline the paper moves from the
//! cloud to the node (§3.1): combine 3-axis acceleration into the
//! cable-vertical direction, remove noise, FFT, evaluate three
//! structural-strength models, compensate for temperature/humidity,
//! average, and compress the batch before "transmission". It then
//! compares the naive and buffered strategies' energy with Table 2.
//!
//! ```sh
//! cargo run --release --example bridge_monitor
//! ```

use neofog::prelude::*;
use neofog::sensors::{SensorKind, SignalGenerator};
use neofog::workloads::app::{energy_per_instruction, energy_per_tx_byte};
use neofog::workloads::compress::{compress, decompress};
use neofog::workloads::noise::{detrend, moving_average};
use neofog::workloads::strength::{assess_strength, combine_axes, CableSpec, Environment};

fn main() {
    println!("Bridge cable health monitoring — real in-fog pipeline\n");

    // 1. Sense: synthesize a 3-axis vibration batch (one truck pass).
    let mut gen = SignalGenerator::new(SensorKind::Lis331dlh, 2024);
    let raw = gen.generate(3 * 512);
    let samples: Vec<[f64; 3]> = raw
        .chunks_exact(3)
        .map(|c| {
            [
                f64::from(c[0]) - 128.0,
                f64::from(c[1]) - 128.0,
                f64::from(c[2]) - 128.0,
            ]
        })
        .collect();
    println!("sampled {} 3-axis acceleration records", samples.len());

    // 2. Combine into the cable-vertical direction.
    let vertical = combine_axes(&samples, [0.1, 0.05, 1.0]);

    // 3. Noise removal: moving average + detrend.
    let cleaned = detrend(&moving_average(&vertical, 5));

    // 4-6. FFT + three strength models + environmental compensation.
    let cable = CableSpec::typical();
    let env = Environment {
        temperature_c: 28.0,
        humidity: 0.62,
    };
    let report = assess_strength(&cleaned, &cable, &env);
    println!("strength models:");
    println!(
        "  fundamental-frequency tension : {:>12.0} N",
        report.tension_fundamental
    );
    println!(
        "  harmonic-spacing tension      : {:>12.0} N",
        report.tension_harmonic
    );
    println!(
        "  spectral energy index         : {:>12.3}",
        report.energy_index
    );
    println!(
        "  mean tension (transmitted)    : {:>12.0} N\n",
        report.mean_tension
    );

    // 7. Compression of the full sensing batch before transmission.
    let mut batch_gen = SignalGenerator::new(SensorKind::Lis331dlh, 7);
    let batch = batch_gen.generate(65_536);
    let packed = compress(&batch);
    assert_eq!(decompress(&packed).expect("lossless"), batch);
    println!(
        "batch compression: 65536 B -> {} B ({:.1}%), lossless verified",
        packed.len(),
        packed.len() as f64 / 655.36
    );

    // 8. Compare strategies with the calibrated Table 2 model.
    let app = App::BridgeHealth;
    let row = app.energy_row();
    println!("\nTable 2 energy model for {}:", app.name());
    println!(
        "  naive    : {} inst ({:.2} nJ) + {} B TX ({:.1} nJ) per sample, compute share {:.1}%",
        row.naive_instructions,
        row.naive_compute.as_nanojoules(),
        app.payload_bytes(),
        row.naive_tx.as_nanojoules(),
        row.naive_compute_ratio * 100.0
    );
    println!(
        "  buffered : {:.1} mJ compute + {:.2} mJ TX per 64 KiB batch, compute share {:.1}%",
        row.buffered_compute.as_millijoules(),
        row.buffered_tx.as_millijoules(),
        row.buffered_compute_ratio * 100.0
    );
    println!(
        "  energy saved by buffering: {:.1}%",
        row.energy_saved_ratio * 100.0
    );
    let _ = (energy_per_instruction(), energy_per_tx_byte());

    // 9. System level: a bridge chain under dependent power (Figure 11).
    println!("\nSystem level (dependent bridge traces, 1 h):");
    for system in SystemKind::ALL {
        let mut cfg = SimConfig::paper_default(system, Scenario::BridgeDependent, 11);
        cfg.slots = 300;
        let result = Simulator::new(cfg).expect("valid config").run();
        println!(
            "  {:12} -> {:4} packages ({} fog, {} cloud)",
            system.label(),
            result.metrics.total_processed(),
            result.metrics.fog_processed(),
            result.metrics.cloud_processed()
        );
    }
}

//! Mountain-slide monitoring with NVD4Q node virtualization (§5.3):
//! the events of interest happen in heavy rain, when solar income is
//! minimal — exactly when a normally-off system goes dark.
//!
//! Demonstrates Algorithm 2 directly (NVRF state cloning + slotted
//! time-division multiplexing) and sweeps the multiplexing factor in
//! both sunny and rainy weather.
//!
//! ```sh
//! cargo run --release --example mountain_slide
//! ```

use neofog::core::nvd4q::{CloneSet, VirtualizationManager};
use neofog::core::report::render_table;
use neofog::prelude::*;
use neofog::types::LogicalId;

fn main() {
    println!("Mountain-slide monitoring — NVD4Q node virtualization\n");

    // --- Algorithm 2 in miniature: a new node joins a clone set. -----
    let mut manager = VirtualizationManager::new();
    manager.add_set(CloneSet::new(LogicalId::new(0), vec![NodeId::new(0)]));

    let mut veteran = NvRf::paper_default();
    veteran.initialize(RfConfig::new(2026));

    let mut newcomer = NvRf::paper_default();
    let cost = manager
        .join(LogicalId::new(0), NodeId::new(1), &mut newcomer, &veteran)
        .expect("join succeeds");
    println!(
        "node n1 joined logical L0 by cloning the NVRF state in {} ({}):",
        cost.time, cost.energy
    );
    let cfg = newcomer.config().expect("configured");
    println!(
        "  channel {}, network epoch {}, wakes every {} slots at phase {}\n",
        cfg.channel, cfg.network_epoch, cfg.wake_interval_ticks, cfg.phase_offset_ticks
    );
    let set = manager.set_of(NodeId::new(1)).expect("member");
    println!("clone set L0 duty cycle over six slots:");
    for slot in 0..6u64 {
        println!("  slot {slot}: {} on duty", set.active_member(slot));
    }

    // --- Weather sweep (Figures 12 and 13). --------------------------
    for (weather, scenario) in [
        ("SUNNY", Scenario::MountainSunny),
        ("RAINY", Scenario::MountainRainy),
    ] {
        println!("\n=== {weather} day, multiplexing sweep (2.5 h) ===");
        let mut rows = Vec::new();
        for factor in [1u32, 2, 3, 4] {
            let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, scenario, 9);
            cfg.multiplex = factor;
            cfg.slots = 750;
            let result = Simulator::new(cfg).expect("valid config").run();
            let m = &result.metrics;
            rows.push(vec![
                format!("{factor}00%"),
                (factor * 10).to_string(),
                m.total_captured().to_string(),
                m.fog_processed().to_string(),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["Multiplexing", "Physical nodes", "Captured", "In-fog"],
                &rows
            )
        );
    }
    println!("Sunny: the fog rate is already near its ceiling, so extra clones add little.");
    println!("Rainy: each clone accumulates energy M times longer per activation, and the");
    println!("logical topology never rebuilds (NVRF state is shared) — in-fog processing");
    println!("roughly doubles by 300% and then saturates as successful sampling tops out.");
}

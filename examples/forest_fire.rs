//! Forest fire monitoring under independent power traces (the §5.2.1
//! scenario): compares load-balancing strategies on identical NEOFog
//! hardware and shows the stored-energy dynamics.
//!
//! ```sh
//! cargo run --release --example forest_fire
//! ```

use neofog::core::report::{downsample, render_table};
use neofog::core::sim::BalancerKind;
use neofog::prelude::*;

fn main() {
    println!("Forest fire monitoring — 10-node chain, windy canopy (independent traces)\n");

    // Ablation: same FIOS/NVP/NVRF hardware, three balancers.
    let mut rows = Vec::new();
    for balancer in [
        BalancerKind::None,
        BalancerKind::Tree,
        BalancerKind::Distributed,
    ] {
        let mut cfg =
            SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 5);
        cfg.balancer = balancer;
        cfg.slots = 750; // 2.5 h
        let result = Simulator::new(cfg).expect("valid config").run();
        let m = &result.metrics;
        rows.push(vec![
            format!("{balancer:?}"),
            m.fog_processed().to_string(),
            m.total_processed().to_string(),
            m.balance_tasks_moved.to_string(),
            m.balance_transfer_hops.to_string(),
            m.balance_interruptions.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Balancer",
                "Fog",
                "Total",
                "Tasks moved",
                "Transfer hops",
                "Interrupted"
            ],
            &rows,
        )
    );

    // Stored-energy curves of the first three nodes (Figure 9 style).
    let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 5);
    cfg.slots = 750;
    cfg.trace_stored = true;
    let result = Simulator::new(cfg).expect("valid config").run();
    println!("stored energy of nodes 1-3 (mJ, sampled across 2.5 h):");
    for node in 0..3 {
        let curve = downsample(&result.metrics.nodes[node].stored_series, 20);
        let s: Vec<String> = curve.iter().map(|v| format!("{v:4.0}")).collect();
        println!("  node {}: {}", node + 1, s.join(" "));
    }
    println!("\nNodes under moving shade swing widely and independently — exactly the");
    println!("imbalance the distributed balancer exploits by shipping fog tasks to");
    println!("whichever neighbour currently sits in the sun.");
}

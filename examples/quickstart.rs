//! Quickstart: simulate one 10-node chain under all three node designs
//! and print who processed what.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use neofog::core::experiment::run_many;
use neofog::core::report::render_table;
use neofog::prelude::*;

fn main() {
    println!("NEOFog quickstart: 10-node chain, forest power traces, 1 hour\n");

    // One config per system design; run_many spreads the batch over
    // the work-stealing pool and returns results in input order.
    let configs: Vec<SimConfig> = SystemKind::ALL
        .iter()
        .map(|&system| {
            let mut cfg = SimConfig::paper_default(system, Scenario::ForestIndependent, 42);
            cfg.slots = 300; // 300 x 12 s = 1 hour
            cfg
        })
        .collect();
    let mut rows = Vec::new();
    for result in run_many(&configs).expect("batch runs") {
        let m = &result.metrics;
        rows.push(vec![
            result.config.system.label().to_string(),
            m.total_wakeups().to_string(),
            m.total_captured().to_string(),
            m.cloud_processed().to_string(),
            m.fog_processed().to_string(),
            format!("{:.0}%", m.fog_share() * 100.0),
            format!("{:.2} J", m.total_radio_energy().as_joules()),
            format!("{:.2} J", m.total_compute_energy().as_joules()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "System",
                "Wakeups",
                "Captured",
                "Cloud",
                "Fog",
                "Fog share",
                "Radio",
                "Compute"
            ],
            &rows,
        )
    );
    println!("The NEOFog node shifts energy from the radio column to the compute");
    println!("column and processes most packages at the edge instead of the cloud —");
    println!("the paper's normally-off to frequently-intermittently-on transition.");
}

//! The wearable UV meter (Table 1/2) doing real fog work: dose
//! tracking, exposure alerts, and the 8-byte summary that replaces a
//! raw sample stream.
//!
//! ```sh
//! cargo run --release --example uv_meter
//! ```

use neofog::prelude::*;
use neofog::sensors::{SensorKind, SignalGenerator};
use neofog::workloads::uvdose::{DoseTracker, Exposure, SkinType};

fn main() {
    println!("Wearable UV meter — dose tracking at the edge\n");

    // A morning outdoors: 3 hours of samples at 1 Hz from the sensor
    // model (slow drift around mid-scale).
    let mut gen = SignalGenerator::new(SensorKind::UvPhotodiode, 12);
    let samples = gen.generate(3 * 3600);

    for skin in [SkinType::I, SkinType::III, SkinType::VI] {
        let mut tracker = DoseTracker::new(skin);
        let mut alerted_at = None;
        for (i, chunk) in samples.chunks(600).enumerate() {
            tracker.ingest(chunk, 1.0);
            if alerted_at.is_none() && tracker.exposure() != Exposure::Safe {
                alerted_at = Some((i + 1) * 10);
            }
        }
        println!(
            "skin type {skin:?}: dose {:.0} J/m2 = {:.0}% MED, peak UVI {:.1}, status {:?}{}",
            tracker.dose_j_per_m2(),
            tracker.dose_fraction() * 100.0,
            tracker.peak_uvi(),
            tracker.exposure(),
            alerted_at.map_or(String::new(), |m| format!(" (first alert after {m} min)")),
        );
    }

    // What actually goes on the air: 8 summary bytes per reporting
    // interval instead of the raw stream.
    let mut tracker = DoseTracker::new(SkinType::II);
    tracker.ingest(&samples, 1.0);
    let pkt = tracker.summary_packet();
    println!(
        "\nsummary packet {:02x?} ({} B) replaces {} raw bytes ({}x reduction)",
        pkt,
        pkt.len(),
        samples.len(),
        samples.len() / pkt.len()
    );

    // And the strategy economics straight from Table 2:
    let row = App::UvMeter.energy_row();
    println!(
        "Table 2, UV meter: buffering saves {:.1}% energy; compute share {:.1}% -> {:.1}%",
        -row.energy_saved_ratio * 100.0,
        row.naive_compute_ratio * 100.0,
        row.buffered_compute_ratio * 100.0,
    );
}

//! Fleet-scale statistics on the streaming runner: run many seeded
//! copies of one chain, aggregate while simulating, and never hold
//! more than ~24 bytes per chain.
//!
//! Shows both aggregation styles:
//!
//! * the built-in fleet reducer (`run_fleet_with`), which reports the
//!   per-chain outcome distribution, and
//! * a custom [`Reduce`] implementation fed straight to `run_batch` —
//!   here a histogram of in-fog package counts, folded on the fly.
//!
//! ```sh
//! cargo run --release --example fleet_stats
//! ```

use neofog::core::fleet::run_fleet_with;
use neofog::prelude::*;

/// Buckets chains by in-fog package count, `width` packages per
/// bucket. `map` runs on the worker thread, so each chain's full
/// result is dropped there — only a `u64` reaches the fold.
struct FogHistogram {
    width: u64,
    buckets: Vec<usize>,
}

impl Reduce for FogHistogram {
    type Item = u64;
    type Output = FogHistogram;

    fn map(result: SimResult) -> u64 {
        result.metrics.fog_processed()
    }

    fn fold(&mut self, _index: usize, fog: u64) {
        let bucket = (fog / self.width) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    fn finish(self) -> FogHistogram {
        self
    }
}

fn main() -> neofog::types::Result<()> {
    let chains = 64;
    let mut base = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 1);
    base.slots = 150; // 30 simulated minutes per chain

    println!("NEOFog fleet statistics: {chains} seeded copies of a 10-node chain\n");

    // Built-in fleet aggregation: distribution of per-chain outcomes.
    // The ticker prints coarse progress to stderr while workers run.
    let fleet = run_fleet_with(
        &base,
        chains,
        &PoolConfig::default(),
        &mut StderrTicker::new("fleet"),
    )?;
    println!(
        "in-fog packages per chain: mean {:.1} ± {:.1}, p10 {:.0}, median {:.0}, p90 {:.0}",
        fleet.fog.mean, fleet.fog.std_dev, fleet.fog.p10, fleet.fog.p50, fleet.fog.p90
    );
    println!("network-wide in-fog packages: {}\n", fleet.fog_sum);

    // Custom reducer: same fleet, histogram aggregation. Results fold
    // in chain order at any worker count, so this output is stable.
    let configs: Vec<SimConfig> = (0..chains)
        .map(|k| {
            let mut cfg = base.clone();
            cfg.seed = base.seed.wrapping_add(k as u64);
            cfg
        })
        .collect();
    let hist = run_batch(
        &configs,
        FogHistogram {
            width: 25,
            buckets: Vec::new(),
        },
        &PoolConfig::default(),
        &mut NoProgress,
    )?;
    println!("histogram of in-fog packages per chain (bucket = 25 packages):");
    for (i, count) in hist.buckets.iter().enumerate().filter(|(_, c)| **c > 0) {
        println!(
            "  {:>4}..{:<4} {:24} {count}",
            i as u64 * hist.width,
            (i as u64 + 1) * hist.width,
            "#".repeat(*count),
        );
    }
    Ok(())
}

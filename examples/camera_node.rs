//! An RF-powered camera node (the WispCam row of Table 1), upgraded
//! the NEOFog way: instead of backscattering raw pixels, the NV-mote
//! buffers a tile, JPEG-compresses it in the fog, and ships the
//! residue — with the real DCT codec.
//!
//! ```sh
//! cargo run --release --example camera_node
//! ```

use neofog::prelude::*;
use neofog::rf::RfTimings;
use neofog::sensors::{SensorKind, SignalGenerator};
use neofog::workloads::dct::{decode, encode, psnr, GrayImage};

fn main() {
    println!("RF-powered camera node — fog-side JPEG-style compression\n");

    // One 64x64 tile from the LUPA1399 model.
    let (w, h) = (64usize, 64usize);
    let mut gen = SignalGenerator::new(SensorKind::Lupa1399, 77);
    let image = GrayImage::new(w, h, gen.generate(w * h));

    println!("tile: {w}x{h} = {} raw bytes", image.pixels().len());
    let rf = RfTimings::paper_default();
    let mut rows = Vec::new();
    for quality in [20u8, 50, 80, 95] {
        let packed = encode(&image, quality);
        let restored = decode(&packed).expect("valid stream");
        let fidelity = psnr(&image, &restored);
        rows.push((quality, packed.len(), fidelity));
    }
    println!("quality  bytes  ratio   PSNR    airtime(raw->packed)");
    for (q, bytes, fidelity) in rows {
        println!(
            "  q{q:<4} {bytes:6}  {:5.1}%  {fidelity:5.1} dB  {} -> {}",
            bytes as f64 / (w * h) as f64 * 100.0,
            rf.on_air_time(image.pixels().len() as u32),
            rf.on_air_time(bytes as u32),
        );
    }

    // Energy comparison: the paper's WispCam spends 15 minutes charging
    // to send three seconds of raw pixels; the NEOFog node sends ~5%.
    let raw_energy = rf.on_air_energy(image.pixels().len() as u32);
    let packed = encode(&image, 50);
    let packed_energy = rf.on_air_energy(packed.len() as u32);
    println!(
        "\non-air energy per tile: raw {} vs compressed {} ({:.1}x saved)",
        raw_energy,
        packed_energy,
        raw_energy / packed_energy
    );

    // The intermittent-computing angle: even a multi-window encode
    // completes on an NVP because the DCT state survives outages.
    let inst = App::PatternMatching.naive_instructions() * 4; // encode-sized task
    use neofog::nvp::{IntermittentEngine, PowerInterval, ProcessorKind};
    let windows =
        vec![PowerInterval::new(Duration::from_millis(20), Duration::from_millis(80)); 20];
    let nvp = IntermittentEngine::new(ProcessorKind::Nonvolatile).run(inst, &windows);
    println!(
        "encode task across 20 power windows on the NVP: completed={} over {} power cycles",
        nvp.completed, nvp.power_cycles
    );
}

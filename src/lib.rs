//! # NEOFog — Nonvolatility-Exploiting Optimizations for Fog Computing
//!
//! A full reproduction of the NEOFog system architecture (Ma et al.,
//! ASPLOS 2018) for energy-harvesting wireless sensor networks built
//! from nonvolatile processors (NVPs) and nonvolatile RF controllers
//! (NVRFs).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `neofog-types` | units, ids, errors, deterministic RNG |
//! | [`energy`] | `neofog-energy` | harvesters, power traces, supercaps, front-ends, RTC |
//! | [`nvp`] | `neofog-nvp` | VP/NVP models, intermittent execution, Spendthrift, NV buffer |
//! | [`rf`] | `neofog-rf` | software RF vs NVRF, packets, loss process |
//! | [`sensors`] | `neofog-sensors` | sensor specs, ADC, signal synthesis |
//! | [`workloads`] | `neofog-workloads` | Table-2 app models + real kernels (FFT, NCC, compression, strength models) |
//! | [`net`] | `neofog-net` | chain meshes, RTC slots, routing recovery, links |
//! | [`core`] | `neofog-core` | NOS/FIOS nodes, load balancers (Algorithm 1), NVD4Q (Algorithm 2), system simulator, experiments |
//!
//! # Quickstart
//!
//! ```
//! use neofog::core::sim::{SimConfig, Simulator};
//! use neofog::core::SystemKind;
//! use neofog::energy::Scenario;
//!
//! // A 10-node NEOFog chain in the forest scenario, 30 minutes.
//! let mut cfg = SimConfig::paper_default(
//!     SystemKind::FiosNeoFog,
//!     Scenario::ForestIndependent,
//!     42,
//! );
//! cfg.slots = 150;
//! let result = Simulator::new(cfg).expect("valid config").run();
//! assert!(result.metrics.fog_processed() > 0);
//! ```

pub use neofog_core as core;
pub use neofog_energy as energy;
pub use neofog_net as net;
pub use neofog_nvp as nvp;
pub use neofog_rf as rf;
pub use neofog_sensors as sensors;
pub use neofog_types as types;
pub use neofog_workloads as workloads;

/// Commonly used items in one import.
pub mod prelude {
    pub use neofog_core::sim::{
        BalancerKind, SimConfig, SimEvent, SimObserver, SimResult, Simulator,
    };
    pub use neofog_core::{
        run_batch, CollectAll, NoProgress, NodeConfig, PackageSpec, PoolConfig, Progress, Reduce,
        StderrTicker, SystemKind,
    };
    pub use neofog_energy::{PowerTrace, Scenario, SuperCap, TraceGenerator};
    pub use neofog_nvp::{NvBuffer, Processor, ProcessorKind};
    pub use neofog_rf::{NvRf, RadioModel, RfConfig, SoftwareRf};
    pub use neofog_types::{Duration, Energy, NodeId, Power, SimRng, SimTime};
    pub use neofog_workloads::{App, Strategy, TaskPipeline};
}

//! Property tests: numeric kernels (FFT, filters, NCC).

use neofog_workloads::fft::{fft, fft_real, ifft, Complex};
use neofog_workloads::noise::{detrend, median_filter, moving_average};
use neofog_workloads::pattern::ncc;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_ifft_identity(values in prop::collection::vec(-100.0..100.0f64, 1..9)) {
        // Pad to the next power of two.
        let n = values.len().next_power_of_two();
        let mut data: Vec<Complex> =
            values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        data.resize(n, Complex::default());
        let orig = data.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in orig.iter().zip(&data) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation(values in prop::collection::vec(-10.0..10.0f64, 8..64)) {
        let n = values.len().next_power_of_two();
        let mut signal = values.clone();
        signal.resize(n, 0.0);
        let time: f64 = signal.iter().map(|x| x * x).sum();
        let freq: f64 =
            fft_real(&signal).iter().map(|z| z.abs().powi(2)).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() < 1e-6 * time.max(1.0));
    }

    #[test]
    fn filters_preserve_length_and_bounds(
        values in prop::collection::vec(-50.0..50.0f64, 1..200),
        w in prop::sample::select(vec![1usize, 3, 5, 9]),
    ) {
        for out in [moving_average(&values, w), median_filter(&values, w)] {
            prop_assert_eq!(out.len(), values.len());
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for v in out {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn detrend_output_has_zero_mean(values in prop::collection::vec(-50.0..50.0f64, 2..200)) {
        let out = detrend(&values);
        let mean = out.iter().sum::<f64>() / out.len() as f64;
        prop_assert!(mean.abs() < 1e-7, "mean {mean}");
    }

    #[test]
    fn ncc_scores_bounded(
        signal in prop::collection::vec(-10.0..10.0f64, 10..100),
        template in prop::collection::vec(-10.0..10.0f64, 2..10),
    ) {
        for score in ncc(&signal, &template) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&score), "{score}");
        }
    }

    #[test]
    fn ncc_self_match_is_perfect(template in prop::collection::vec(-10.0..10.0f64, 3..20)) {
        // Skip degenerate (constant) templates.
        let mean = template.iter().sum::<f64>() / template.len() as f64;
        let var: f64 = template.iter().map(|x| (x - mean).powi(2)).sum();
        prop_assume!(var > 1e-6);
        let scores = ncc(&template, &template);
        prop_assert!((scores[0] - 1.0).abs() < 1e-9);
    }
}

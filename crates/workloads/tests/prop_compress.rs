//! Property tests: every compression stage is lossless on arbitrary
//! inputs, and the full pipeline round-trips.

use neofog_workloads::compress::{
    compress, decompress, delta_decode, delta_encode, lzss_decode, lzss_encode, packbits_decode,
    packbits_encode,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_pipeline_round_trips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn delta_round_trips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(delta_decode(&delta_encode(&data)), data);
    }

    #[test]
    fn packbits_round_trips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(packbits_decode(&packbits_encode(&data)).unwrap(), data);
    }

    #[test]
    fn lzss_round_trips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(lzss_decode(&lzss_encode(&data)).unwrap(), data);
    }

    #[test]
    fn runs_compress_repetitive_input(byte in any::<u8>(), reps in 100usize..5000) {
        let data = vec![byte; reps];
        let packed = compress(&data);
        prop_assert!(packed.len() < data.len() / 8, "{} -> {}", data.len(), packed.len());
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Malformed streams must error, not panic or loop.
        let _ = decompress(&data);
        let _ = lzss_decode(&data);
        let _ = packbits_decode(&data);
    }
}

//! Node work pipelines: the ordered phases a node executes per
//! activation under each strategy (paper Figures 1 and 4).

use crate::app::{App, Strategy};
use serde::{Deserialize, Serialize};

/// One phase of a node activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Initialize the sensor (cost from `neofog_sensors::SensorSpec`).
    SensorInit,
    /// Take `count` samples.
    Sample {
        /// Number of samples to take.
        count: u64,
    },
    /// Execute `instructions` of local processing.
    Compute {
        /// Instruction count.
        instructions: u64,
    },
    /// Initialize / restore the radio.
    RadioInit,
    /// Transmit `bytes` of payload.
    Transmit {
        /// Payload bytes.
        bytes: u32,
    },
}

/// The phase sequence one activation of an application performs.
///
/// # Examples
///
/// ```
/// use neofog_workloads::{App, Strategy, TaskPipeline};
///
/// let naive = TaskPipeline::for_app(App::WsnTemp, Strategy::Naive);
/// let buffered = TaskPipeline::for_app(App::WsnTemp, Strategy::Buffered);
/// assert!(buffered.total_instructions() > naive.total_instructions());
/// assert!(buffered.total_tx_bytes() < naive.total_tx_bytes() * 33000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskPipeline {
    app: App,
    strategy: Strategy,
    phases: Vec<Phase>,
}

impl TaskPipeline {
    /// Builds the pipeline for an application under a strategy.
    ///
    /// * Naive (NOS): init sensor, one sample, light compute, radio
    ///   init, transmit the raw payload.
    /// * Buffered (FIOS): fill the 64 KiB buffer, batch compute
    ///   (including compression — its instructions are part of the
    ///   measured batch count), transmit the compressed residue. The
    ///   radio needs no software init phase because the NVRF
    ///   self-restores.
    #[must_use]
    pub fn for_app(app: App, strategy: Strategy) -> Self {
        let phases = match strategy {
            Strategy::Naive => vec![
                Phase::SensorInit,
                Phase::Sample { count: 1 },
                Phase::Compute {
                    instructions: app.naive_instructions(),
                },
                Phase::RadioInit,
                Phase::Transmit {
                    bytes: app.payload_bytes(),
                },
            ],
            Strategy::Buffered => vec![
                Phase::SensorInit,
                Phase::Sample {
                    count: app.samples_per_batch(),
                },
                Phase::Compute {
                    instructions: app.buffered_instructions(),
                },
                Phase::Transmit {
                    bytes: app.compressed_bytes(),
                },
            ],
        };
        TaskPipeline {
            app,
            strategy,
            phases,
        }
    }

    /// The application.
    #[must_use]
    pub fn app(&self) -> App {
        self.app
    }

    /// The strategy.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The ordered phases.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Samples taken per activation.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Sample { count } => *count,
                _ => 0,
            })
            .sum()
    }

    /// Instructions executed per activation.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Compute { instructions } => *instructions,
                _ => 0,
            })
            .sum()
    }

    /// Payload bytes transmitted per activation.
    #[must_use]
    pub fn total_tx_bytes(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Transmit { bytes } => u64::from(*bytes),
                _ => 0,
            })
            .sum()
    }

    /// The *fog tasks* of one activation: the per-sample processing
    /// steps offloaded from the cloud, each sized in instructions.
    /// This is the unit the distributed load balancer moves between
    /// neighbouring nodes.
    #[must_use]
    pub fn fog_tasks(&self) -> Vec<u64> {
        match self.strategy {
            Strategy::Naive => Vec::new(), // NOS nodes send raw data to the cloud
            Strategy::Buffered => {
                let per = self.app.buffered_instructions_per_sample();
                // Group samples into paper-style "tasks" of ~1k samples
                // so balance decisions operate on meaningful chunks.
                let samples = self.app.samples_per_batch();
                let group = 1024.min(samples.max(1));
                let tasks = samples / group;
                (0..tasks).map(|_| per * group).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_pipeline_shape() {
        let p = TaskPipeline::for_app(App::BridgeHealth, Strategy::Naive);
        assert!(matches!(p.phases()[0], Phase::SensorInit));
        assert!(p.phases().iter().any(|ph| matches!(ph, Phase::RadioInit)));
        assert_eq!(p.total_samples(), 1);
        assert_eq!(p.total_tx_bytes(), 8);
        assert_eq!(p.total_instructions(), 545);
    }

    #[test]
    fn buffered_pipeline_has_no_radio_init() {
        let p = TaskPipeline::for_app(App::BridgeHealth, Strategy::Buffered);
        assert!(!p.phases().iter().any(|ph| matches!(ph, Phase::RadioInit)));
        assert_eq!(p.total_samples(), 8192);
        assert_eq!(
            p.total_tx_bytes(),
            u64::from(App::BridgeHealth.compressed_bytes())
        );
    }

    #[test]
    fn buffered_shifts_energy_to_compute() {
        for app in App::ALL {
            let naive = TaskPipeline::for_app(app, Strategy::Naive);
            let buf = TaskPipeline::for_app(app, Strategy::Buffered);
            // Per sample, buffered transmits far fewer bytes...
            let naive_bytes_per_sample = naive.total_tx_bytes() as f64;
            let buf_bytes_per_sample = buf.total_tx_bytes() as f64 / buf.total_samples() as f64;
            assert!(
                buf_bytes_per_sample < 0.15 * naive_bytes_per_sample,
                "{app:?}"
            );
            // ...but computes more instructions.
            let naive_inst = naive.total_instructions() as f64;
            let buf_inst = buf.total_instructions() as f64 / buf.total_samples() as f64;
            assert!(buf_inst > naive_inst, "{app:?}");
        }
    }

    #[test]
    fn fog_tasks_only_exist_when_buffered() {
        assert!(TaskPipeline::for_app(App::WsnTemp, Strategy::Naive)
            .fog_tasks()
            .is_empty());
        let tasks = TaskPipeline::for_app(App::WsnTemp, Strategy::Buffered).fog_tasks();
        assert!(!tasks.is_empty());
        assert!(tasks.iter().all(|&t| t > 0));
    }

    #[test]
    fn fog_tasks_cover_most_of_the_batch() {
        let p = TaskPipeline::for_app(App::PatternMatching, Strategy::Buffered);
        let task_sum: u64 = p.fog_tasks().iter().sum();
        let batch = p.total_instructions();
        assert!(task_sum as f64 > 0.9 * batch as f64);
        assert!(task_sum <= batch);
    }
}

//! Personal UV dose estimation.
//!
//! The wearable UV meter (Table 1/2, after Li et al., BSN'16) does more
//! in the fog than logging raw readings: it converts irradiance samples
//! to erythemally weighted dose, tracks the accumulated fraction of the
//! wearer's minimal erythema dose (MED), and raises exposure alerts —
//! transmitting a handful of summary bytes instead of a sample stream.

use serde::{Deserialize, Serialize};

/// Fitzpatrick skin phototypes with their typical minimal erythema
/// dose (J/m², erythemally weighted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkinType {
    /// Type I — burns very easily (MED ≈ 200 J/m²).
    I,
    /// Type II (MED ≈ 250 J/m²).
    II,
    /// Type III (MED ≈ 300 J/m²).
    III,
    /// Type IV (MED ≈ 450 J/m²).
    IV,
    /// Type V (MED ≈ 600 J/m²).
    V,
    /// Type VI — rarely burns (MED ≈ 1000 J/m²).
    VI,
}

impl SkinType {
    /// Minimal erythema dose in J/m².
    #[must_use]
    pub fn med_j_per_m2(self) -> f64 {
        match self {
            SkinType::I => 200.0,
            SkinType::II => 250.0,
            SkinType::III => 300.0,
            SkinType::IV => 450.0,
            SkinType::V => 600.0,
            SkinType::VI => 1000.0,
        }
    }
}

/// Converts a raw 8-bit sensor reading to erythemally weighted
/// irradiance in W/m² (sensor full scale ≈ UV index 12 ≈ 0.3 W/m²).
#[must_use]
pub fn reading_to_irradiance(raw: u8) -> f64 {
    f64::from(raw) / 255.0 * 0.30
}

/// Converts erythemally weighted irradiance (W/m²) to the WHO UV
/// index (1 UVI = 25 mW/m²).
#[must_use]
pub fn uv_index(irradiance: f64) -> f64 {
    irradiance.max(0.0) / 0.025
}

/// Exposure status the meter reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exposure {
    /// Below half the MED.
    Safe,
    /// Between 50 % and 100 % of the MED.
    Caution,
    /// MED reached or exceeded.
    Burned,
}

/// Accumulates dose from buffered samples — the UV meter's fog task.
///
/// # Examples
///
/// ```
/// use neofog_workloads::uvdose::{DoseTracker, SkinType};
///
/// let mut tracker = DoseTracker::new(SkinType::II);
/// tracker.ingest(&[128; 600], 1.0); // 10 min of half-scale sun
/// assert!(tracker.dose_fraction() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoseTracker {
    skin: SkinType,
    accumulated_j_per_m2: f64,
    peak_uvi: f64,
    samples: u64,
}

impl DoseTracker {
    /// Creates a tracker for a skin type with zero accumulated dose.
    #[must_use]
    pub fn new(skin: SkinType) -> Self {
        DoseTracker {
            skin,
            accumulated_j_per_m2: 0.0,
            peak_uvi: 0.0,
            samples: 0,
        }
    }

    /// Ingests a batch of raw samples taken `sample_period_s` apart.
    pub fn ingest(&mut self, raw: &[u8], sample_period_s: f64) {
        for &r in raw {
            let irr = reading_to_irradiance(r);
            self.accumulated_j_per_m2 += irr * sample_period_s;
            self.peak_uvi = self.peak_uvi.max(uv_index(irr));
            self.samples += 1;
        }
    }

    /// Accumulated erythemally weighted dose in J/m².
    #[must_use]
    pub fn dose_j_per_m2(&self) -> f64 {
        self.accumulated_j_per_m2
    }

    /// Accumulated dose as a fraction of the wearer's MED.
    #[must_use]
    pub fn dose_fraction(&self) -> f64 {
        self.accumulated_j_per_m2 / self.skin.med_j_per_m2()
    }

    /// Highest UV index seen.
    #[must_use]
    pub fn peak_uvi(&self) -> f64 {
        self.peak_uvi
    }

    /// Samples ingested.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current exposure classification.
    #[must_use]
    pub fn exposure(&self) -> Exposure {
        let f = self.dose_fraction();
        if f >= 1.0 {
            Exposure::Burned
        } else if f >= 0.5 {
            Exposure::Caution
        } else {
            Exposure::Safe
        }
    }

    /// Seconds until the MED is reached at the given sustained
    /// irradiance (infinite in darkness or if already burned… well,
    /// zero if already burned).
    #[must_use]
    pub fn time_to_med_s(&self, irradiance: f64) -> f64 {
        let remaining = self.skin.med_j_per_m2() - self.accumulated_j_per_m2;
        if remaining <= 0.0 {
            0.0
        } else if irradiance <= 0.0 {
            f64::INFINITY
        } else {
            remaining / irradiance
        }
    }

    /// The 8-byte summary the node transmits instead of raw samples:
    /// dose fraction (per-mille, u16), peak UVI ×10 (u16), sample
    /// count (u32).
    #[must_use]
    pub fn summary_packet(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        let dose = (self.dose_fraction() * 1000.0).clamp(0.0, 65535.0) as u16;
        let peak = (self.peak_uvi * 10.0).clamp(0.0, 65535.0) as u16;
        out[0..2].copy_from_slice(&dose.to_le_bytes());
        out[2..4].copy_from_slice(&peak.to_le_bytes());
        out[4..8].copy_from_slice(&(self.samples.min(u64::from(u32::MAX)) as u32).to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_calibrated() {
        assert_eq!(reading_to_irradiance(0), 0.0);
        assert!((reading_to_irradiance(255) - 0.30).abs() < 1e-12);
        assert!((uv_index(0.25) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dose_accumulates_linearly() {
        let mut t = DoseTracker::new(SkinType::III);
        // Full-scale sun (0.3 W/m²) for 1000 s = 300 J/m² = 1 MED.
        t.ingest(&[255; 1000], 1.0);
        assert!((t.dose_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(t.exposure(), Exposure::Burned);
    }

    #[test]
    fn exposure_thresholds() {
        let mut t = DoseTracker::new(SkinType::I); // MED 200
        assert_eq!(t.exposure(), Exposure::Safe);
        t.ingest(&[255; 400], 1.0); // 120 J/m² = 60%
        assert_eq!(t.exposure(), Exposure::Caution);
        t.ingest(&[255; 400], 1.0);
        assert_eq!(t.exposure(), Exposure::Burned);
    }

    #[test]
    fn darker_skin_burns_slower() {
        let mut light = DoseTracker::new(SkinType::I);
        let mut dark = DoseTracker::new(SkinType::VI);
        let batch = vec![200u8; 500];
        light.ingest(&batch, 1.0);
        dark.ingest(&batch, 1.0);
        assert!(light.dose_fraction() > 4.0 * dark.dose_fraction());
    }

    #[test]
    fn time_to_med_inverse_to_sun() {
        let t = DoseTracker::new(SkinType::II); // MED 250
        assert!((t.time_to_med_s(0.25) - 1000.0).abs() < 1e-9);
        assert_eq!(t.time_to_med_s(0.0), f64::INFINITY);
        let mut burned = DoseTracker::new(SkinType::I);
        burned.ingest(&[255; 1000], 1.0);
        assert_eq!(burned.time_to_med_s(0.1), 0.0);
    }

    #[test]
    fn summary_packet_is_8_bytes_of_sense() {
        let mut t = DoseTracker::new(SkinType::II);
        t.ingest(&[128; 600], 1.0);
        let pkt = t.summary_packet();
        let dose = u16::from_le_bytes([pkt[0], pkt[1]]);
        let samples = u32::from_le_bytes([pkt[4], pkt[5], pkt[6], pkt[7]]);
        assert_eq!(samples, 600);
        assert!(dose > 0);
        // 8 summary bytes replace 600 raw bytes: a 75x reduction.
        assert_eq!(pkt.len(), 8);
    }

    #[test]
    fn peak_uvi_tracks_maximum() {
        let mut t = DoseTracker::new(SkinType::IV);
        t.ingest(&[10, 240, 50], 1.0);
        let expect = uv_index(reading_to_irradiance(240));
        assert!((t.peak_uvi() - expect).abs() < 1e-12);
    }
}

//! Bridge-cable structural strength models.
//!
//! The fog-offloaded bridge pipeline (§3.1) computes cable strength "in
//! three different bridge structure-specialized models" from the
//! vibration spectrum, then applies "temperature and humidity
//! compensation of each model's results" and averages. Cable tension
//! relates to vibration through the taut-string law
//! `T = 4·m·L²·f₁²` (fundamental frequency method, cf. Cerda et al.;
//! Yao & Pakzad), which all three models estimate differently:
//!
//! 1. [`fundamental_frequency_model`] — tension from the dominant
//!    spectral peak.
//! 2. [`harmonic_ratio_model`] — tension from the spacing of the first
//!    harmonics (robust when the fundamental is buried).
//! 3. [`spectral_energy_model`] — RMS-band-energy health index
//!    (detects loosening as energy migrating to low frequencies).

use crate::fft::{dominant_bin, magnitude_spectrum};
use serde::{Deserialize, Serialize};

/// Physical description of one monitored cable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CableSpec {
    /// Cable length in meters.
    pub length_m: f64,
    /// Linear mass density in kg/m.
    pub mass_kg_per_m: f64,
    /// Vibration sampling rate in Hz.
    pub sample_rate_hz: f64,
}

impl CableSpec {
    /// A mid-span stay cable typical of the instrumented bridges.
    #[must_use]
    pub fn typical() -> Self {
        CableSpec {
            length_m: 100.0,
            mass_kg_per_m: 60.0,
            sample_rate_hz: 64.0,
        }
    }

    /// Tension (newtons) implied by a fundamental frequency via the
    /// taut-string law `T = 4·m·L²·f₁²`.
    #[must_use]
    pub fn tension_from_fundamental(&self, f1_hz: f64) -> f64 {
        4.0 * self.mass_kg_per_m * self.length_m.powi(2) * f1_hz.powi(2)
    }
}

/// Environmental reading used for model compensation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Ambient temperature in °C.
    pub temperature_c: f64,
    /// Relative humidity in `[0, 1]`.
    pub humidity: f64,
}

impl Environment {
    /// Reference conditions (20 °C, 50 % RH): compensation factor 1.
    #[must_use]
    pub fn reference() -> Self {
        Environment {
            temperature_c: 20.0,
            humidity: 0.5,
        }
    }

    /// Multiplicative compensation: steel modulus drops ~0.02 %/°C and
    /// apparent frequency shifts slightly with humidity-loaded mass.
    #[must_use]
    pub fn compensation(&self) -> f64 {
        let temp = 1.0 + 2e-4 * (self.temperature_c - 20.0);
        let hum = 1.0 - 0.01 * (self.humidity - 0.5);
        temp * hum
    }
}

/// Model 1: tension from the dominant spectral peak.
#[must_use]
pub fn fundamental_frequency_model(vibration: &[f64], cable: &CableSpec) -> f64 {
    let spec = magnitude_spectrum(vibration);
    let bin = dominant_bin(&spec);
    let f1 = bin as f64 * cable.sample_rate_hz / vibration.len() as f64;
    cable.tension_from_fundamental(f1)
}

/// Model 2: tension from harmonic spacing. Finds the strongest two
/// spectral peaks and uses their spacing as the fundamental (harmonics
/// of a taut string are integer multiples of `f₁`).
#[must_use]
pub fn harmonic_ratio_model(vibration: &[f64], cable: &CableSpec) -> f64 {
    let spec = magnitude_spectrum(vibration);
    // Local maxima above the mean, skipping DC.
    let mean = spec.iter().sum::<f64>() / spec.len().max(1) as f64;
    let mut peaks: Vec<(usize, f64)> = (1..spec.len().saturating_sub(1))
        .filter(|&i| spec[i] > spec[i - 1] && spec[i] >= spec[i + 1] && spec[i] > mean)
        .map(|i| (i, spec[i]))
        .collect();
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    let f1_bins = match (peaks.first(), peaks.get(1)) {
        (Some(&(a, _)), Some(&(b, _))) => a.abs_diff(b).max(1),
        (Some(&(a, _)), None) => a,
        _ => return 0.0,
    };
    let f1 = f1_bins as f64 * cable.sample_rate_hz / vibration.len() as f64;
    cable.tension_from_fundamental(f1)
}

/// Model 3: spectral-energy health index in `[0, 1]`: share of signal
/// energy above one quarter of the Nyquist band. A taut cable vibrates
/// fast; migration of energy to low bins signals loosening.
#[must_use]
pub fn spectral_energy_model(vibration: &[f64]) -> f64 {
    let spec = magnitude_spectrum(vibration);
    if spec.len() < 4 {
        return 0.0;
    }
    let split = spec.len() / 4;
    let total: f64 = spec.iter().skip(1).map(|m| m * m).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let high: f64 = spec.iter().skip(split).map(|m| m * m).sum();
    high / total
}

/// The combined assessment the node transmits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrengthReport {
    /// Model 1 tension (N), compensated.
    pub tension_fundamental: f64,
    /// Model 2 tension (N), compensated.
    pub tension_harmonic: f64,
    /// Model 3 health index in `[0, 1]`.
    pub energy_index: f64,
    /// Average of the two tension estimates (N).
    pub mean_tension: f64,
}

/// Runs all three models with environmental compensation and averages
/// — the full §3.1 strength step on one vibration batch.
#[must_use]
pub fn assess_strength(vibration: &[f64], cable: &CableSpec, env: &Environment) -> StrengthReport {
    let comp = env.compensation();
    let t1 = fundamental_frequency_model(vibration, cable) * comp;
    let t2 = harmonic_ratio_model(vibration, cable) * comp;
    let idx = spectral_energy_model(vibration);
    StrengthReport {
        tension_fundamental: t1,
        tension_harmonic: t2,
        energy_index: idx,
        mean_tension: 0.5 * (t1 + t2),
    }
}

/// Combines 3-axis acceleration into the cable-vertical direction
/// (§3.1 "combination of 3-direction acceleration into one
/// cable-vertical direction vibration") given a unit direction vector.
#[must_use]
pub fn combine_axes(samples: &[[f64; 3]], direction: [f64; 3]) -> Vec<f64> {
    let norm = (direction[0].powi(2) + direction[1].powi(2) + direction[2].powi(2)).sqrt();
    let d = if norm > 0.0 {
        [
            direction[0] / norm,
            direction[1] / norm,
            direction[2] / norm,
        ]
    } else {
        [0.0, 0.0, 1.0]
    };
    samples
        .iter()
        .map(|s| s[0] * d[0] + s[1] * d[1] + s[2] * d[2])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, k: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * k as f64 * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn fundamental_model_recovers_known_tension() {
        let cable = CableSpec::typical();
        let n = 512;
        // Bin 16 at 64 Hz over 512 samples = 2 Hz fundamental.
        let v = sine(n, 16);
        let t = fundamental_frequency_model(&v, &cable);
        let expect = cable.tension_from_fundamental(2.0);
        assert!((t - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn harmonic_model_uses_peak_spacing() {
        let cable = CableSpec::typical();
        let n = 512;
        // Harmonics at bins 16 and 32 (f1 and 2*f1).
        let v: Vec<f64> = sine(n, 16)
            .iter()
            .zip(sine(n, 32))
            .map(|(a, b)| a + 0.8 * b)
            .collect();
        let t = harmonic_ratio_model(&v, &cable);
        let expect = cable.tension_from_fundamental(2.0);
        assert!((t - expect).abs() / expect < 1e-6, "t={t} expect={expect}");
    }

    #[test]
    fn tighter_cable_reads_higher_tension() {
        let cable = CableSpec::typical();
        let slack = fundamental_frequency_model(&sine(512, 8), &cable);
        let taut = fundamental_frequency_model(&sine(512, 24), &cable);
        assert!(taut > slack * 5.0);
    }

    #[test]
    fn energy_index_tracks_band_migration() {
        let low = spectral_energy_model(&sine(512, 4)); // low-frequency
        let high = spectral_energy_model(&sine(512, 200)); // high-frequency
        assert!(low < 0.1, "low {low}");
        assert!(high > 0.9, "high {high}");
    }

    #[test]
    fn compensation_shifts_results() {
        let cable = CableSpec::typical();
        let v = sine(512, 16);
        let cold = assess_strength(
            &v,
            &cable,
            &Environment {
                temperature_c: -10.0,
                humidity: 0.5,
            },
        );
        let hot = assess_strength(
            &v,
            &cable,
            &Environment {
                temperature_c: 45.0,
                humidity: 0.5,
            },
        );
        assert!(hot.mean_tension > cold.mean_tension);
        let reference = assess_strength(&v, &cable, &Environment::reference());
        assert!(
            (reference.mean_tension
                - 0.5 * (reference.tension_fundamental + reference.tension_harmonic))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn reference_compensation_is_unity() {
        assert!((Environment::reference().compensation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn combine_axes_projects() {
        let samples = vec![[1.0, 2.0, 3.0], [0.0, 0.0, 5.0]];
        let v = combine_axes(&samples, [0.0, 0.0, 2.0]); // normalized to z
        assert_eq!(v, vec![3.0, 5.0]);
        // Degenerate direction falls back to z.
        let w = combine_axes(&samples, [0.0, 0.0, 0.0]);
        assert_eq!(w, vec![3.0, 5.0]);
    }

    #[test]
    fn silent_cable_yields_zero_index() {
        let v = vec![0.0; 256];
        assert_eq!(spectral_energy_model(&v), 0.0);
    }
}

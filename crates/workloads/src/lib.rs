//! Application workloads for NEOFog.
//!
//! Two layers, deliberately kept in one crate so they stay calibrated
//! against each other:
//!
//! 1. **Analytic cost models** ([`app`], [`pipeline`]) — instruction
//!    counts, payload sizes and batch energies reproducing the paper's
//!    Table 2 exactly. The large-scale system simulator runs on these.
//! 2. **Real kernels** ([`fft`], [`noise`], [`strength`], [`pattern`],
//!    [`compress`](mod@compress)) — executable implementations of the in-fog
//!    computations the paper offloads from the cloud: 3-axis
//!    combination + noise removal + FFT + three structural-strength
//!    models for bridge health, normalized cross-correlation for
//!    heartbeat pattern matching, and lossless compression (delta +
//!    RLE + LZSS) achieving the paper's 3–14.5 % ratios on WSN-like
//!    data. Examples and integration tests run these end-to-end.

pub mod app;
pub mod compress;
pub mod dct;
pub mod fft;
pub mod noise;
pub mod pattern;
pub mod pipeline;
pub mod strength;
pub mod uvdose;
pub mod volumetric;

pub use app::{App, AppEnergyRow, Strategy};
pub use compress::{compress, decompress};
pub use pipeline::{Phase, TaskPipeline};

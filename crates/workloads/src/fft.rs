//! Radix-2 fast Fourier transform.
//!
//! The bridge-health fog pipeline performs an FFT on the buffered
//! vibration batch before applying the structural strength models
//! (§3.1). This is a dependency-free iterative radix-2 implementation
//! adequate for the power-of-two batch sizes the NV buffer produces.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// A complex number (f64 re/im).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// In-place iterative radix-2 FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT (includes the 1/N normalization).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        z.re /= n;
        z.im /= n;
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// FFT of a real signal, returning complex spectrum of the same length.
#[must_use]
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&mut data);
    data
}

/// One-sided magnitude spectrum of a real signal (bins `0..=n/2`).
#[must_use]
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let spec = fft_real(signal);
    let n = spec.len();
    spec.iter().take(n / 2 + 1).map(|z| z.abs()).collect()
}

/// Index of the dominant non-DC bin in a one-sided spectrum.
#[must_use]
pub fn dominant_bin(spectrum: &[f64]) -> usize {
    spectrum
        .iter()
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut d = vec![Complex::default(); 8];
        d[0] = Complex::new(1.0, 0.0);
        fft(&mut d);
        for z in &d {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sine_concentrates_in_one_bin() {
        let n = 256;
        let k = 10;
        let signal: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = magnitude_spectrum(&signal);
        assert_eq!(dominant_bin(&spec), k);
        assert!((spec[k] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn fft_ifft_round_trips() {
        let n = 128;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut d = orig.clone();
        fft(&mut d);
        ifft(&mut d);
        for (a, b) in orig.iter().zip(&d) {
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 64;
        let signal: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal);
        let freq_energy: f64 = spec.iter().map(|z| z.abs().powi(2)).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft_real(&a);
        let fb = fft_real(&b);
        let fs = fft_real(&sum);
        for i in 0..n {
            let expect = fa[i] + fb[i];
            assert!((fs[i].re - expect.re).abs() < 1e-10);
            assert!((fs[i].im - expect.im).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut d = vec![Complex::default(); 12];
        fft(&mut d);
    }

    #[test]
    fn tiny_inputs_are_fine() {
        let mut one = vec![Complex::new(3.0, 0.0)];
        fft(&mut one);
        assert_eq!(one[0], Complex::new(3.0, 0.0));
        let mut two = vec![Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)];
        fft(&mut two);
        assert!((two[0].re - 3.0).abs() < 1e-12);
        assert!((two[1].re + 1.0).abs() < 1e-12);
    }
}

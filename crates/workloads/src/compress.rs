//! Lossless compression for buffered sensor batches.
//!
//! The paper's buffered strategy compresses each 64 KiB batch before
//! transmission, reaching "3 %−14.5 % of its original" size because WSN
//! data carries "many repeated patterns" (§5.1). The codec here is a
//! three-stage pipeline chosen for MCU-class footprints:
//!
//! 1. **Delta coding** — smooth signals become near-zero residues.
//! 2. **PackBits RLE** — collapses the long zero runs.
//! 3. **LZSS** (4 KiB window, hash-chained match search) — captures
//!    the periodic structure (heartbeats, vibration cycles).
//!
//! Every stage is bijective; [`decompress`] restores the input exactly.

use neofog_types::{NeoFogError, Result};

const LZSS_WINDOW: usize = 4096;
const LZSS_MIN_MATCH: usize = 3;
const LZSS_MAX_MATCH: usize = 18;
const CHAIN_LIMIT: usize = 64;

/// Compresses a byte batch (delta → RLE → LZSS).
///
/// # Examples
///
/// ```
/// use neofog_workloads::{compress, decompress};
///
/// let data = vec![42u8; 1000];
/// let packed = compress(&data);
/// assert!(packed.len() < 32);
/// assert_eq!(decompress(&packed)?, data);
/// # Ok::<(), neofog_types::NeoFogError>(())
/// ```
#[must_use]
pub fn compress(data: &[u8]) -> Vec<u8> {
    lzss_encode(&packbits_encode(&delta_encode(data)))
}

/// Decompresses a [`compress`]-produced buffer.
///
/// # Errors
///
/// Returns [`NeoFogError::InvalidConfig`] on malformed input.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    Ok(delta_decode(&packbits_decode(&lzss_decode(data)?)?))
}

/// Compressed size / original size; 1.0 for empty input.
#[must_use]
pub fn compression_ratio(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    compress(data).len() as f64 / data.len() as f64
}

/// Differences each byte from its predecessor (first byte verbatim).
#[must_use]
pub fn delta_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut prev = 0u8;
    for &b in data {
        out.push(b.wrapping_sub(prev));
        prev = b;
    }
    out
}

/// Inverse of [`delta_encode`].
#[must_use]
pub fn delta_decode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut prev = 0u8;
    for &d in data {
        prev = prev.wrapping_add(d);
        out.push(prev);
    }
    out
}

/// PackBits run-length encoding: control byte `n < 128` copies `n+1`
/// literals; `n > 128` repeats the next byte `257-n` times; 128 is
/// unused.
#[must_use]
pub fn packbits_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        // Measure the run starting at i.
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == data[i] && run < 128 {
            run += 1;
        }
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(data[i]);
            i += run;
        } else {
            // Collect literals until a run of ≥3 starts or 128 cap.
            let start = i;
            let mut len = 0usize;
            while i < data.len() && len < 128 {
                let mut r = 1;
                while i + r < data.len() && data[i + r] == data[i] && r < 3 {
                    r += 1;
                }
                if r >= 3 {
                    break;
                }
                i += 1;
                len += 1;
            }
            out.push((len - 1) as u8);
            out.extend_from_slice(&data[start..start + len]);
        }
    }
    out
}

/// Inverse of [`packbits_encode`].
///
/// # Errors
///
/// Returns [`NeoFogError::InvalidConfig`] on truncated input or the
/// reserved control byte 128.
pub fn packbits_decode(data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let ctrl = data[i];
        i += 1;
        if ctrl < 128 {
            let n = ctrl as usize + 1;
            if i + n > data.len() {
                return Err(NeoFogError::invalid_config(
                    "packbits literal run truncated",
                ));
            }
            out.extend_from_slice(&data[i..i + n]);
            i += n;
        } else if ctrl == 128 {
            return Err(NeoFogError::invalid_config(
                "packbits reserved control byte",
            ));
        } else {
            let n = 257 - ctrl as usize;
            let b = *data
                .get(i)
                .ok_or_else(|| NeoFogError::invalid_config("packbits repeat truncated"))?;
            i += 1;
            out.extend(std::iter::repeat_n(b, n));
        }
    }
    Ok(out)
}

/// LZSS with flag-byte groups: each flag bit selects literal (1) or a
/// 2-byte `(offset, length)` reference (0) with a 12-bit offset and
/// 4-bit `length - 3`.
#[must_use]
pub fn lzss_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    // Hash chains over 3-byte prefixes.
    let mut heads: Vec<i64> = vec![-1; 1 << 13];
    let mut links: Vec<i64> = vec![-1; data.len()];
    let hash = |d: &[u8]| -> usize {
        ((usize::from(d[0]) << 6) ^ (usize::from(d[1]) << 3) ^ usize::from(d[2])) & 0x1FFF
    };
    let mut i = 0usize;
    let mut flag_pos = usize::MAX;
    let mut flag_bit = 8u8;
    let push_unit = |out: &mut Vec<u8>, flag_pos: &mut usize, flag_bit: &mut u8, literal: bool| {
        if *flag_bit == 8 {
            *flag_pos = out.len();
            out.push(0);
            *flag_bit = 0;
        }
        if literal {
            out[*flag_pos] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
    };
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + LZSS_MIN_MATCH <= data.len() {
            let h = hash(&data[i..]);
            let mut cand = heads[h];
            let mut tries = 0;
            while cand >= 0 && tries < CHAIN_LIMIT {
                let c = cand as usize;
                if i - c <= LZSS_WINDOW {
                    let limit = LZSS_MAX_MATCH.min(data.len() - i);
                    let mut l = 0;
                    while l < limit && data[c + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - c;
                        if l == LZSS_MAX_MATCH {
                            break;
                        }
                    }
                } else {
                    break; // chains are ordered newest-first
                }
                cand = links[c];
                tries += 1;
            }
        }
        if best_len >= LZSS_MIN_MATCH {
            push_unit(&mut out, &mut flag_pos, &mut flag_bit, false);
            let token = (((best_off - 1) as u16) << 4) | ((best_len - LZSS_MIN_MATCH) as u16);
            out.extend_from_slice(&token.to_le_bytes());
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end {
                if i + LZSS_MIN_MATCH <= data.len() {
                    let h = hash(&data[i..]);
                    links[i] = heads[h];
                    heads[h] = i as i64;
                }
                i += 1;
            }
        } else {
            push_unit(&mut out, &mut flag_pos, &mut flag_bit, true);
            out.push(data[i]);
            if i + LZSS_MIN_MATCH <= data.len() {
                let h = hash(&data[i..]);
                links[i] = heads[h];
                heads[h] = i as i64;
            }
            i += 1;
        }
    }
    out
}

/// Inverse of [`lzss_encode`].
///
/// # Errors
///
/// Returns [`NeoFogError::InvalidConfig`] on truncated tokens or
/// references reaching before the start of the output.
pub fn lzss_decode(data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < data.len() {
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if i >= data.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                out.push(data[i]);
                i += 1;
            } else {
                if i + 2 > data.len() {
                    return Err(NeoFogError::invalid_config("lzss token truncated"));
                }
                let token = u16::from_le_bytes([data[i], data[i + 1]]);
                i += 2;
                let off = (token >> 4) as usize + 1;
                let len = (token & 0xF) as usize + LZSS_MIN_MATCH;
                if off > out.len() {
                    return Err(NeoFogError::invalid_config("lzss back-reference underflow"));
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neofog_sensors::{SensorKind, SignalGenerator};

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        assert_eq!(decompress(&packed).unwrap(), data, "round trip failed");
    }

    #[test]
    fn round_trips_basic_patterns() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abcabcabcabcabc");
        round_trip(&vec![0u8; 10_000]);
        round_trip(&(0..=255u8).collect::<Vec<_>>());
        let saw: Vec<u8> = (0..5000).map(|i| (i % 7) as u8 * 30).collect();
        round_trip(&saw);
    }

    #[test]
    fn round_trips_pseudorandom() {
        // Even incompressible data must survive (with expansion).
        let mut x = 0x243F_6A88u32;
        let noise: Vec<u8> = (0..8192)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 24) as u8
            })
            .collect();
        round_trip(&noise);
    }

    #[test]
    fn constant_data_compresses_hard() {
        let data = vec![7u8; 65_536];
        let ratio = compression_ratio(&data);
        assert!(ratio < 0.01, "ratio {ratio}");
    }

    #[test]
    fn sensor_batches_hit_paper_band() {
        // The paper's 3 %–14.5 % band on 64 KiB batches.
        for (kind, seed) in [
            (SensorKind::Tmp101, 1u64),
            (SensorKind::UvPhotodiode, 2),
            (SensorKind::EcgFrontend, 3),
        ] {
            let mut gen = SignalGenerator::new(kind, seed);
            let data = gen.generate(65_536);
            let ratio = compression_ratio(&data);
            assert!(ratio <= 0.145, "{kind:?}: ratio {ratio} outside paper band");
            round_trip(&data);
        }
    }

    #[test]
    fn vibration_compresses_worse_but_within_band() {
        let mut gen = SignalGenerator::new(SensorKind::Lis331dlh, 9);
        let data = gen.generate(65_536);
        let ratio = compression_ratio(&data);
        assert!(ratio < 0.5, "ratio {ratio}");
        round_trip(&data);
    }

    #[test]
    fn packbits_round_trip_edge_cases() {
        for data in [
            vec![],
            vec![1],
            vec![1, 1],
            vec![1, 1, 1],
            vec![1; 127],
            vec![1; 128],
            vec![1; 129],
            vec![1; 400],
            (0..200u8).collect::<Vec<_>>(),
        ] {
            let enc = packbits_encode(&data);
            assert_eq!(packbits_decode(&enc).unwrap(), data);
        }
    }

    #[test]
    fn delta_round_trip() {
        let data: Vec<u8> = (0..1000).map(|i| ((i * i) % 251) as u8).collect();
        assert_eq!(delta_decode(&delta_encode(&data)), data);
    }

    #[test]
    fn lzss_round_trip_with_long_matches() {
        let mut data = Vec::new();
        for _ in 0..100 {
            data.extend_from_slice(b"the quick brown fox ");
        }
        let enc = lzss_encode(&data);
        assert!(enc.len() < data.len() / 4);
        assert_eq!(lzss_decode(&enc).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        assert!(lzss_decode(&[0x00, 0xFF]).is_err()); // truncated token
        assert!(packbits_decode(&[5, 1, 2]).is_err()); // short literals
        assert!(packbits_decode(&[128]).is_err()); // reserved byte
        assert!(packbits_decode(&[255]).is_err()); // repeat w/o byte
                                                   // Back-reference before start.
        assert!(lzss_decode(&[0b0000_0000, 0xFF, 0xFF]).is_err());
    }

    #[test]
    fn overlapping_references_decode_correctly() {
        // "aaaaaa..." forces overlapping copies (off=1, len>1).
        let data = vec![b'a'; 50];
        let enc = lzss_encode(&data);
        assert_eq!(lzss_decode(&enc).unwrap(), data);
    }
}

//! Volumetric-map reconstruction from point samples.
//!
//! The forest-fire deployment's in-fog offload is "a reconstruction
//! kernel for a volumetric map based on point samples" (§5.2.1): each
//! node's scattered temperature/smoke readings are splatted into a 3-D
//! voxel grid with inverse-distance weighting, producing the field the
//! cloud would otherwise have to assemble from raw points.

use serde::{Deserialize, Serialize};

/// One scattered field sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointSample {
    /// Sample position in meters.
    pub position: [f64; 3],
    /// Measured field value (e.g. °C).
    pub value: f64,
}

/// A dense voxel grid covering an axis-aligned region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoxelGrid {
    origin: [f64; 3],
    voxel_size: f64,
    dims: [usize; 3],
    values: Vec<f64>,
    weights: Vec<f64>,
}

impl VoxelGrid {
    /// Creates an empty grid.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `voxel_size` is not positive.
    #[must_use]
    pub fn new(origin: [f64; 3], voxel_size: f64, dims: [usize; 3]) -> Self {
        assert!(voxel_size > 0.0, "voxel size must be positive");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        let n = dims[0] * dims[1] * dims[2];
        VoxelGrid {
            origin,
            voxel_size,
            dims,
            values: vec![0.0; n],
            weights: vec![0.0; n],
        }
    }

    /// Grid dimensions (voxels per axis).
    #[must_use]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Number of voxels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the grid has no voxels (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.dims[1] + iy) * self.dims[0] + ix
    }

    /// The reconstructed value at a voxel (0 where no sample reached).
    #[must_use]
    pub fn value_at(&self, ix: usize, iy: usize, iz: usize) -> f64 {
        let i = self.index(ix, iy, iz);
        if self.weights[i] > 0.0 {
            self.values[i] / self.weights[i]
        } else {
            0.0
        }
    }

    /// Total accumulated splat weight (diagnostic).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Splats one sample into the grid with inverse-distance weighting
    /// over a `radius`-voxel neighbourhood.
    pub fn splat(&mut self, sample: &PointSample, radius: usize) {
        let rel = [
            (sample.position[0] - self.origin[0]) / self.voxel_size,
            (sample.position[1] - self.origin[1]) / self.voxel_size,
            (sample.position[2] - self.origin[2]) / self.voxel_size,
        ];
        let center = [rel[0].floor(), rel[1].floor(), rel[2].floor()];
        let r = radius as isize;
        for dz in -r..=r {
            for dy in -r..=r {
                for dx in -r..=r {
                    let (ix, iy, iz) = (
                        center[0] as isize + dx,
                        center[1] as isize + dy,
                        center[2] as isize + dz,
                    );
                    if ix < 0
                        || iy < 0
                        || iz < 0
                        || ix >= self.dims[0] as isize
                        || iy >= self.dims[1] as isize
                        || iz >= self.dims[2] as isize
                    {
                        continue;
                    }
                    // Distance from the sample to the voxel center.
                    let d2 = (rel[0] - (ix as f64 + 0.5)).powi(2)
                        + (rel[1] - (iy as f64 + 0.5)).powi(2)
                        + (rel[2] - (iz as f64 + 0.5)).powi(2);
                    let w = 1.0 / (d2 + 0.25);
                    let i = self.index(ix as usize, iy as usize, iz as usize);
                    self.values[i] += w * sample.value;
                    self.weights[i] += w;
                }
            }
        }
    }

    /// Reconstructs a grid from a batch of samples (the fog task).
    #[must_use]
    pub fn reconstruct(
        origin: [f64; 3],
        voxel_size: f64,
        dims: [usize; 3],
        samples: &[PointSample],
        radius: usize,
    ) -> Self {
        let mut grid = VoxelGrid::new(origin, voxel_size, dims);
        for s in samples {
            grid.splat(s, radius);
        }
        grid
    }

    /// Voxels whose reconstructed value exceeds `threshold` — the fire
    /// alarm set the network would actually transmit.
    #[must_use]
    pub fn hotspots(&self, threshold: f64) -> Vec<[usize; 3]> {
        let mut out = Vec::new();
        for iz in 0..self.dims[2] {
            for iy in 0..self.dims[1] {
                for ix in 0..self.dims[0] {
                    if self.value_at(ix, iy, iz) > threshold {
                        out.push([ix, iy, iz]);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(x: f64, y: f64, z: f64, v: f64) -> PointSample {
        PointSample {
            position: [x, y, z],
            value: v,
        }
    }

    #[test]
    fn single_sample_dominates_its_voxel() {
        let grid =
            VoxelGrid::reconstruct([0.0; 3], 1.0, [8, 8, 8], &[sample(3.5, 3.5, 3.5, 42.0)], 1);
        assert!((grid.value_at(3, 3, 3) - 42.0).abs() < 1e-9);
        // Far corner untouched.
        assert_eq!(grid.value_at(7, 7, 7), 0.0);
    }

    #[test]
    fn reconstruction_interpolates_between_samples() {
        let grid = VoxelGrid::reconstruct(
            [0.0; 3],
            1.0,
            [16, 1, 1],
            &[sample(0.5, 0.5, 0.5, 0.0), sample(15.5, 0.5, 0.5, 100.0)],
            8,
        );
        let quarter = grid.value_at(4, 0, 0);
        let three_quarter = grid.value_at(12, 0, 0);
        assert!(quarter < 50.0, "{quarter}");
        assert!(three_quarter > 50.0, "{three_quarter}");
        // Monotone along the line.
        let values: Vec<f64> = (0..16).map(|i| grid.value_at(i, 0, 0)).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{values:?}");
    }

    #[test]
    fn constant_field_reconstructs_constant() {
        let samples: Vec<PointSample> = (0..20)
            .map(|i| sample(f64::from(i % 5) + 0.3, f64::from(i / 5) + 0.7, 0.5, 7.0))
            .collect();
        let grid = VoxelGrid::reconstruct([0.0; 3], 1.0, [5, 4, 1], &samples, 2);
        for iz in 0..1 {
            for iy in 0..4 {
                for ix in 0..5 {
                    let v = grid.value_at(ix, iy, iz);
                    assert!((v - 7.0).abs() < 1e-9, "({ix},{iy},{iz}) = {v}");
                }
            }
        }
    }

    #[test]
    fn hotspot_detection_finds_the_fire() {
        let mut samples = vec![sample(1.0, 1.0, 0.5, 20.0); 30];
        samples.push(sample(6.5, 6.5, 0.5, 400.0)); // the fire
        let grid = VoxelGrid::reconstruct([0.0; 3], 1.0, [8, 8, 1], &samples, 1);
        let hot = grid.hotspots(100.0);
        assert!(!hot.is_empty());
        assert!(hot.iter().all(|&[x, y, _]| x >= 5 && y >= 5), "{hot:?}");
    }

    #[test]
    fn out_of_bounds_samples_are_clipped() {
        let mut grid = VoxelGrid::new([0.0; 3], 1.0, [4, 4, 4]);
        grid.splat(&sample(-100.0, 50.0, 3.0, 9.0), 2);
        assert_eq!(grid.total_weight(), 0.0);
    }

    #[test]
    #[should_panic(expected = "voxel size must be positive")]
    fn rejects_bad_voxel_size() {
        let _ = VoxelGrid::new([0.0; 3], 0.0, [1, 1, 1]);
    }
}

//! Heartbeat pattern matching.
//!
//! The pattern-matching application (Table 2's most compute-heavy row,
//! 59.5 % compute share even under the naive strategy) scans buffered
//! ECG samples for a template beat. We implement normalized
//! cross-correlation (NCC), the standard template matcher: robust to
//! gain and offset differences between the stored template and the
//! live signal.

use serde::{Deserialize, Serialize};

/// One detected template occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Match {
    /// Start index of the match in the signal.
    pub index: usize,
    /// NCC score in `[-1, 1]`.
    pub score: f64,
}

/// Normalized cross-correlation of `template` against `signal` at
/// every offset. Output length is `signal.len() - template.len() + 1`
/// (empty when the template is longer than the signal or empty).
#[must_use]
pub fn ncc(signal: &[f64], template: &[f64]) -> Vec<f64> {
    let m = template.len();
    if m == 0 || signal.len() < m {
        return Vec::new();
    }
    let t_mean = template.iter().sum::<f64>() / m as f64;
    let t_dev: Vec<f64> = template.iter().map(|x| x - t_mean).collect();
    let t_norm = t_dev.iter().map(|x| x * x).sum::<f64>().sqrt();
    (0..=signal.len() - m)
        .map(|i| {
            let window = &signal[i..i + m];
            let w_mean = window.iter().sum::<f64>() / m as f64;
            let mut dot = 0.0;
            let mut w_sq = 0.0;
            for (w, t) in window.iter().zip(&t_dev) {
                let wd = w - w_mean;
                dot += wd * t;
                w_sq += wd * wd;
            }
            let denom = t_norm * w_sq.sqrt();
            if denom < f64::EPSILON {
                0.0
            } else {
                dot / denom
            }
        })
        .collect()
}

/// Finds non-overlapping template matches with NCC score ≥ `threshold`,
/// greedily keeping the best-scoring candidates first.
#[must_use]
pub fn find_matches(signal: &[f64], template: &[f64], threshold: f64) -> Vec<Match> {
    let scores = ncc(signal, template);
    let mut candidates: Vec<Match> = scores
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s >= threshold)
        .map(|(index, &score)| Match { index, score })
        .collect();
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut taken: Vec<Match> = Vec::new();
    let m = template.len();
    for c in candidates {
        if taken
            .iter()
            .all(|t| c.index + m <= t.index || t.index + m <= c.index)
        {
            taken.push(c);
        }
    }
    taken.sort_by_key(|m| m.index);
    taken
}

/// Converts raw `u8` sensor bytes to centered `f64` samples.
#[must_use]
pub fn bytes_to_signal(bytes: &[u8]) -> Vec<f64> {
    bytes.iter().map(|&b| f64::from(b) - 128.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> Vec<f64> {
        // A QRS-like up-down spike.
        vec![0.0, 2.0, 6.0, 9.0, 6.0, 2.0, 0.0, -2.0, -1.0, 0.0]
    }

    fn signal_with_beats(at: &[usize], len: usize) -> Vec<f64> {
        let mut s = vec![0.0; len];
        for &start in at {
            for (i, &v) in template().iter().enumerate() {
                s[start + i] += v;
            }
        }
        s
    }

    #[test]
    fn perfect_match_scores_one() {
        let t = template();
        let scores = ncc(&t, &t);
        assert_eq!(scores.len(), 1);
        assert!((scores[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invariant_to_gain_and_offset() {
        let t = template();
        let scaled: Vec<f64> = t.iter().map(|x| 3.0 * x + 50.0).collect();
        let scores = ncc(&scaled, &t);
        assert!((scores[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn finds_all_planted_beats() {
        let beats = [5, 40, 120, 300];
        let s = signal_with_beats(&beats, 400);
        let found = find_matches(&s, &template(), 0.95);
        let idx: Vec<usize> = found.iter().map(|m| m.index).collect();
        assert_eq!(idx, beats.to_vec());
    }

    #[test]
    fn matches_do_not_overlap() {
        let s = signal_with_beats(&[50], 100);
        let found = find_matches(&s, &template(), 0.5);
        for w in found.windows(2) {
            assert!(w[1].index >= w[0].index + template().len());
        }
    }

    #[test]
    fn noise_does_not_fake_matches() {
        // Structured pseudo-noise with no QRS shape.
        let s: Vec<f64> = (0..500)
            .map(|i| ((i * 2654435761usize) % 101) as f64 / 101.0 - 0.5)
            .collect();
        let found = find_matches(&s, &template(), 0.97);
        assert!(found.is_empty(), "found {found:?}");
    }

    #[test]
    fn flat_window_scores_zero() {
        let s = vec![5.0; 30];
        let scores = ncc(&s, &template());
        for v in scores {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ncc(&[1.0, 2.0], &[1.0, 2.0, 3.0]).is_empty());
        assert!(ncc(&[], &[1.0]).is_empty());
        assert!(ncc(&[1.0], &[]).is_empty());
        assert!(find_matches(&[], &template(), 0.9).is_empty());
    }

    #[test]
    fn bytes_conversion_centers() {
        let s = bytes_to_signal(&[128, 138, 118]);
        assert_eq!(s, vec![0.0, 10.0, -10.0]);
    }

    #[test]
    fn works_on_synthetic_ecg() {
        use neofog_sensors::{SensorKind, SignalGenerator};
        let mut gen = SignalGenerator::new(SensorKind::EcgFrontend, 2);
        let raw = gen.generate(2000);
        let signal = bytes_to_signal(&raw);
        // Template: the beat shape the generator embeds every 200
        // samples — QRS spike, T wave, then baseline. A long template
        // is needed because NCC is gain-invariant, so a bare half-sine
        // would also match the (smaller) T wave.
        let template: Vec<f64> = (0..60)
            .map(|t| {
                let t = t as f64;
                if t < 6.0 {
                    100.0 * (std::f64::consts::PI * t / 6.0).sin()
                } else if t < 40.0 {
                    15.0 * (std::f64::consts::PI * (t - 6.0) / 34.0).sin()
                } else {
                    0.0
                }
            })
            .collect();
        let found = find_matches(&signal, &template, 0.8);
        // 2000 samples at one beat per 200 → about 10 beats.
        assert!(
            (8..=12).contains(&found.len()),
            "found {} beats",
            found.len()
        );
    }
}

//! Noise-removal filters for the in-fog pipelines.
//!
//! The bridge-health pipeline performs "noise removal" before the FFT
//! and "temperature and humidity noise removal" on the model outputs
//! (§3.1). Three standard small-footprint filters are provided.

/// Centered moving-average filter of odd `window` size.
///
/// Edges use a shrunken window so the output has the input's length.
///
/// # Panics
///
/// Panics if `window` is even or zero.
#[must_use]
pub fn moving_average(signal: &[f64], window: usize) -> Vec<f64> {
    assert!(window % 2 == 1, "window must be odd");
    let half = window / 2;
    (0..signal.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(signal.len());
            signal[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Centered median filter of odd `window` size (robust to impulse
/// noise/outliers).
///
/// # Panics
///
/// Panics if `window` is even or zero.
#[must_use]
pub fn median_filter(signal: &[f64], window: usize) -> Vec<f64> {
    assert!(window % 2 == 1, "window must be odd");
    let half = window / 2;
    (0..signal.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(signal.len());
            let mut w: Vec<f64> = signal[lo..hi].to_vec();
            w.sort_by(f64::total_cmp);
            w[w.len() / 2]
        })
        .collect()
}

/// First-order exponential smoothing with factor `alpha` in `(0, 1]`.
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1]`.
#[must_use]
pub fn exponential_smooth(signal: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let mut out = Vec::with_capacity(signal.len());
    let Some(&first) = signal.first() else {
        return out;
    };
    let mut state = first;
    for &x in signal {
        state = alpha * x + (1.0 - alpha) * state;
        out.push(state);
    }
    out
}

/// Removes a linear environmental trend (temperature/humidity drift)
/// estimated by least squares, returning the detrended signal.
#[must_use]
pub fn detrend(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n < 2 {
        return signal.to_vec();
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = signal.iter().sum::<f64>() / nf;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in signal.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    let slope = if den.abs() < f64::EPSILON {
        0.0
    } else {
        num / den
    };
    signal
        .iter()
        .enumerate()
        .map(|(i, &y)| y - (mean_y + slope * (i as f64 - mean_x)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn variance(s: &[f64]) -> f64 {
        let m = s.iter().sum::<f64>() / s.len() as f64;
        s.iter().map(|x| (x - m).powi(2)).sum::<f64>() / s.len() as f64
    }

    #[test]
    fn moving_average_reduces_noise_variance() {
        let noisy: Vec<f64> = (0..500)
            .map(|i| ((i * 2654435761u64 as usize) % 97) as f64 / 97.0 - 0.5)
            .collect();
        let smooth = moving_average(&noisy, 9);
        assert!(variance(&smooth) < variance(&noisy) / 3.0);
        assert_eq!(smooth.len(), noisy.len());
    }

    #[test]
    fn moving_average_preserves_constant() {
        let s = vec![4.2; 20];
        let out = moving_average(&s, 5);
        for v in out {
            assert!((v - 4.2).abs() < 1e-12);
        }
    }

    #[test]
    fn median_kills_impulses() {
        let mut s = vec![1.0; 50];
        s[20] = 1000.0; // impulse
        let out = median_filter(&s, 5);
        assert!((out[20] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_preserves_steps_better_than_mean() {
        let mut s = vec![0.0; 20];
        for v in s.iter_mut().skip(10) {
            *v = 10.0;
        }
        let med = median_filter(&s, 5);
        // The step edge stays sharp under the median.
        assert_eq!(med[9], 0.0);
        assert_eq!(med[11], 10.0);
    }

    #[test]
    fn exponential_smooth_tracks_mean() {
        let s = vec![2.0; 100];
        let out = exponential_smooth(&s, 0.3);
        assert!((out[99] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn detrend_removes_linear_ramp() {
        let s: Vec<f64> = (0..100).map(|i| 3.0 + 0.5 * i as f64).collect();
        let out = detrend(&s);
        for v in &out {
            assert!(v.abs() < 1e-9, "residual {v}");
        }
    }

    #[test]
    fn detrend_keeps_oscillation() {
        let s: Vec<f64> = (0..128)
            .map(|i| 0.1 * i as f64 + (i as f64 * 0.7).sin())
            .collect();
        let out = detrend(&s);
        // Trend gone, sine variance retained.
        assert!(variance(&out) > 0.3);
        let mean = out.iter().sum::<f64>() / out.len() as f64;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(moving_average(&[], 3).is_empty());
        assert!(median_filter(&[], 3).is_empty());
        assert!(exponential_smooth(&[], 0.5).is_empty());
        assert_eq!(detrend(&[7.0]), vec![7.0]);
    }

    #[test]
    #[should_panic(expected = "window must be odd")]
    fn even_window_rejected() {
        let _ = moving_average(&[1.0, 2.0], 4);
    }
}

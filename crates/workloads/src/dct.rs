//! A JPEG-style lossy image codec for camera nodes.
//!
//! The paper's buffered strategy compresses with "bzip or jpeg
//! depending on application" (§5.1); the RF-powered camera rows of
//! Table 1 ship raw pixels precisely because their volatile platforms
//! cannot afford local compression. This module implements the classic
//! transform-coding pipeline at MCU scale: 8×8 DCT-II, quality-scaled
//! quantization, zig-zag scan, and entropy packing via the workspace's
//! lossless back-end.

use crate::compress::{compress as lossless_pack, decompress as lossless_unpack};
use neofog_types::{NeoFogError, Result};

/// Block edge length (classic JPEG: 8).
pub const BLOCK: usize = 8;

/// The JPEG luminance base quantization table (Annex K).
const BASE_Q: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zig-zag scan order for an 8×8 block.
const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// A grayscale image with 8-bit pixels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// Creates an image from row-major pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`, or if either
    /// dimension is not a positive multiple of 8 (MCU camera tiles are
    /// block-aligned).
    #[must_use]
    pub fn new(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(
            pixels.len(),
            width * height,
            "pixel count must match dimensions"
        );
        assert!(
            width > 0 && height > 0 && width.is_multiple_of(BLOCK) && height.is_multiple_of(BLOCK),
            "dimensions must be positive multiples of {BLOCK}"
        );
        GrayImage {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel data.
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    fn block(&self, bx: usize, by: usize) -> [f64; 64] {
        let mut out = [0.0; 64];
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                let px = self.pixels[(by * BLOCK + y) * self.width + bx * BLOCK + x];
                out[y * BLOCK + x] = f64::from(px) - 128.0;
            }
        }
        out
    }
}

/// Forward 8×8 DCT-II on one block.
#[must_use]
pub fn dct2_block(block: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0; 64];
    for (v, out_row) in out.chunks_exact_mut(BLOCK).enumerate() {
        for (u, coeff) in out_row.iter_mut().enumerate() {
            let mut sum = 0.0;
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    sum += block[y * BLOCK + x]
                        * (std::f64::consts::PI * (2 * x + 1) as f64 * u as f64 / 16.0).cos()
                        * (std::f64::consts::PI * (2 * y + 1) as f64 * v as f64 / 16.0).cos();
                }
            }
            let cu = if u == 0 {
                std::f64::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            let cv = if v == 0 {
                std::f64::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            *coeff = 0.25 * cu * cv * sum;
        }
    }
    out
}

/// Inverse 8×8 DCT (DCT-III) on one coefficient block.
#[must_use]
pub fn idct2_block(coeffs: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0; 64];
    for (y, out_row) in out.chunks_exact_mut(BLOCK).enumerate() {
        for (x, px) in out_row.iter_mut().enumerate() {
            let mut sum = 0.0;
            for v in 0..BLOCK {
                for u in 0..BLOCK {
                    let cu = if u == 0 {
                        std::f64::consts::FRAC_1_SQRT_2
                    } else {
                        1.0
                    };
                    let cv = if v == 0 {
                        std::f64::consts::FRAC_1_SQRT_2
                    } else {
                        1.0
                    };
                    sum += cu
                        * cv
                        * coeffs[v * BLOCK + u]
                        * (std::f64::consts::PI * (2 * x + 1) as f64 * u as f64 / 16.0).cos()
                        * (std::f64::consts::PI * (2 * y + 1) as f64 * v as f64 / 16.0).cos();
                }
            }
            *px = 0.25 * sum;
        }
    }
    out
}

fn quant_table(quality: u8) -> [u16; 64] {
    // libjpeg's quality scaling.
    let q = quality.clamp(1, 100) as u32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut table = [0u16; 64];
    for (t, &b) in table.iter_mut().zip(&BASE_Q) {
        *t = (((u32::from(b) * scale + 50) / 100).clamp(1, 255)) as u16;
    }
    table
}

/// Encodes a grayscale image at the given JPEG-style quality (1–100).
///
/// The output begins with a 6-byte header (width/16 is not assumed:
/// u16 width, u16 height, u8 quality, u8 reserved) followed by the
/// entropy-packed coefficient stream.
#[must_use]
pub fn encode(image: &GrayImage, quality: u8) -> Vec<u8> {
    let quality = quality.clamp(1, 100);
    let qt = quant_table(quality);
    let blocks_x = image.width / BLOCK;
    let blocks_y = image.height / BLOCK;
    let mut symbols: Vec<u8> = Vec::with_capacity(image.pixels.len());
    let mut prev_dc: i32 = 0;
    for by in 0..blocks_y {
        for bx in 0..blocks_x {
            let coeffs = dct2_block(&image.block(bx, by));
            for (k, &zz) in ZIGZAG.iter().enumerate() {
                let q = (coeffs[zz] / f64::from(qt[zz])).round() as i32;
                let v = if k == 0 {
                    // DC is delta-coded across blocks.
                    let d = q - prev_dc;
                    prev_dc = q;
                    d
                } else {
                    q
                };
                // Symbol: zig-zag i16 little-endian (quantized values
                // fit comfortably).
                let clamped = v.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16;
                symbols.extend_from_slice(&clamped.to_le_bytes());
            }
        }
    }
    let mut out = Vec::with_capacity(symbols.len() / 8 + 8);
    out.extend_from_slice(&(image.width as u16).to_le_bytes());
    out.extend_from_slice(&(image.height as u16).to_le_bytes());
    out.push(quality);
    out.push(0);
    out.extend_from_slice(&lossless_pack(&symbols));
    out
}

/// Decodes an [`encode`]-produced stream back into an image.
///
/// # Errors
///
/// Returns [`NeoFogError::InvalidConfig`] on malformed input.
pub fn decode(data: &[u8]) -> Result<GrayImage> {
    if data.len() < 6 {
        return Err(NeoFogError::invalid_config("image stream truncated"));
    }
    let width = usize::from(u16::from_le_bytes([data[0], data[1]]));
    let height = usize::from(u16::from_le_bytes([data[2], data[3]]));
    let quality = data[4];
    if width == 0 || height == 0 || !width.is_multiple_of(BLOCK) || !height.is_multiple_of(BLOCK) {
        return Err(NeoFogError::invalid_config("bad image dimensions"));
    }
    let qt = quant_table(quality);
    let symbols = lossless_unpack(&data[6..])?;
    let expected = width * height * 2;
    if symbols.len() != expected {
        return Err(NeoFogError::invalid_config(
            "coefficient stream length mismatch",
        ));
    }
    let blocks_x = width / BLOCK;
    let mut pixels = vec![0u8; width * height];
    let mut prev_dc: i32 = 0;
    for (bi, chunk) in symbols.chunks_exact(128).enumerate() {
        let mut coeffs = [0.0f64; 64];
        for (k, pair) in chunk.chunks_exact(2).enumerate() {
            let mut v = i32::from(i16::from_le_bytes([pair[0], pair[1]]));
            if k == 0 {
                v += prev_dc;
                prev_dc = v;
            }
            let zz = ZIGZAG[k];
            coeffs[zz] = f64::from(v) * f64::from(qt[zz]);
        }
        let block = idct2_block(&coeffs);
        let bx = bi % blocks_x;
        let by = bi / blocks_x;
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                let px = (block[y * BLOCK + x] + 128.0).round().clamp(0.0, 255.0) as u8;
                pixels[(by * BLOCK + y) * width + bx * BLOCK + x] = px;
            }
        }
    }
    Ok(GrayImage {
        width,
        height,
        pixels,
    })
}

/// Peak signal-to-noise ratio between two same-sized images, in dB.
///
/// # Panics
///
/// Panics if dimensions differ.
#[must_use]
pub fn psnr(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(
        (a.width, a.height),
        (b.width, b.height),
        "image dimensions must match"
    );
    let mse: f64 = a
        .pixels
        .iter()
        .zip(&b.pixels)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.pixels.len() as f64;
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(w: usize, h: usize) -> GrayImage {
        // Smooth gradient with a bright disc — photographic-ish.
        let pixels = (0..w * h)
            .map(|i| {
                let (x, y) = ((i % w) as f64, (i / w) as f64);
                let base = 40.0 + 1.5 * x + 0.8 * y;
                let d = ((x - w as f64 / 2.0).powi(2) + (y - h as f64 / 2.0).powi(2)).sqrt();
                let disc = if d < w as f64 / 4.0 { 80.0 } else { 0.0 };
                (base + disc).clamp(0.0, 255.0) as u8
            })
            .collect();
        GrayImage::new(w, h, pixels)
    }

    #[test]
    fn dct_idct_round_trips() {
        let mut block = [0.0f64; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37) % 251) as f64 - 125.0;
        }
        let back = idct2_block(&dct2_block(&block));
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn dc_coefficient_is_block_mean() {
        let block = [32.0f64; 64];
        let coeffs = dct2_block(&block);
        // DC of a constant block: 8 * value; AC all zero.
        assert!((coeffs[0] - 8.0 * 32.0).abs() < 1e-9);
        for &c in &coeffs[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn codec_round_trip_quality() {
        let img = test_image(64, 48);
        for quality in [30u8, 60, 90] {
            let packed = encode(&img, quality);
            let restored = decode(&packed).unwrap();
            let quality_db = psnr(&img, &restored);
            assert!(
                quality_db > 28.0,
                "q{quality}: psnr {quality_db:.1} dB too low"
            );
        }
    }

    #[test]
    fn higher_quality_is_more_faithful_and_bigger() {
        let img = test_image(64, 64);
        let low = encode(&img, 20);
        let high = encode(&img, 95);
        assert!(high.len() > low.len());
        let psnr_low = psnr(&img, &decode(&low).unwrap());
        let psnr_high = psnr(&img, &decode(&high).unwrap());
        assert!(psnr_high > psnr_low, "{psnr_high} vs {psnr_low}");
    }

    #[test]
    fn compresses_camera_tiles_hard() {
        // The WispCam motivation: raw pixels are very compressible.
        let img = test_image(128, 128);
        let packed = encode(&img, 50);
        let ratio = packed.len() as f64 / img.pixels().len() as f64;
        assert!(ratio < 0.145, "ratio {ratio} outside the paper's band");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0, 0, 0, 0, 50, 0]).is_err()); // zero dims
        assert!(decode(&[8, 0, 8, 0, 50, 0, 0xFF, 0xFF]).is_err()); // bad body
    }

    #[test]
    fn synthetic_sensor_tile_encodes() {
        use neofog_sensors::{SensorKind, SignalGenerator};
        let mut gen = SignalGenerator::new(SensorKind::Lupa1399, 4);
        let pixels = gen.generate(32 * 32);
        let img = GrayImage::new(32, 32, pixels);
        let packed = encode(&img, 70);
        let restored = decode(&packed).unwrap();
        assert!(psnr(&img, &restored) > 30.0);
        assert!(packed.len() < img.pixels().len() / 2);
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn rejects_unaligned_dimensions() {
        let _ = GrayImage::new(10, 8, vec![0; 80]);
    }
}

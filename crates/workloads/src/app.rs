//! The five measured applications and their Table 2 energy model.
//!
//! Every constant here is taken from, or derived exactly from, Table 2
//! of the paper ("Measured energy distribution on different platforms
//! using two different strategies"):
//!
//! * per-instruction energy 2.508 nJ (NVP at 1 MHz / 0.209 mW, 12
//!   cycles per instruction),
//! * on-air transmission energy 2851.2 nJ/byte (89.1 mW × 32 µs),
//! * the naive strategy samples-and-sends one payload at a time, while
//!   the buffered strategy accumulates a 64 KiB NV buffer, processes
//!   the batch with complex local computing, compresses, and transmits
//!   the compressed residue,
//! * energy comparison via the paper's equations (4)–(6).

use neofog_sensors::SensorKind;
use neofog_types::Energy;
use serde::{Deserialize, Serialize};

/// The NV buffer capacity the buffered strategy fills (bytes).
pub const BUFFER_BYTES: u64 = 64 * 1024;

/// Energy per instruction on the paper's NVP (Table 2: 2.508 nJ at
/// 1 MHz / 0.209 mW, 12 cycles per instruction).
#[must_use]
pub fn energy_per_instruction() -> Energy {
    Energy::from_nanojoules(2.508)
}

/// On-air energy per transmitted byte (Table 2: 89.1 mW × 32 µs =
/// 2851.2 nJ).
#[must_use]
pub fn energy_per_tx_byte() -> Energy {
    Energy::from_nanojoules(2851.2)
}

/// The two node-level strategies of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Naive sensing→computing→transmission: every sample is processed
    /// lightly and sent immediately (one RF session per sample).
    Naive,
    /// Sensing→buffering→complex-local-computing→compression→
    /// transmission: samples accumulate in the 64 KiB NV buffer and are
    /// processed/compressed as a batch.
    Buffered,
}

/// The five measured applications of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum App {
    /// Bridge cable strength monitoring.
    BridgeHealth,
    /// Wearable UV dose meter.
    UvMeter,
    /// WSN temperature logging.
    WsnTemp,
    /// WSN acceleration logging.
    WsnAccel,
    /// Heartbeat signal pattern matching.
    PatternMatching,
}

impl App {
    /// All five applications, Table 2 row order.
    pub const ALL: [App; 5] = [
        App::BridgeHealth,
        App::UvMeter,
        App::WsnTemp,
        App::WsnAccel,
        App::PatternMatching,
    ];

    /// Display name matching Table 2.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            App::BridgeHealth => "Bridge Health",
            App::UvMeter => "UV Meter",
            App::WsnTemp => "WSN-Temp.",
            App::WsnAccel => "WSN-Accel.",
            App::PatternMatching => "Pattern Matching",
        }
    }

    /// The sensor the application samples.
    #[must_use]
    pub fn sensor(self) -> SensorKind {
        match self {
            App::BridgeHealth | App::WsnAccel => SensorKind::Lis331dlh,
            App::UvMeter => SensorKind::UvPhotodiode,
            App::WsnTemp => SensorKind::Tmp101,
            App::PatternMatching => SensorKind::EcgFrontend,
        }
    }

    /// Instructions of the naive per-sample processing (Table 2
    /// "Inst. NO.").
    #[must_use]
    pub fn naive_instructions(self) -> u64 {
        match self {
            App::BridgeHealth => 545,
            App::UvMeter => 460,
            App::WsnTemp => 56,
            App::WsnAccel => 477,
            App::PatternMatching => 1670,
        }
    }

    /// Payload bytes of one sample (implied by Table 2's TX energies:
    /// TX energy / 2851.2 nJ per byte).
    #[must_use]
    pub fn payload_bytes(self) -> u32 {
        match self {
            App::BridgeHealth => 8,
            App::UvMeter => 2,
            App::WsnTemp => 2,
            App::WsnAccel => 6,
            App::PatternMatching => 1,
        }
    }

    /// Measured compute energy of one buffered batch (Table 2).
    #[must_use]
    pub fn buffered_compute_energy(self) -> Energy {
        Energy::from_millijoules(match self {
            App::BridgeHealth => 81.7,
            App::UvMeter => 108.3,
            App::WsnTemp => 75.0,
            App::WsnAccel => 83.6,
            App::PatternMatching => 345.1,
        })
    }

    /// Measured transmit energy of one buffered batch (Table 2).
    #[must_use]
    pub fn buffered_tx_energy(self) -> Energy {
        Energy::from_millijoules(match self {
            App::BridgeHealth => 6.95,
            App::UvMeter => 6.8,
            App::WsnTemp => 6.99,
            App::WsnAccel => 6.59,
            App::PatternMatching => 5.39,
        })
    }

    /// Samples needed to fill the 64 KiB buffer.
    #[must_use]
    pub fn samples_per_batch(self) -> u64 {
        BUFFER_BYTES / u64::from(self.payload_bytes())
    }

    /// Instructions of one buffered batch, implied by the measured
    /// batch compute energy.
    #[must_use]
    pub fn buffered_instructions(self) -> u64 {
        (self.buffered_compute_energy() / energy_per_instruction()).round() as u64
    }

    /// Per-sample instructions under the buffered strategy.
    #[must_use]
    pub fn buffered_instructions_per_sample(self) -> u64 {
        self.buffered_instructions() / self.samples_per_batch().max(1)
    }

    /// Compressed output bytes of one batch, implied by the measured
    /// batch TX energy.
    #[must_use]
    pub fn compressed_bytes(self) -> u32 {
        (self.buffered_tx_energy() / energy_per_tx_byte()).round() as u32
    }

    /// Achieved compression ratio (compressed/raw) of the batch.
    #[must_use]
    pub fn compression_ratio(self) -> f64 {
        f64::from(self.compressed_bytes()) / BUFFER_BYTES as f64
    }

    /// Energy of one naive sample: compute + transmit (nJ).
    #[must_use]
    pub fn naive_sample_energy(self) -> Energy {
        energy_per_instruction() * self.naive_instructions() as f64
            + energy_per_tx_byte() * f64::from(self.payload_bytes())
    }

    /// Computes the full Table 2 row for this application.
    #[must_use]
    pub fn energy_row(self) -> AppEnergyRow {
        let naive_compute = energy_per_instruction() * self.naive_instructions() as f64;
        let naive_tx = energy_per_tx_byte() * f64::from(self.payload_bytes());
        let naive_ratio = naive_compute / (naive_compute + naive_tx);
        let buf_c = self.buffered_compute_energy();
        let buf_t = self.buffered_tx_energy();
        let buffered_ratio = buf_c / (buf_c + buf_t);
        // Equations (4)-(6): scale the naive strategy to one buffer's
        // worth of data and compare.
        let e_naive = (naive_compute + naive_tx) * self.samples_per_batch() as f64;
        let e_new = buf_c + buf_t;
        let saved_ratio =
            (e_new.as_millijoules() - e_naive.as_millijoules()) / e_naive.as_millijoules();
        AppEnergyRow {
            app: self,
            naive_instructions: self.naive_instructions(),
            naive_compute,
            naive_tx,
            naive_compute_ratio: naive_ratio,
            buffered_compute: buf_c,
            buffered_tx: buf_t,
            buffered_compute_ratio: buffered_ratio,
            energy_saved_ratio: saved_ratio,
        }
    }
}

/// One row of Table 2, fully derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppEnergyRow {
    /// The application.
    pub app: App,
    /// Naive per-sample instruction count.
    pub naive_instructions: u64,
    /// Naive per-sample compute energy.
    pub naive_compute: Energy,
    /// Naive per-sample transmit energy.
    pub naive_tx: Energy,
    /// Naive compute share of total energy.
    pub naive_compute_ratio: f64,
    /// Buffered batch compute energy.
    pub buffered_compute: Energy,
    /// Buffered batch transmit energy.
    pub buffered_tx: Energy,
    /// Buffered compute share of total energy.
    pub buffered_compute_ratio: f64,
    /// Paper equation (6): `(E_new − E_naive)/E_naive` (negative =
    /// savings).
    pub energy_saved_ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_compute_energies_match_table2() {
        let expect = [1366.86, 1153.68, 140.448, 1196.316, 4188.36];
        for (app, nj) in App::ALL.iter().zip(expect) {
            let row = app.energy_row();
            assert!(
                (row.naive_compute.as_nanojoules() - nj).abs() < 1e-6,
                "{app:?}"
            );
        }
    }

    #[test]
    fn naive_tx_energies_match_table2() {
        let expect = [22_809.6, 5_702.4, 5_702.4, 17_107.2, 2_851.2];
        for (app, nj) in App::ALL.iter().zip(expect) {
            let row = app.energy_row();
            assert!((row.naive_tx.as_nanojoules() - nj).abs() < 1e-6, "{app:?}");
        }
    }

    #[test]
    fn naive_compute_ratios_match_table2() {
        let expect = [0.0565, 0.168, 0.024, 0.0653, 0.595];
        for (app, r) in App::ALL.iter().zip(expect) {
            let row = app.energy_row();
            assert!(
                (row.naive_compute_ratio - r).abs() < 0.001,
                "{app:?}: {}",
                row.naive_compute_ratio
            );
        }
    }

    #[test]
    fn buffered_compute_ratios_match_table2() {
        let expect = [0.922, 0.941, 0.915, 0.927, 0.985];
        for (app, r) in App::ALL.iter().zip(expect) {
            let row = app.energy_row();
            assert!(
                (row.buffered_compute_ratio - r).abs() < 0.001,
                "{app:?}: {}",
                row.buffered_compute_ratio
            );
        }
    }

    #[test]
    fn energy_saved_ratios_match_table2() {
        // Paper: -55.2 %, -48.8 %, -57.1 %, -54.9 %, -24.1 %. Our exact
        // recomputation lands within 0.15 pp of each printed value
        // (the paper's own rounding).
        let expect = [-0.552, -0.488, -0.571, -0.549, -0.241];
        for (app, r) in App::ALL.iter().zip(expect) {
            let row = app.energy_row();
            assert!(
                (row.energy_saved_ratio - r).abs() < 0.0015,
                "{app:?}: {}",
                row.energy_saved_ratio
            );
        }
    }

    #[test]
    fn compression_ratios_sit_in_paper_band() {
        // §5.1: compression reduces data to 3 %–14.5 % of original;
        // the Table 2 batches land at the strong end (~3–4 %).
        for app in App::ALL {
            let ratio = app.compression_ratio();
            assert!((0.028..=0.145).contains(&ratio), "{app:?}: ratio {ratio}");
        }
    }

    #[test]
    fn batch_sizes_follow_payloads() {
        assert_eq!(App::BridgeHealth.samples_per_batch(), 8192);
        assert_eq!(App::UvMeter.samples_per_batch(), 32_768);
        assert_eq!(App::WsnAccel.samples_per_batch(), 10_922);
        assert_eq!(App::PatternMatching.samples_per_batch(), 65_536);
    }

    #[test]
    fn buffered_work_is_compute_dominated() {
        for app in App::ALL {
            let row = app.energy_row();
            assert!(row.buffered_compute_ratio > 0.9, "{app:?}");
            assert!(row.naive_compute_ratio < row.buffered_compute_ratio);
        }
    }

    #[test]
    fn buffered_instruction_counts_are_large() {
        // Complex local computing: tens of millions of instructions per
        // batch vs hundreds per naive sample.
        for app in App::ALL {
            assert!(app.buffered_instructions() > 10_000_000, "{app:?}");
            assert!(
                app.buffered_instructions_per_sample() > app.naive_instructions(),
                "{app:?}"
            );
        }
    }

    #[test]
    fn sensors_match_payload_sizes() {
        use neofog_sensors::SensorSpec;
        for app in App::ALL {
            // Bridge health combines 3-axis accel+extras into an
            // 8-byte record; the raw accelerometer sample is 6 bytes.
            if app == App::BridgeHealth {
                continue;
            }
            let spec = SensorSpec::of(app.sensor());
            assert_eq!(spec.bytes_per_sample, app.payload_bytes(), "{app:?}");
        }
    }
}

//! Property tests: the RF timing model's structure.

use neofog_rf::{LossModel, RfTimings};
use proptest::prelude::*;

proptest! {
    #[test]
    fn tx_times_are_monotone_in_payload(a in 0u32..10_000, b in 0u32..10_000) {
        let t = RfTimings::paper_default();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(t.software_tx_time(lo) <= t.software_tx_time(hi));
        prop_assert!(t.nvrf_tx_time(lo) <= t.nvrf_tx_time(hi));
        prop_assert!(t.on_air_time(lo) <= t.on_air_time(hi));
    }

    #[test]
    fn nvrf_always_beats_software(n in 0u32..60_000) {
        let t = RfTimings::paper_default();
        prop_assert!(t.nvrf_tx_time(n) < t.software_tx_time(n));
        prop_assert!(t.nvrf_tx_energy(n) < t.software_tx_energy(n));
    }

    #[test]
    fn energies_scale_with_times(n in 1u32..10_000) {
        // E = P x t exactly, for every formula.
        let t = RfTimings::paper_default();
        let p = t.active_power.as_milliwatts();
        for (time, energy) in [
            (t.on_air_time(n), t.on_air_energy(n)),
            (t.nvrf_tx_time(n), t.nvrf_tx_energy(n)),
            (t.software_tx_time(n), t.software_tx_energy(n)),
        ] {
            let expect = p * time.as_micros() as f64;
            prop_assert!((energy.as_nanojoules() - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn chain_success_is_multiplicative(h1 in 0u32..20, h2 in 0u32..20) {
        let m = LossModel::paper_default();
        let combined = m.chain_success(h1 + h2);
        let product = m.chain_success(h1) * m.chain_success(h2);
        prop_assert!((combined - product).abs() < 1e-12);
    }

    #[test]
    fn weather_only_reduces_success(loss in 0.0..0.99f64) {
        let base = LossModel::paper_default();
        let wet = LossModel::paper_default().with_weather_loss(loss);
        prop_assert!(wet.success_probability() <= base.success_probability());
        prop_assert!(wet.success_probability() >= 0.0);
    }
}

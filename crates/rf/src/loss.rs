//! Packet-loss process.
//!
//! Calibration (paper §4): a 10-day, 3-mote point-hop-router experiment
//! (A→B→C, 10–15 m hops, constant light) observed **0.75 %** loss over
//! 14 400 expected packets, "mainly affected by weather, especially
//! rain", so per-hop success between two sufficiently powered nodes is
//! modelled as 99.25 %, degraded further by a weather factor.

use neofog_types::SimRng;
use serde::{Deserialize, Serialize};

/// Bernoulli per-hop delivery model with a weather multiplier.
///
/// # Examples
///
/// ```
/// use neofog_rf::LossModel;
/// use neofog_types::SimRng;
///
/// let model = LossModel::paper_default();
/// let mut rng = SimRng::seed_from(1);
/// let delivered = (0..10_000).filter(|_| model.delivered(&mut rng)).count();
/// assert!(delivered > 9_800); // ≈ 99.25 %
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// Per-hop success probability in clear weather.
    base_success: f64,
    /// Additional loss probability contributed by weather, in `[0, 1)`.
    weather_loss: f64,
}

impl LossModel {
    /// The measured model: 99.25 % per-hop success, clear weather.
    #[must_use]
    pub fn paper_default() -> Self {
        LossModel {
            base_success: 0.9925,
            weather_loss: 0.0,
        }
    }

    /// Creates a model with an explicit success probability.
    ///
    /// # Panics
    ///
    /// Panics if `success` is outside `[0, 1]`.
    #[must_use]
    pub fn with_success(success: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&success),
            "success must be a probability"
        );
        LossModel {
            base_success: success,
            weather_loss: 0.0,
        }
    }

    /// Adds weather-induced loss (e.g. 0.05 during heavy rain).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1)`.
    #[must_use]
    pub fn with_weather_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "weather loss must be in [0, 1)");
        self.weather_loss = loss;
        self
    }

    /// The effective per-hop success probability.
    #[must_use]
    pub fn success_probability(&self) -> f64 {
        (self.base_success * (1.0 - self.weather_loss)).clamp(0.0, 1.0)
    }

    /// Samples one delivery attempt.
    #[must_use]
    pub fn delivered(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.success_probability())
    }

    /// Probability that an `hops`-hop relay chain delivers end to end.
    #[must_use]
    pub fn chain_success(&self, hops: u32) -> f64 {
        self.success_probability().powi(hops as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_is_0_75_percent_loss() {
        let m = LossModel::paper_default();
        assert!((m.success_probability() - 0.9925).abs() < 1e-12);
    }

    #[test]
    fn weather_compounds_loss() {
        let m = LossModel::paper_default().with_weather_loss(0.05);
        assert!((m.success_probability() - 0.9925 * 0.95).abs() < 1e-12);
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let m = LossModel::with_success(0.9);
        let mut rng = SimRng::seed_from(77);
        let n = 100_000;
        let ok = (0..n).filter(|_| m.delivered(&mut rng)).count();
        let rate = ok as f64 / f64::from(n);
        assert!((rate - 0.9).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn chain_success_decays_with_hops() {
        let m = LossModel::paper_default();
        // Figure 7: densifying from 9 to 25 hops hurts end-to-end QoS.
        let nine = m.chain_success(9);
        let twenty_five = m.chain_success(25);
        assert!(nine > twenty_five);
        assert!((nine - 0.9925_f64.powi(9)).abs() < 1e-12);
    }

    #[test]
    fn extreme_probabilities() {
        let mut rng = SimRng::seed_from(1);
        assert!(LossModel::with_success(1.0).delivered(&mut rng));
        assert!(!LossModel::with_success(0.0).delivered(&mut rng));
    }
}

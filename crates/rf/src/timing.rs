//! The paper's measured RF timing/energy formulas as pure functions.
//!
//! All constants come from §4 ("Simulation Methodology"), measured on
//! real ML7266 Zigbee hardware with and without the fabricated NVRF.

use neofog_types::{Duration, Energy, Power};
use serde::{Deserialize, Serialize};

/// Measured radio constants bundled into one value so experiments can
/// ablate them (e.g. sweep the init cost).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RfTimings {
    /// Power while transmitting or receiving (paper: 89.1 mW).
    pub active_power: Power,
    /// Power while idle/standby (paper: 14.93 mW).
    pub idle_power: Power,
    /// Software (host-MCU driven) initialization (paper: 531 ms @1 MHz).
    pub software_init: Duration,
    /// Per-transmission fixed software overhead (paper: 255 ms).
    pub software_tx_fixed: Duration,
    /// Per-byte software handling (paper: 1.44 ms/byte).
    pub software_tx_per_byte_us: u64,
    /// NVRF one-time configuration by the processor (paper: 28 ms).
    pub nvrf_init: Duration,
    /// NVRF start latency per transmission (paper: 1.74 ms).
    pub nvrf_start: Duration,
    /// NVRF fixed per-transmission overhead (paper: 0.156 ms).
    pub nvrf_tx_fixed: Duration,
    /// NVRF per-byte handling (paper: 0.216 ms/byte).
    pub nvrf_tx_per_byte_us: u64,
    /// On-air time per byte at 250 kbps (paper: 0.032 ms/byte).
    pub on_air_per_byte_us: u64,
}

impl RfTimings {
    /// The ML7266 constants measured in the paper.
    #[must_use]
    pub fn paper_default() -> Self {
        RfTimings {
            active_power: Power::from_milliwatts(89.1),
            idle_power: Power::from_milliwatts(14.93),
            software_init: Duration::from_millis(531),
            software_tx_fixed: Duration::from_millis(255),
            software_tx_per_byte_us: 1_440,
            nvrf_init: Duration::from_millis(28),
            nvrf_start: Duration::from_micros(1_740),
            nvrf_tx_fixed: Duration::from_micros(156),
            nvrf_tx_per_byte_us: 216,
            on_air_per_byte_us: 32,
        }
    }

    /// Software-RF transmission time for `n` bytes:
    /// `255 + 1.44·n + 0.032·n` ms.
    #[must_use]
    pub fn software_tx_time(&self, n: u32) -> Duration {
        self.software_tx_fixed
            + Duration::from_micros(
                u64::from(n) * (self.software_tx_per_byte_us + self.on_air_per_byte_us),
            )
    }

    /// NVRF transmission time for `n` bytes:
    /// `1.74 + 0.156 + 0.216·n + 0.032·n` ms.
    #[must_use]
    pub fn nvrf_tx_time(&self, n: u32) -> Duration {
        self.nvrf_start
            + self.nvrf_tx_fixed
            + Duration::from_micros(
                u64::from(n) * (self.nvrf_tx_per_byte_us + self.on_air_per_byte_us),
            )
    }

    /// Pure on-air time for `n` bytes (the 250 kbps airtime).
    #[must_use]
    pub fn on_air_time(&self, n: u32) -> Duration {
        Duration::from_micros(u64::from(n) * self.on_air_per_byte_us)
    }

    /// Pure on-air energy for `n` bytes — the "TX energy" column of
    /// Table 2 (2851.2 nJ/byte at the paper's operating point).
    #[must_use]
    pub fn on_air_energy(&self, n: u32) -> Energy {
        self.active_power * self.on_air_time(n)
    }

    /// Energy of a software-RF transmission (active power over the
    /// whole handling + airtime window).
    #[must_use]
    pub fn software_tx_energy(&self, n: u32) -> Energy {
        self.active_power * self.software_tx_time(n)
    }

    /// Energy of an NVRF transmission.
    #[must_use]
    pub fn nvrf_tx_energy(&self, n: u32) -> Energy {
        self.active_power * self.nvrf_tx_time(n)
    }

    /// Energy of the software re-initialization (radio sits active
    /// while the host drives it).
    #[must_use]
    pub fn software_init_energy(&self) -> Energy {
        self.active_power * self.software_init
    }

    /// Energy of the NVRF one-time configuration.
    #[must_use]
    pub fn nvrf_init_energy(&self) -> Energy {
        self.active_power * self.nvrf_init
    }

    /// Init-time speedup of NVRF over software control (paper: ~19×
    /// for the ML7266 figures; the earlier prototype reported 27×).
    #[must_use]
    pub fn init_speedup(&self) -> f64 {
        self.software_init.as_micros() as f64 / self.nvrf_init.as_micros() as f64
    }

    /// Effective throughput (bytes/s) for back-to-back `n`-byte
    /// transmissions under each control scheme.
    #[must_use]
    pub fn throughput_gain(&self, n: u32) -> f64 {
        let sw = self.software_tx_time(n).as_micros() as f64;
        let nv = self.nvrf_tx_time(n).as_micros() as f64;
        sw / nv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_air_energy_matches_table2() {
        let t = RfTimings::paper_default();
        // 2851.2 nJ per byte; bridge health sends 8 bytes -> 22809.6 nJ.
        assert!((t.on_air_energy(1).as_nanojoules() - 2851.2).abs() < 1e-9);
        assert!((t.on_air_energy(8).as_nanojoules() - 22_809.6).abs() < 1e-9);
        assert!((t.on_air_energy(6).as_nanojoules() - 17_107.2).abs() < 1e-9);
        assert!((t.on_air_energy(2).as_nanojoules() - 5_702.4).abs() < 1e-9);
    }

    #[test]
    fn software_tx_formula() {
        let t = RfTimings::paper_default();
        // 255 + (1.44+0.032)*100 = 402.2 ms
        assert_eq!(t.software_tx_time(100), Duration::from_micros(402_200));
    }

    #[test]
    fn nvrf_tx_formula() {
        let t = RfTimings::paper_default();
        // 1.74 + 0.156 + (0.216+0.032)*100 = 26.696 ms
        assert_eq!(t.nvrf_tx_time(100), Duration::from_micros(26_696));
    }

    #[test]
    fn nvrf_init_is_much_faster() {
        let t = RfTimings::paper_default();
        assert!(t.init_speedup() > 15.0);
        assert!(t.nvrf_init < t.software_init);
    }

    #[test]
    fn nvrf_throughput_gain_is_large() {
        let t = RfTimings::paper_default();
        // The paper reports 6.2x throughput for NVRF overall; for
        // small WSN frames the formula gain is much larger, for bulk
        // transfers it approaches the per-byte ratio ≈ 5.9x.
        assert!(t.throughput_gain(8) > 6.0);
        assert!(t.throughput_gain(60_000) > 5.0);
    }

    #[test]
    fn zero_bytes_cost_only_fixed_overheads() {
        let t = RfTimings::paper_default();
        assert_eq!(t.on_air_time(0), Duration::ZERO);
        assert_eq!(t.software_tx_time(0), Duration::from_millis(255));
        assert_eq!(t.nvrf_tx_time(0), Duration::from_micros(1_896));
    }
}

//! Radio substrate for NEOFog: software-controlled RF vs the
//! nonvolatile RF controller (NVRF).
//!
//! The paper's measured radio model (§2.2, §4):
//!
//! * Zigbee-class transceiver at 250 kbps; ≈89.1 mW in TX/RX, 14.93 mW
//!   idle, so one byte on air costs 32 µs × 89.1 mW = 2851.2 nJ.
//! * Traditional software RF re-initialization after power failure:
//!   531 ms with a 1 MHz host MCU, then a transmission of `N` bytes
//!   takes `(255 + 1.44·N + 0.032·N)` ms.
//! * The NVRF controller [Wang et al.] stores the RF configuration in a
//!   nonvolatile register file and restores it by direct nonvolatile
//!   memory access: 28 ms one-time configuration, then
//!   `(1.74 + 0.156 + 0.216·N + 0.032·N)` ms per transmission, a 27×
//!   init speedup and 6.2× throughput gain.
//! * NVRF state is **cloneable**, the property NVD4Q virtualization
//!   exploits: a new node copies a neighbour's NVRF register file and
//!   joins its clone set without any network reconstruction.
//!
//! Modules: [`timing`] (pure measured formulas), [`model`] (stateful
//! radio models), [`packet`] (frames), [`loss`] (the measured 0.75 %
//! weather-driven loss process).

pub mod loss;
pub mod model;
pub mod packet;
pub mod timing;

pub use loss::LossModel;
pub use model::{NvRf, RadioCost, RadioModel, RfConfig, SoftwareRf};
pub use packet::{Packet, PacketKind};
pub use timing::RfTimings;

//! Stateful radio models: software-controlled RF vs NVRF.
//!
//! The behavioural contrast (paper Figure 3): a software-controlled
//! transceiver loses channel/route configuration at every power
//! failure and must be re-initialized by the host processor, while the
//! NVRF controller keeps the configuration in nonvolatile flip-flops,
//! restores it by direct nonvolatile memory access, and can even run
//! transmissions with *no* processor involvement once armed.

use crate::timing::RfTimings;
use neofog_types::{Duration, Energy, NeoFogError, Power, Result};
use serde::{Deserialize, Serialize};

/// Time and energy cost of one radio operation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RadioCost {
    /// Wall-clock time of the operation.
    pub time: Duration,
    /// Energy drawn from the node supply.
    pub energy: Energy,
}

impl RadioCost {
    /// Combines two costs sequentially.
    #[must_use]
    pub fn then(self, other: RadioCost) -> RadioCost {
        RadioCost {
            time: self.time + other.time,
            energy: self.energy + other.energy,
        }
    }
}

/// The configuration an RF transceiver needs before it can transmit.
///
/// For NVD4Q this is the state a joining node *clones* from its nearest
/// neighbour: channel map, network/route identity (which
/// `AssociatedDevList` snapshot it belongs to) and the slot timer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RfConfig {
    /// RF channel index.
    pub channel: u8,
    /// Identifier of the network association state (route tables etc.).
    pub network_epoch: u64,
    /// Slot interval in ticks, shared by all clones of a logical node.
    pub wake_interval_ticks: u32,
    /// Phase offset in ticks, unique per clone within a clone set.
    pub phase_offset_ticks: u32,
}

impl RfConfig {
    /// A fresh configuration for a network epoch on channel 11 (the
    /// first Zigbee 2.4 GHz channel).
    #[must_use]
    pub fn new(network_epoch: u64) -> Self {
        RfConfig {
            channel: 11,
            network_epoch,
            wake_interval_ticks: 1,
            phase_offset_ticks: 0,
        }
    }
}

/// Common interface over the two radio control schemes.
///
/// This trait is object-safe so nodes can hold `Box<dyn RadioModel>`.
pub trait RadioModel {
    /// `true` when the radio holds a valid configuration and can
    /// transmit without (re)initialization.
    fn is_ready(&self) -> bool;

    /// (Re)initializes the radio, storing `config`. Returns the cost.
    fn initialize(&mut self, config: RfConfig) -> RadioCost;

    /// Reacts to a power failure (a software radio forgets its
    /// configuration; an NVRF retains it).
    fn power_failure(&mut self);

    /// Transmits `bytes` payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::InvalidConfig`] if the radio is not
    /// ready.
    fn transmit(&mut self, bytes: u32) -> Result<RadioCost>;

    /// Receives `bytes` payload bytes (airtime at active power).
    fn receive(&self, bytes: u32) -> RadioCost;

    /// Standby power while the radio is powered but idle.
    fn standby_power(&self) -> Power;

    /// The stored configuration, if any.
    fn config(&self) -> Option<&RfConfig>;
}

/// Software-controlled transceiver (paper Figure 3(a)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftwareRf {
    timings: RfTimings,
    config: Option<RfConfig>,
}

impl SoftwareRf {
    /// Creates an unconfigured software-controlled radio.
    #[must_use]
    pub fn new(timings: RfTimings) -> Self {
        SoftwareRf {
            timings,
            config: None,
        }
    }

    /// Creates one with the paper's measured timings.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(RfTimings::paper_default())
    }

    /// The timing constants in use.
    #[must_use]
    pub fn timings(&self) -> &RfTimings {
        &self.timings
    }
}

impl RadioModel for SoftwareRf {
    fn is_ready(&self) -> bool {
        self.config.is_some()
    }

    fn initialize(&mut self, config: RfConfig) -> RadioCost {
        self.config = Some(config);
        RadioCost {
            time: self.timings.software_init,
            energy: self.timings.software_init_energy(),
        }
    }

    fn power_failure(&mut self) {
        // All transceiver state is volatile.
        self.config = None;
    }

    fn transmit(&mut self, bytes: u32) -> Result<RadioCost> {
        if self.config.is_none() {
            return Err(NeoFogError::invalid_config("software RF not initialized"));
        }
        Ok(RadioCost {
            time: self.timings.software_tx_time(bytes),
            energy: self.timings.software_tx_energy(bytes),
        })
    }

    fn receive(&self, bytes: u32) -> RadioCost {
        RadioCost {
            time: self.timings.on_air_time(bytes),
            energy: self.timings.on_air_energy(bytes),
        }
    }

    fn standby_power(&self) -> Power {
        self.timings.idle_power
    }

    fn config(&self) -> Option<&RfConfig> {
        self.config.as_ref()
    }
}

/// Nonvolatile RF controller (paper Figure 3(b)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvRf {
    timings: RfTimings,
    config: Option<RfConfig>,
    /// Transmissions performed without processor involvement since the
    /// last configuration (the DNVMA self-reinitialization path).
    autonomous_txs: u64,
}

impl NvRf {
    /// Creates an unconfigured NVRF.
    #[must_use]
    pub fn new(timings: RfTimings) -> Self {
        NvRf {
            timings,
            config: None,
            autonomous_txs: 0,
        }
    }

    /// Creates one with the paper's measured timings.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(RfTimings::paper_default())
    }

    /// The timing constants in use.
    #[must_use]
    pub fn timings(&self) -> &RfTimings {
        &self.timings
    }

    /// Clones the nonvolatile controller state from a neighbour — the
    /// NVD4Q join operation (Algorithm 2 lines 2–3). The clone is given
    /// its own phase offset by the caller afterwards.
    ///
    /// Returns the cost: reading the neighbour's registers over the air
    /// plus writing the local NV register file (modelled as one NVRF
    /// start + a small register payload each way).
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::InvalidConfig`] if the source NVRF has no
    /// configuration to clone.
    pub fn clone_state_from(&mut self, source: &NvRf) -> Result<RadioCost> {
        let cfg = source
            .config
            .clone()
            .ok_or_else(|| NeoFogError::invalid_config("source NVRF holds no configuration"))?;
        self.config = Some(cfg);
        // Register file is tens of bytes; model as a 32-byte exchange.
        let t = self.timings.nvrf_tx_time(32);
        Ok(RadioCost {
            time: t,
            energy: self.timings.active_power * t,
        })
    }

    /// Updates the slot timer parameters (Algorithm 2 line 6: "update
    /// or not update wake-up interval time"). Free of radio cost — the
    /// processor writes NV registers directly.
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::InvalidConfig`] when unconfigured.
    pub fn set_schedule(&mut self, interval_ticks: u32, phase_ticks: u32) -> Result<()> {
        let cfg = self
            .config
            .as_mut()
            .ok_or_else(|| NeoFogError::invalid_config("NVRF not configured"))?;
        cfg.wake_interval_ticks = interval_ticks.max(1);
        cfg.phase_offset_ticks = phase_ticks;
        Ok(())
    }

    /// Number of self-reinitialized (processor-free) transmissions.
    #[must_use]
    pub fn autonomous_txs(&self) -> u64 {
        self.autonomous_txs
    }
}

impl RadioModel for NvRf {
    fn is_ready(&self) -> bool {
        self.config.is_some()
    }

    fn initialize(&mut self, config: RfConfig) -> RadioCost {
        self.config = Some(config);
        RadioCost {
            time: self.timings.nvrf_init,
            energy: self.timings.nvrf_init_energy(),
        }
    }

    fn power_failure(&mut self) {
        // Configuration lives in nonvolatile flip-flops: nothing lost.
    }

    fn transmit(&mut self, bytes: u32) -> Result<RadioCost> {
        if self.config.is_none() {
            return Err(NeoFogError::invalid_config("NVRF not configured"));
        }
        self.autonomous_txs += 1;
        Ok(RadioCost {
            time: self.timings.nvrf_tx_time(bytes),
            energy: self.timings.nvrf_tx_energy(bytes),
        })
    }

    fn receive(&self, bytes: u32) -> RadioCost {
        RadioCost {
            time: self.timings.on_air_time(bytes),
            energy: self.timings.on_air_energy(bytes),
        }
    }

    fn standby_power(&self) -> Power {
        self.timings.idle_power
    }

    fn config(&self) -> Option<&RfConfig> {
        self.config.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_rf_forgets_config_on_power_failure() {
        let mut rf = SoftwareRf::paper_default();
        rf.initialize(RfConfig::new(1));
        assert!(rf.is_ready());
        rf.power_failure();
        assert!(!rf.is_ready());
        assert!(rf.transmit(8).is_err());
    }

    #[test]
    fn nvrf_retains_config_across_power_failure() {
        let mut rf = NvRf::paper_default();
        rf.initialize(RfConfig::new(1));
        rf.power_failure();
        assert!(rf.is_ready());
        let cost = rf.transmit(8).unwrap();
        assert_eq!(cost.time, RfTimings::paper_default().nvrf_tx_time(8));
        assert_eq!(rf.autonomous_txs(), 1);
    }

    #[test]
    fn unconfigured_radios_refuse_to_transmit() {
        let mut sw = SoftwareRf::paper_default();
        let mut nv = NvRf::paper_default();
        assert!(sw.transmit(1).is_err());
        assert!(nv.transmit(1).is_err());
    }

    #[test]
    fn per_transmission_cost_gap_matches_paper() {
        let mut sw = SoftwareRf::paper_default();
        let mut nv = NvRf::paper_default();
        sw.initialize(RfConfig::new(1));
        nv.initialize(RfConfig::new(1));
        let sw_cost = sw.transmit(8).unwrap();
        let nv_cost = nv.transmit(8).unwrap();
        assert!(sw_cost.time > nv_cost.time * 60);
        assert!(sw_cost.energy > nv_cost.energy);
    }

    #[test]
    fn clone_state_copies_config() {
        let mut src = NvRf::paper_default();
        src.initialize(RfConfig {
            channel: 15,
            network_epoch: 9,
            ..RfConfig::new(9)
        });
        let mut dst = NvRf::paper_default();
        let cost = dst.clone_state_from(&src).unwrap();
        assert!(dst.is_ready());
        assert_eq!(dst.config().unwrap().channel, 15);
        assert_eq!(dst.config().unwrap().network_epoch, 9);
        assert!(cost.time < Duration::from_millis(20));
        // Cloning is much cheaper than software initialization.
        assert!(cost.time < RfTimings::paper_default().software_init);
    }

    #[test]
    fn clone_from_unconfigured_source_fails() {
        let src = NvRf::paper_default();
        let mut dst = NvRf::paper_default();
        assert!(dst.clone_state_from(&src).is_err());
    }

    #[test]
    fn set_schedule_updates_timer_fields() {
        let mut rf = NvRf::paper_default();
        assert!(rf.set_schedule(3, 1).is_err());
        rf.initialize(RfConfig::new(1));
        rf.set_schedule(3, 1).unwrap();
        let cfg = rf.config().unwrap();
        assert_eq!(cfg.wake_interval_ticks, 3);
        assert_eq!(cfg.phase_offset_ticks, 1);
        // Zero interval is clamped to 1.
        rf.set_schedule(0, 0).unwrap();
        assert_eq!(rf.config().unwrap().wake_interval_ticks, 1);
    }

    #[test]
    fn radios_are_object_safe() {
        let mut radios: Vec<Box<dyn RadioModel>> = vec![
            Box::new(SoftwareRf::paper_default()),
            Box::new(NvRf::paper_default()),
        ];
        for r in &mut radios {
            r.initialize(RfConfig::new(0));
            assert!(r.is_ready());
            assert!(r.transmit(4).is_ok());
        }
    }

    #[test]
    fn rx_costs_airtime() {
        let rf = NvRf::paper_default();
        let cost = rf.receive(10);
        assert_eq!(cost.time, Duration::from_micros(320));
        assert!((cost.energy.as_nanojoules() - 28512.0).abs() < 1e-9);
    }
}

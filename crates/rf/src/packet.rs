//! Radio frames exchanged between nodes.

use bytes::Bytes;
use neofog_types::{NodeId, PacketId};
use serde::{Deserialize, Serialize};

/// What a packet carries — the distinction matters for the paper's
/// metrics: only *raw* and *processed* data count toward packets
/// captured/processed; balance and control traffic is overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Raw sensor samples headed for the cloud (NOS behaviour).
    RawData,
    /// Locally processed / compressed results (FIOS fog output).
    Processed,
    /// Load-balance state exchange (energy level, NVP configuration).
    BalanceInfo,
    /// Task payload shipped to a neighbour for balanced execution.
    TaskTransfer,
    /// Network management (orphan scan, join, RTC sync, clone state).
    Control,
}

impl PacketKind {
    /// `true` for application data (raw or processed).
    #[must_use]
    pub fn is_data(self) -> bool {
        matches!(self, PacketKind::RawData | PacketKind::Processed)
    }
}

/// One frame on the air.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique packet identifier.
    pub id: PacketId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node (next hop in a chain mesh).
    pub dst: NodeId,
    /// Payload classification.
    pub kind: PacketKind,
    /// Payload length in bytes (what the radio cost model charges).
    pub payload_len: u32,
    /// Optional payload contents (examples carry real compressed
    /// bytes; the large-scale simulator leaves this empty and works on
    /// `payload_len` alone).
    #[serde(skip)]
    pub payload: Bytes,
}

impl Packet {
    /// Creates a packet carrying only a length (simulation use).
    #[must_use]
    pub fn sized(id: PacketId, src: NodeId, dst: NodeId, kind: PacketKind, len: u32) -> Self {
        Packet {
            id,
            src,
            dst,
            kind,
            payload_len: len,
            payload: Bytes::new(),
        }
    }

    /// Creates a packet carrying real bytes (example/binary use).
    #[must_use]
    pub fn with_payload(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        kind: PacketKind,
        payload: Bytes,
    ) -> Self {
        let payload_len = payload.len() as u32;
        Packet {
            id,
            src,
            dst,
            kind,
            payload_len,
            payload,
        }
    }

    /// Re-addresses the packet to the next hop, keeping the original
    /// source (relay semantics in a chain mesh).
    #[must_use]
    pub fn relayed_to(mut self, next_hop: NodeId) -> Self {
        self.dst = next_hop;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (PacketId, NodeId, NodeId) {
        (PacketId::new(1), NodeId::new(2), NodeId::new(3))
    }

    #[test]
    fn sized_packet_has_no_contents() {
        let (p, s, d) = ids();
        let pkt = Packet::sized(p, s, d, PacketKind::RawData, 8);
        assert_eq!(pkt.payload_len, 8);
        assert!(pkt.payload.is_empty());
    }

    #[test]
    fn payload_packet_derives_length() {
        let (p, s, d) = ids();
        let pkt =
            Packet::with_payload(p, s, d, PacketKind::Processed, Bytes::from_static(b"hello"));
        assert_eq!(pkt.payload_len, 5);
    }

    #[test]
    fn relay_keeps_source() {
        let (p, s, d) = ids();
        let pkt = Packet::sized(p, s, d, PacketKind::Processed, 4).relayed_to(NodeId::new(9));
        assert_eq!(pkt.src, s);
        assert_eq!(pkt.dst, NodeId::new(9));
    }

    #[test]
    fn data_classification() {
        assert!(PacketKind::RawData.is_data());
        assert!(PacketKind::Processed.is_data());
        assert!(!PacketKind::BalanceInfo.is_data());
        assert!(!PacketKind::Control.is_data());
        assert!(!PacketKind::TaskTransfer.is_data());
    }
}

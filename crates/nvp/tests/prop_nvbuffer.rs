//! Property tests: the NV FIFO agrees with a reference model.

use neofog_nvp::NvBuffer;
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Drain,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..64).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Drain),
    ]
}

proptest! {
    #[test]
    fn behaves_like_reference_deque(ops in prop::collection::vec(op(), 1..300)) {
        let capacity = 256usize;
        let mut buf = NvBuffer::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut model_used = 0usize;
        for o in ops {
            match o {
                Op::Push(n) => {
                    let fits = model_used + n as usize <= capacity;
                    let result = buf.push(n);
                    prop_assert_eq!(result.is_ok(), fits);
                    if fits {
                        model.push_back(n);
                        model_used += n as usize;
                    }
                }
                Op::Pop => {
                    let expect = model.pop_front();
                    if let Some(n) = expect {
                        model_used -= n as usize;
                    }
                    prop_assert_eq!(buf.pop(), expect);
                }
                Op::Drain => {
                    let batch = buf.drain();
                    let expect: Vec<u32> = model.drain(..).collect();
                    model_used = 0;
                    prop_assert_eq!(batch.sample_sizes, expect);
                }
            }
            prop_assert_eq!(buf.len(), model.len());
            prop_assert_eq!(buf.used(), model_used);
            prop_assert!(buf.used() <= buf.capacity());
        }
    }

    #[test]
    fn drain_total_equals_sum_of_sizes(pushes in prop::collection::vec(1u32..32, 0..50)) {
        let mut buf = NvBuffer::new(4096);
        let mut expect = 0usize;
        for p in pushes {
            if buf.push(p).is_ok() {
                expect += p as usize;
            }
        }
        let batch = buf.drain();
        prop_assert_eq!(batch.total_bytes, expect);
        prop_assert_eq!(
            batch.sample_sizes.iter().map(|&s| s as usize).sum::<usize>(),
            expect
        );
    }
}

//! Nonvolatile-processor substrate for NEOFog.
//!
//! Models the node's compute element (paper §2.2):
//!
//! * [`spec`] — processor specifications. The calibration is exactly
//!   self-consistent with the paper: the NVP runs at 1 MHz drawing
//!   0.209 mW, and an 8051-class core retires one instruction every
//!   12 cycles, so one instruction costs 12 µs × 0.209 mW = **2.508 nJ**
//!   — which reproduces every compute-energy entry of Table 2 to the
//!   digit (545 × 2.508 = 1366.86 nJ, …).
//! * [`processor`] — volatile vs nonvolatile processor state machines:
//!   a VP loses all task progress on power failure and pays a 300 µs
//!   restart; an NVP backs up into NV flip-flops and restores in
//!   7–32 µs, achieving forward progress under arbitrarily frequent
//!   outages.
//! * [`exec`] — the intermittent-execution engine: run a task of N
//!   instructions across a sequence of power on/off intervals and
//!   report completion, energy and progress lost.
//! * [`spendthrift`] — the frequency/resource-scaling policy of
//!   Ma et al. (ASP-DAC'17) that the paper assumes at node level:
//!   match clock frequency to income power so energy converts to work
//!   at the leanest point.
//! * [`nvbuffer`] — the 64 KiB nonvolatile FIFO between sensor and NVP
//!   (Figure 2(b)) that enables the buffered
//!   sensing→buffering→computing→compression→transmission strategy.

pub mod checkpoint;
pub mod exec;
pub mod nvbuffer;
pub mod processor;
pub mod spec;
pub mod spendthrift;

pub use checkpoint::{simulate_policy, CheckpointPolicy, CheckpointReport};
pub use exec::{ExecReport, IntermittentEngine, PowerInterval};
pub use nvbuffer::NvBuffer;
pub use processor::{Processor, ProcessorKind};
pub use spec::ProcSpec;
pub use spendthrift::{FrequencyLevel, SpendthriftPolicy};

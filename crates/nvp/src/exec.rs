//! The intermittent-execution engine.
//!
//! Drives a [`Processor`] through a sequence of power-on / power-off
//! intervals and reports how far a task got — the experiment behind the
//! paper's claim that replacing a VP+NOS with an NVP+FIOS yields
//! 2.2×–5× forward progress [Ma et al., MICRO'17].

use crate::processor::{Processor, ProcessorKind};
use neofog_types::{Duration, Energy};
use serde::{Deserialize, Serialize};

/// One power-supply interval: `on` of usable supply, then `off` dark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerInterval {
    /// Time the supply stays up.
    pub on: Duration,
    /// Time the supply stays down afterwards.
    pub off: Duration,
}

impl PowerInterval {
    /// Convenience constructor.
    #[must_use]
    pub const fn new(on: Duration, off: Duration) -> Self {
        PowerInterval { on, off }
    }
}

/// Outcome of running a task through an intermittent supply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    /// `true` if the whole task retired.
    pub completed: bool,
    /// Instructions retired (≤ task length; re-execution not counted).
    pub retired: u64,
    /// Instructions executed then lost to volatility.
    pub lost: u64,
    /// Wall-clock time elapsed, including off intervals.
    pub elapsed: Duration,
    /// Total energy drawn from the supply.
    pub energy: Energy,
    /// Power failures endured.
    pub power_cycles: u64,
}

/// Executes instruction-count tasks over interval-described supplies.
///
/// # Examples
///
/// ```
/// use neofog_nvp::{IntermittentEngine, PowerInterval, ProcessorKind};
/// use neofog_types::Duration;
///
/// let engine = IntermittentEngine::new(ProcessorKind::Nonvolatile);
/// let supply = vec![PowerInterval::new(
///     Duration::from_millis(5),
///     Duration::from_millis(5),
/// ); 10];
/// let report = engine.run(300, &supply);
/// assert!(report.completed);
/// ```
#[derive(Debug, Clone)]
pub struct IntermittentEngine {
    kind: ProcessorKind,
}

impl IntermittentEngine {
    /// Creates an engine for the given processor kind.
    #[must_use]
    pub fn new(kind: ProcessorKind) -> Self {
        IntermittentEngine { kind }
    }

    /// Runs a task of `instructions` through the supply schedule.
    ///
    /// Each `on` window first pays the restore/restart cost, then
    /// retires instructions until the window closes; each window end is
    /// a power failure (unless the task already completed).
    #[must_use]
    pub fn run(&self, instructions: u64, supply: &[PowerInterval]) -> ExecReport {
        let mut proc = Processor::new(self.kind);
        proc.load_task(instructions);
        let mut elapsed = Duration::ZERO;
        let per_inst_t = proc.spec().instruction_time();
        let per_inst_e = proc.spec().instruction_energy();

        for iv in supply {
            if proc.task_done() {
                break;
            }
            let (restore_t, _) = proc.power_restore();
            if iv.on <= restore_t {
                // Window too short to even boot; it still elapses.
                proc.power_failure();
                elapsed += iv.on + iv.off;
                continue;
            }
            let usable = iv.on - restore_t;
            let can_run = usable.as_micros() / per_inst_t.as_micros();
            let retired = proc.step(per_inst_e * can_run as f64);
            let run_time = proc.spec().execution_time(retired);
            if proc.task_done() {
                elapsed += restore_t + run_time;
                break;
            }
            proc.power_failure();
            elapsed += iv.on + iv.off;
        }

        ExecReport {
            completed: proc.task_done(),
            retired: proc.progress(),
            lost: proc.lost_instructions(),
            elapsed,
            energy: proc.energy_used(),
            power_cycles: proc.power_cycles(),
        }
    }

    /// Forward progress (retired instructions) achievable within a
    /// fixed number of identical supply windows — the paper's
    /// forward-progress metric.
    #[must_use]
    pub fn forward_progress(&self, window: PowerInterval, windows: usize) -> u64 {
        // An effectively infinite task: measure throughput, not completion.
        let supply = vec![window; windows];
        self.run(u64::MAX / 2, &supply).retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn completes_within_single_window() {
        let engine = IntermittentEngine::new(ProcessorKind::Nonvolatile);
        let report = engine.run(10, &[PowerInterval::new(ms(1), ms(0))]);
        assert!(report.completed);
        assert_eq!(report.retired, 10);
        assert_eq!(report.power_cycles, 0);
        // 7 us restore + 120 us exec.
        assert_eq!(report.elapsed, Duration::from_micros(127));
    }

    #[test]
    fn nvp_spans_windows_vp_does_not() {
        let supply = vec![PowerInterval::new(ms(1), ms(1)); 20];
        // 1 ms window at 12 µs/inst ≈ 82 instructions per window.
        let nvp = IntermittentEngine::new(ProcessorKind::Nonvolatile).run(500, &supply);
        let vp = IntermittentEngine::new(ProcessorKind::Volatile).run(500, &supply);
        assert!(nvp.completed);
        assert!(!vp.completed, "VP retired {}", vp.retired);
        assert!(vp.lost > 0);
    }

    #[test]
    fn window_shorter_than_restore_makes_no_progress() {
        let engine = IntermittentEngine::new(ProcessorKind::Volatile);
        // VP needs 300 µs to boot; give it 200 µs windows.
        let supply = vec![PowerInterval::new(Duration::from_micros(200), ms(1)); 50];
        let report = engine.run(1, &supply);
        assert!(!report.completed);
        assert_eq!(report.retired, 0);
    }

    #[test]
    fn nvp_forward_progress_exceeds_vp() {
        // Under short windows the NVP's 7 µs restore vs the VP's 300 µs
        // restart plus progress retention yields the paper's 2.2x-5x.
        let window = PowerInterval::new(Duration::from_micros(800), ms(1));
        let nvp = IntermittentEngine::new(ProcessorKind::Nonvolatile).forward_progress(window, 100);
        let vp = IntermittentEngine::new(ProcessorKind::Volatile).forward_progress(window, 100);
        // VP: (800-300)/12 = 41/window but all lost (task never ends);
        // retained progress counts only for NVP here. Compare retirement.
        assert!(nvp >= 2 * vp.max(1), "nvp {nvp} vs vp {vp}");
    }

    #[test]
    fn elapsed_counts_off_time() {
        let engine = IntermittentEngine::new(ProcessorKind::Nonvolatile);
        let supply = vec![PowerInterval::new(ms(1), ms(9)); 3];
        let report = engine.run(1_000_000, &supply);
        assert!(!report.completed);
        assert_eq!(report.elapsed, ms(30));
        assert_eq!(report.power_cycles, 3);
    }

    #[test]
    fn empty_supply_makes_no_progress() {
        let engine = IntermittentEngine::new(ProcessorKind::Nonvolatile);
        let report = engine.run(100, &[]);
        assert!(!report.completed);
        assert_eq!(report.retired, 0);
        assert_eq!(report.elapsed, Duration::ZERO);
    }

    #[test]
    fn zero_instruction_task_is_trivially_incomplete() {
        // A zero-length task never "completes" (nothing was loaded);
        // the engine should not loop or panic.
        let engine = IntermittentEngine::new(ProcessorKind::Nonvolatile);
        let report = engine.run(0, &[PowerInterval::new(ms(1), ms(1))]);
        assert_eq!(report.retired, 0);
    }
}

//! The Spendthrift frequency/resource-scaling policy.
//!
//! The paper assumes each NVP runs the *Spendthrift* architecture
//! [Ma et al., ASP-DAC'17]: sample the income power, then scale clock
//! frequency (and gate resources) so the core consumes income directly
//! rather than round-tripping energy through the capacitor. Higher
//! frequencies need higher voltage, so energy-per-instruction grows
//! with the level — running exactly at the income level is the leanest
//! conversion point.

use neofog_types::{Energy, Power};
use serde::{Deserialize, Serialize};

/// One operating point of the scaled NVP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyLevel {
    /// Clock multiplier relative to the 1 MHz base.
    pub factor: f64,
    /// Active power at this level.
    pub power: Power,
    /// Energy per instruction at this level.
    pub energy_per_inst: Energy,
}

/// A table of operating points plus the income-matching rule.
///
/// # Examples
///
/// ```
/// use neofog_nvp::SpendthriftPolicy;
/// use neofog_types::Power;
///
/// let policy = SpendthriftPolicy::paper_default();
/// let lvl = policy.choose(Power::from_milliwatts(0.5));
/// assert!(lvl.power <= Power::from_milliwatts(0.5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpendthriftPolicy {
    levels: Vec<FrequencyLevel>,
}

impl SpendthriftPolicy {
    /// The five-point table used throughout the workspace: ¼× to 4×
    /// the 1 MHz base. Power scales ≈ `f·V²` with voltage stepping, so
    /// energy-per-instruction rises gently with frequency.
    #[must_use]
    pub fn paper_default() -> Self {
        let base_power = 0.209; // mW at 1x
        let base_epi = 2.508; // nJ at 1x
        let levels = [0.25, 0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|&f: &f64| {
                // V rises mildly with f ⇒ P ∝ f^1.7, EPI ∝ f^0.4.
                let power = base_power * f.powf(1.7);
                let epi = base_epi * f.powf(0.4);
                FrequencyLevel {
                    factor: f,
                    power: Power::from_milliwatts(power),
                    energy_per_inst: Energy::from_nanojoules(epi),
                }
            })
            .collect();
        SpendthriftPolicy { levels }
    }

    /// Creates a policy from explicit levels (must be sorted by
    /// ascending factor and non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or unsorted.
    #[must_use]
    pub fn from_levels(levels: Vec<FrequencyLevel>) -> Self {
        assert!(!levels.is_empty(), "at least one level required");
        assert!(
            levels.windows(2).all(|w| w[0].factor <= w[1].factor),
            "levels must be sorted by factor"
        );
        SpendthriftPolicy { levels }
    }

    /// All operating points, ascending by factor.
    #[must_use]
    pub fn levels(&self) -> &[FrequencyLevel] {
        &self.levels
    }

    /// The level Spendthrift selects for a given income power: the
    /// fastest level whose draw fits inside the income, or the slowest
    /// level when even it exceeds income (the capacitor covers the
    /// gap).
    #[must_use]
    pub fn choose(&self, income: Power) -> FrequencyLevel {
        self.levels
            .iter()
            .rev()
            .find(|l| l.power <= income)
            .copied()
            .unwrap_or(self.levels[0])
    }

    /// Instructions per second at the chosen level for this income.
    #[must_use]
    pub fn throughput(&self, income: Power) -> f64 {
        let lvl = self.choose(income);
        // Base: 1 MHz / 12 cycles ≈ 83 333 inst/s, scaled by factor.
        (1_000_000.0 / 12.0) * lvl.factor
    }

    /// The *computational efficiency* the paper's load balancer shares
    /// between neighbours: instructions per nanojoule at the level this
    /// income selects.
    #[must_use]
    pub fn efficiency(&self, income: Power) -> f64 {
        let lvl = self.choose(income);
        1.0 / lvl.energy_per_inst.as_nanojoules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chooses_fastest_affordable_level() {
        let p = SpendthriftPolicy::paper_default();
        // 4x draws 0.209 * 4^1.7 ≈ 2.2 mW.
        let lvl = p.choose(Power::from_milliwatts(10.0));
        assert_eq!(lvl.factor, 4.0);
        let lvl = p.choose(Power::from_milliwatts(0.21));
        assert_eq!(lvl.factor, 1.0);
    }

    #[test]
    fn falls_back_to_slowest_when_starved() {
        let p = SpendthriftPolicy::paper_default();
        let lvl = p.choose(Power::from_microwatts(1.0));
        assert_eq!(lvl.factor, 0.25);
    }

    #[test]
    fn base_level_matches_paper_constants() {
        let p = SpendthriftPolicy::paper_default();
        let one_x = p.levels().iter().find(|l| l.factor == 1.0).unwrap();
        assert!((one_x.power.as_milliwatts() - 0.209).abs() < 1e-12);
        assert!((one_x.energy_per_inst.as_nanojoules() - 2.508).abs() < 1e-12);
    }

    #[test]
    fn higher_frequency_costs_more_per_instruction() {
        let p = SpendthriftPolicy::paper_default();
        let epis: Vec<f64> = p
            .levels()
            .iter()
            .map(|l| l.energy_per_inst.as_nanojoules())
            .collect();
        assert!(epis.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn throughput_scales_with_income() {
        let p = SpendthriftPolicy::paper_default();
        let slow = p.throughput(Power::from_microwatts(10.0));
        let fast = p.throughput(Power::from_milliwatts(5.0));
        assert!(fast > slow * 10.0);
    }

    #[test]
    fn efficiency_is_higher_at_lower_income() {
        let p = SpendthriftPolicy::paper_default();
        assert!(
            p.efficiency(Power::from_microwatts(50.0)) > p.efficiency(Power::from_milliwatts(5.0))
        );
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn rejects_empty_level_table() {
        let _ = SpendthriftPolicy::from_levels(vec![]);
    }
}

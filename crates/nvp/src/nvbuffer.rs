//! The nonvolatile sample buffer (paper Figure 2(b), §5.1).
//!
//! A 64 KiB NV FIFO sits between the sensors and the NVP "to guarantee
//! asynchronous data transmission" and to hold raw samples for the
//! buffered sensing→buffering→computing→compression→transmission
//! strategy. When the buffer fills it raises an interrupt for the NVP
//! to process the batch; if the node lacks energy, "the sampled data
//! are discarded".

use neofog_types::{NeoFogError, Result};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A nonvolatile FIFO of fixed byte capacity holding discrete samples.
///
/// Contents survive power failure by construction (that is the point of
/// an NV buffer), so there is no volatile/nonvolatile mode switch here;
/// a node with a volatile-only design simply doesn't instantiate one.
///
/// # Examples
///
/// ```
/// use neofog_nvp::NvBuffer;
///
/// let mut buf = NvBuffer::new(16);
/// buf.push(8)?;
/// buf.push(8)?;
/// assert!(buf.is_full());
/// let batch = buf.drain();
/// assert_eq!(batch.total_bytes, 16);
/// # Ok::<(), neofog_types::NeoFogError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvBuffer {
    capacity: usize,
    used: usize,
    samples: VecDeque<u32>,
    discarded_samples: u64,
    discarded_bytes: u64,
    total_pushed: u64,
}

/// A drained batch of samples ready for batch processing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// Sizes (bytes) of each sample in FIFO order.
    pub sample_sizes: Vec<u32>,
    /// Sum of all sample sizes.
    pub total_bytes: usize,
}

impl NvBuffer {
    /// The paper's buffer size: 64 KiB.
    pub const PAPER_CAPACITY: usize = 64 * 1024;

    /// Creates an empty buffer of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        NvBuffer {
            capacity,
            used: 0,
            samples: VecDeque::new(),
            discarded_samples: 0,
            discarded_bytes: 0,
            total_pushed: 0,
        }
    }

    /// Creates the paper's 64 KiB buffer.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(Self::PAPER_CAPACITY)
    }

    /// Byte capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently buffered.
    #[must_use]
    pub fn used(&self) -> usize {
        self.used
    }

    /// Free bytes.
    #[must_use]
    pub fn free(&self) -> usize {
        self.capacity - self.used
    }

    /// Number of buffered samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// `true` when the next typical push would overflow. This is the
    /// condition that "triggers an interrupt of the NVP to process the
    /// buffered data".
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.used >= self.capacity
    }

    /// `true` if a sample of `bytes` fits right now.
    #[must_use]
    pub fn fits(&self, bytes: u32) -> bool {
        bytes as usize <= self.free()
    }

    /// Samples discarded because the buffer was full.
    #[must_use]
    pub fn discarded_samples(&self) -> u64 {
        self.discarded_samples
    }

    /// Bytes discarded because the buffer was full.
    #[must_use]
    pub fn discarded_bytes(&self) -> u64 {
        self.discarded_bytes
    }

    /// Total samples ever pushed successfully.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Pushes one sample of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::BufferFull`] when the sample does not
    /// fit; the sample is counted as discarded (the paper's semantics
    /// for a node that cannot process or send in time).
    pub fn push(&mut self, bytes: u32) -> Result<()> {
        if !self.fits(bytes) {
            self.discarded_samples += 1;
            self.discarded_bytes += u64::from(bytes);
            return Err(NeoFogError::BufferFull {
                capacity: self.capacity,
            });
        }
        self.samples.push_back(bytes);
        self.used += bytes as usize;
        self.total_pushed += 1;
        Ok(())
    }

    /// Removes and returns the oldest sample's size, if any.
    pub fn pop(&mut self) -> Option<u32> {
        let s = self.samples.pop_front()?;
        self.used -= s as usize;
        Some(s)
    }

    /// Drains the whole buffer as one batch (FIFO order preserved).
    pub fn drain(&mut self) -> Batch {
        let sample_sizes: Vec<u32> = self.samples.drain(..).collect();
        let total_bytes = self.used;
        self.used = 0;
        Batch {
            sample_sizes,
            total_bytes,
        }
    }

    /// Iterates over buffered sample sizes, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.samples.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut buf = NvBuffer::new(100);
        for s in [10, 20, 30] {
            buf.push(s).unwrap();
        }
        assert_eq!(buf.pop(), Some(10));
        assert_eq!(buf.pop(), Some(20));
        assert_eq!(buf.pop(), Some(30));
        assert_eq!(buf.pop(), None);
    }

    #[test]
    fn byte_accounting_is_conserved() {
        let mut buf = NvBuffer::new(64);
        buf.push(16).unwrap();
        buf.push(32).unwrap();
        assert_eq!(buf.used(), 48);
        assert_eq!(buf.free(), 16);
        buf.pop();
        assert_eq!(buf.used(), 32);
        let batch = buf.drain();
        assert_eq!(batch.total_bytes, 32);
        assert_eq!(buf.used(), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn overflow_discards_and_errors() {
        let mut buf = NvBuffer::new(10);
        buf.push(8).unwrap();
        let err = buf.push(4).unwrap_err();
        assert_eq!(err, NeoFogError::BufferFull { capacity: 10 });
        assert_eq!(buf.discarded_samples(), 1);
        assert_eq!(buf.discarded_bytes(), 4);
        // A smaller sample still fits.
        buf.push(2).unwrap();
        assert!(buf.is_full());
    }

    #[test]
    fn paper_default_is_64k() {
        let buf = NvBuffer::paper_default();
        assert_eq!(buf.capacity(), 65536);
    }

    #[test]
    fn bridge_fill_matches_table2_sample_count() {
        // 8-byte bridge samples fill 64 KiB after exactly 8192 pushes —
        // the scaling factor behind Table 2's naive-vs-buffered column.
        let mut buf = NvBuffer::paper_default();
        let mut n = 0u64;
        while buf.push(8).is_ok() {
            n += 1;
        }
        assert_eq!(n, 8192);
    }

    #[test]
    fn drain_returns_sizes_in_order() {
        let mut buf = NvBuffer::new(100);
        for s in [1, 2, 3, 4] {
            buf.push(s).unwrap();
        }
        let batch = buf.drain();
        assert_eq!(batch.sample_sizes, vec![1, 2, 3, 4]);
        assert_eq!(batch.total_bytes, 10);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = NvBuffer::new(0);
    }
}

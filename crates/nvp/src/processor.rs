//! Volatile vs nonvolatile processor state machines.
//!
//! The behavioural difference the whole paper builds on: when power
//! fails, a volatile processor loses the architectural state of the
//! task in flight (all progress since the task started), while a
//! nonvolatile processor checkpoints into distributed NV flip-flops and
//! resumes where it left off — "NVPs can still achieve forward progress
//! under power failure frequencies as high as 100 kHz" (§2.2).

use crate::spec::ProcSpec;
use neofog_types::{Duration, Energy};
use serde::{Deserialize, Serialize};

/// Which retention technology the processor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessorKind {
    /// Conventional MCU: state is lost at power failure.
    Volatile,
    /// Nonvolatile processor: state survives power failure.
    Nonvolatile,
}

/// Run-state of the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum RunState {
    /// Powered and able to execute.
    Running,
    /// Unpowered (after a clean backup for an NVP).
    Off,
}

/// A node processor executing one task at a time.
///
/// The task is abstracted as an instruction count; [`Processor::step`]
/// retires instructions against a supplied energy budget, and
/// [`Processor::power_failure`] / [`Processor::power_restore`] model
/// outages.
///
/// # Examples
///
/// ```
/// use neofog_nvp::{Processor, ProcessorKind};
/// use neofog_types::Energy;
///
/// let mut nvp = Processor::new(ProcessorKind::Nonvolatile);
/// nvp.load_task(1000);
/// nvp.power_restore();
/// let budget = nvp.spec().execution_energy(400);
/// nvp.step(budget);
/// nvp.power_failure();
/// nvp.power_restore();
/// assert_eq!(nvp.progress(), 400); // progress retained
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    kind: ProcessorKind,
    spec: ProcSpec,
    state: RunState,
    task_len: u64,
    progress: u64,
    /// Instructions lost to power failures over the processor's life.
    lost_instructions: u64,
    /// Count of power failures survived/suffered.
    power_cycles: u64,
    energy_used: Energy,
    busy_time: Duration,
}

impl Processor {
    /// Creates a processor of the given kind with the paper's spec.
    #[must_use]
    pub fn new(kind: ProcessorKind) -> Self {
        let spec = match kind {
            ProcessorKind::Volatile => ProcSpec::paper_vp(),
            ProcessorKind::Nonvolatile => ProcSpec::paper_nvp(),
        };
        Self::with_spec(kind, spec)
    }

    /// Creates a processor with an explicit specification.
    #[must_use]
    pub fn with_spec(kind: ProcessorKind, spec: ProcSpec) -> Self {
        Processor {
            kind,
            spec,
            state: RunState::Off,
            task_len: 0,
            progress: 0,
            lost_instructions: 0,
            power_cycles: 0,
            energy_used: Energy::ZERO,
            busy_time: Duration::ZERO,
        }
    }

    /// The retention technology.
    #[must_use]
    pub fn kind(&self) -> ProcessorKind {
        self.kind
    }

    /// The timing/energy specification.
    #[must_use]
    pub fn spec(&self) -> &ProcSpec {
        &self.spec
    }

    /// Instructions completed of the current task.
    #[must_use]
    pub fn progress(&self) -> u64 {
        self.progress
    }

    /// Length (in instructions) of the loaded task.
    #[must_use]
    pub fn task_len(&self) -> u64 {
        self.task_len
    }

    /// `true` once the loaded task has fully retired.
    #[must_use]
    pub fn task_done(&self) -> bool {
        self.task_len > 0 && self.progress >= self.task_len
    }

    /// Total instructions re-executed due to volatile progress loss.
    #[must_use]
    pub fn lost_instructions(&self) -> u64 {
        self.lost_instructions
    }

    /// Number of power failures experienced.
    #[must_use]
    pub fn power_cycles(&self) -> u64 {
        self.power_cycles
    }

    /// Total energy consumed (execution + backup + restore).
    #[must_use]
    pub fn energy_used(&self) -> Energy {
        self.energy_used
    }

    /// Total wall-clock time spent busy (executing or restoring).
    #[must_use]
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }

    /// Loads a fresh task of `instructions`, resetting progress.
    pub fn load_task(&mut self, instructions: u64) {
        self.task_len = instructions;
        self.progress = 0;
    }

    /// Retires as many instructions as `budget` allows (bounded by the
    /// remaining task). Returns the number retired. The processor must
    /// be powered — call [`Processor::power_restore`] first; stepping
    /// an off processor retires nothing.
    pub fn step(&mut self, budget: Energy) -> u64 {
        if self.state != RunState::Running || self.task_done() || self.task_len == 0 {
            return 0;
        }
        let affordable = self.spec.instructions_within(budget);
        let retire = affordable.min(self.task_len - self.progress);
        self.progress += retire;
        self.energy_used += self.spec.execution_energy(retire);
        self.busy_time += self.spec.execution_time(retire);
        retire
    }

    /// Power fails. An NVP checkpoints (pays backup time/energy from
    /// its on-chip reserve, as fabricated designs do); a VP loses all
    /// progress on the in-flight task.
    pub fn power_failure(&mut self) {
        if self.state == RunState::Off {
            return;
        }
        self.power_cycles += 1;
        match self.kind {
            ProcessorKind::Volatile => {
                self.lost_instructions += self.progress;
                self.progress = 0;
            }
            ProcessorKind::Nonvolatile => {
                self.energy_used += self.spec.backup_energy;
                self.busy_time += self.spec.backup_time;
            }
        }
        self.state = RunState::Off;
    }

    /// Power returns; pays the restart/restore cost and returns it as
    /// `(time, energy)` so the caller can charge the right supply.
    pub fn power_restore(&mut self) -> (Duration, Energy) {
        if self.state == RunState::Running {
            return (Duration::ZERO, Energy::ZERO);
        }
        self.state = RunState::Running;
        self.energy_used += self.spec.restore_energy;
        self.busy_time += self.spec.restore_time;
        (self.spec.restore_time, self.spec.restore_energy)
    }

    /// `true` while powered.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.state == RunState::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget_for(p: &Processor, n: u64) -> Energy {
        p.spec().execution_energy(n)
    }

    #[test]
    fn nvp_retains_progress_across_outage() {
        let mut p = Processor::new(ProcessorKind::Nonvolatile);
        p.load_task(100);
        p.power_restore();
        p.step(budget_for(&p, 60));
        p.power_failure();
        p.power_restore();
        assert_eq!(p.progress(), 60);
        p.step(budget_for(&p, 40));
        assert!(p.task_done());
        assert_eq!(p.lost_instructions(), 0);
    }

    #[test]
    fn vp_loses_progress_on_outage() {
        let mut p = Processor::new(ProcessorKind::Volatile);
        p.load_task(100);
        p.power_restore();
        p.step(budget_for(&p, 60));
        p.power_failure();
        p.power_restore();
        assert_eq!(p.progress(), 0);
        assert_eq!(p.lost_instructions(), 60);
    }

    #[test]
    fn step_requires_power() {
        let mut p = Processor::new(ProcessorKind::Nonvolatile);
        p.load_task(10);
        assert_eq!(p.step(Energy::from_millijoules(1.0)), 0);
        p.power_restore();
        assert!(p.step(Energy::from_millijoules(1.0)) > 0);
    }

    #[test]
    fn step_bounded_by_task_and_budget() {
        let mut p = Processor::new(ProcessorKind::Nonvolatile);
        p.load_task(5);
        p.power_restore();
        // Budget for 3 instructions retires 3.
        assert_eq!(p.step(budget_for(&p, 3)), 3);
        // Huge budget retires only the remaining 2.
        assert_eq!(p.step(Energy::from_joules(1.0)), 2);
        assert!(p.task_done());
        assert_eq!(p.step(Energy::from_joules(1.0)), 0);
    }

    #[test]
    fn energy_accounting_includes_overheads() {
        let mut p = Processor::new(ProcessorKind::Nonvolatile);
        p.load_task(10);
        let (_, restore_e) = p.power_restore();
        p.step(budget_for(&p, 10));
        p.power_failure(); // backup
        let expected = restore_e + p.spec().execution_energy(10) + p.spec().backup_energy;
        assert!((p.energy_used().as_nanojoules() - expected.as_nanojoules()).abs() < 1e-9);
    }

    #[test]
    fn forward_progress_under_frequent_failures() {
        // NVP completes a long task under rapid power cycling; VP never
        // does when each on-window is shorter than the task.
        let mut nvp = Processor::new(ProcessorKind::Nonvolatile);
        let mut vp = Processor::new(ProcessorKind::Volatile);
        nvp.load_task(1000);
        vp.load_task(1000);
        for _ in 0..50 {
            for p in [&mut nvp, &mut vp] {
                p.power_restore();
                let b = p.spec().execution_energy(100);
                p.step(b);
                p.power_failure();
            }
        }
        assert!(nvp.task_done(), "NVP should finish: {}", nvp.progress());
        assert!(!vp.task_done(), "VP should be stuck: {}", vp.progress());
        assert_eq!(vp.lost_instructions(), 50 * 100);
    }

    #[test]
    fn double_restore_and_failure_are_idempotent() {
        let mut p = Processor::new(ProcessorKind::Nonvolatile);
        p.load_task(1);
        p.power_restore();
        let cycles_before = p.power_cycles();
        let (t, e) = p.power_restore();
        assert_eq!((t, e), (Duration::ZERO, Energy::ZERO));
        p.power_failure();
        p.power_failure();
        assert_eq!(p.power_cycles(), cycles_before + 1);
    }
}

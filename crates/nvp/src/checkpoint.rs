//! Checkpoint policies for nonvolatile processors.
//!
//! Fabricated NVPs differ in *when* they back up architectural state
//! into their nonvolatile flip-flops (§2.2's citation trail: Hibernus'
//! voltage-threshold hibernation, Mementos' periodic checkpoints,
//! QuickRecall's on-demand HW/SW scheme). The policy trades backup
//! overhead against re-execution loss:
//!
//! * [`CheckpointPolicy::OnPowerEmergency`] — dedicated detection
//!   circuitry triggers exactly one backup per outage (what the
//!   paper's NVPs do; zero re-execution, one backup per failure).
//! * [`CheckpointPolicy::Periodic`] — software checkpoints every `k`
//!   instructions (no detection hardware; loses up to `k` instructions
//!   per outage and pays backups continuously).
//! * [`CheckpointPolicy::None`] — a volatile processor (loses the
//!   whole task on every outage).
//!
//! [`simulate_policy`] runs a task under a power-failure pattern and
//! reports completed work, backups taken and instructions re-executed,
//! so the policies can be compared quantitatively.

use crate::spec::ProcSpec;
use neofog_types::{Duration, Energy};
use serde::{Deserialize, Serialize};

/// When the processor checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CheckpointPolicy {
    /// Hardware power-emergency detection: one just-in-time backup per
    /// outage.
    OnPowerEmergency,
    /// Software checkpoint every `interval` retired instructions.
    Periodic {
        /// Instructions between checkpoints (must be positive).
        interval: u64,
    },
    /// No checkpointing (volatile processor).
    None,
}

/// Outcome of running a task under a checkpoint policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointReport {
    /// `true` if the task finished within the given on-windows.
    pub completed: bool,
    /// Useful (first-time) instructions retired.
    pub useful_instructions: u64,
    /// Instructions re-executed after rollbacks.
    pub reexecuted_instructions: u64,
    /// Backups performed.
    pub backups: u64,
    /// Total energy: execution + re-execution + backups + restores.
    pub energy: Energy,
    /// Total busy time.
    pub busy_time: Duration,
}

impl CheckpointReport {
    /// Fraction of executed instructions that were useful.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        let total = self.useful_instructions + self.reexecuted_instructions;
        if total == 0 {
            0.0
        } else {
            self.useful_instructions as f64 / total as f64
        }
    }
}

/// Runs `task_instructions` across `windows` of uninterrupted
/// instruction budget (each window ends with a power failure except
/// possibly the last), under the given policy.
///
/// Window sizes are expressed in *instructions executable before the
/// outage* so callers can derive them from any power trace.
#[must_use]
pub fn simulate_policy(
    spec: &ProcSpec,
    policy: CheckpointPolicy,
    task_instructions: u64,
    windows: &[u64],
) -> CheckpointReport {
    let mut committed: u64 = 0; // durable progress
    let mut useful: u64 = 0;
    let mut reexec: u64 = 0;
    let mut backups: u64 = 0;
    let mut energy = Energy::ZERO;
    let mut busy = Duration::ZERO;
    let mut completed = false;

    'outer: for &window in windows {
        // Restore / restart at window start.
        energy += spec.restore_energy;
        busy += spec.restore_time;
        let mut budget = window;
        // Volatile progress within this window starts at the durable
        // committed point.
        let mut progress = committed;
        loop {
            let remaining = task_instructions - progress;
            if remaining == 0 {
                completed = true;
                break 'outer;
            }
            let until_ckpt = match policy {
                CheckpointPolicy::Periodic { interval } => {
                    let interval = interval.max(1);
                    interval - (progress % interval)
                }
                _ => remaining,
            };
            let run = remaining.min(until_ckpt).min(budget);
            if run == 0 {
                break;
            }
            // Classify the work: instructions beyond the all-time
            // high-water mark are useful; the rest is re-execution.
            let fresh = (progress + run).saturating_sub(useful).min(run);
            useful += fresh;
            reexec += run - fresh;
            energy += spec.execution_energy(run);
            busy += spec.execution_time(run);
            progress += run;
            budget -= run;
            // Periodic checkpoint commit.
            if let CheckpointPolicy::Periodic { interval } = policy {
                if progress.is_multiple_of(interval.max(1)) && budget > 0 {
                    committed = progress;
                    backups += 1;
                    energy += spec.backup_energy;
                    busy += spec.backup_time;
                }
            }
            if progress == task_instructions {
                completed = true;
                break 'outer;
            }
        }
        // Power failure at window end (if not the last useful moment).
        match policy {
            CheckpointPolicy::OnPowerEmergency => {
                committed = progress;
                backups += 1;
                energy += spec.backup_energy;
                busy += spec.backup_time;
            }
            CheckpointPolicy::Periodic { .. } => {
                // Roll back to the last checkpoint: `progress -
                // committed` instructions will be re-executed.
            }
            CheckpointPolicy::None => {
                committed = 0;
            }
        }
    }

    CheckpointReport {
        completed,
        useful_instructions: useful.min(task_instructions),
        reexecuted_instructions: reexec,
        backups,
        energy,
        busy_time: busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProcSpec {
        ProcSpec::paper_nvp()
    }

    #[test]
    fn emergency_policy_never_reexecutes() {
        let report = simulate_policy(
            &spec(),
            CheckpointPolicy::OnPowerEmergency,
            10_000,
            &[3_000, 3_000, 3_000, 3_000],
        );
        assert!(report.completed);
        assert_eq!(report.reexecuted_instructions, 0);
        assert_eq!(report.useful_instructions, 10_000);
        assert_eq!(report.backups, 3, "one backup per endured outage");
        assert!((report.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn volatile_policy_restarts_from_zero() {
        let report = simulate_policy(
            &spec(),
            CheckpointPolicy::None,
            5_000,
            &[3_000, 3_000, 3_000],
        );
        assert!(!report.completed, "3k windows can never finish a 5k task");
        assert_eq!(report.useful_instructions, 3_000, "high-water mark");
        assert_eq!(report.reexecuted_instructions, 6_000);
        assert_eq!(report.backups, 0);
    }

    #[test]
    fn periodic_policy_loses_at_most_one_interval() {
        let report = simulate_policy(
            &spec(),
            CheckpointPolicy::Periodic { interval: 500 },
            5_000,
            &[2_750, 2_750, 2_750],
        );
        assert!(report.completed);
        // Each outage rolls back < 500 instructions.
        assert!(report.reexecuted_instructions <= 2 * 500);
        assert!(report.backups >= 8);
    }

    #[test]
    fn finer_periodic_intervals_trade_backups_for_reexecution() {
        let windows = vec![1_999; 30];
        let coarse = simulate_policy(
            &spec(),
            CheckpointPolicy::Periodic { interval: 1_000 },
            20_000,
            &windows,
        );
        let fine = simulate_policy(
            &spec(),
            CheckpointPolicy::Periodic { interval: 100 },
            20_000,
            &windows,
        );
        assert!(fine.backups > coarse.backups);
        assert!(fine.reexecuted_instructions < coarse.reexecuted_instructions);
    }

    #[test]
    fn emergency_beats_periodic_beats_none_in_efficiency() {
        let windows = vec![1_500; 40];
        let task = 20_000;
        let e = simulate_policy(&spec(), CheckpointPolicy::OnPowerEmergency, task, &windows);
        let p = simulate_policy(
            &spec(),
            CheckpointPolicy::Periodic { interval: 400 },
            task,
            &windows,
        );
        let n = simulate_policy(&spec(), CheckpointPolicy::None, task, &windows);
        assert!(e.efficiency() >= p.efficiency());
        assert!(p.efficiency() > n.efficiency());
        assert!(e.completed && p.completed && !n.completed);
    }

    #[test]
    fn empty_windows_do_nothing() {
        let report = simulate_policy(&spec(), CheckpointPolicy::OnPowerEmergency, 100, &[]);
        assert!(!report.completed);
        assert_eq!(report.useful_instructions, 0);
    }

    #[test]
    fn single_window_completion_pays_no_backup() {
        let report = simulate_policy(&spec(), CheckpointPolicy::OnPowerEmergency, 1_000, &[5_000]);
        assert!(report.completed);
        assert_eq!(report.backups, 0);
        let expect = spec().restore_energy + spec().execution_energy(1_000);
        assert!((report.energy.as_nanojoules() - expect.as_nanojoules()).abs() < 1e-9);
    }
}

//! Processor specifications calibrated to the paper's measurements.

use neofog_types::{Duration, Energy, Power};
use serde::{Deserialize, Serialize};

/// Cycles per instruction of the modified-8051 core the paper's
/// node-level simulator is built on (§4).
pub const CYCLES_PER_INSTRUCTION: u64 = 12;

/// Timing and energy specification of a node processor.
///
/// The two presets, [`ProcSpec::paper_nvp`] and [`ProcSpec::paper_vp`],
/// carry the constants measured in the paper; everything else in the
/// workspace derives per-instruction cost from them.
///
/// # Examples
///
/// ```
/// use neofog_nvp::ProcSpec;
///
/// let nvp = ProcSpec::paper_nvp();
/// // Table 2, bridge health: 545 instructions -> 1366.86 nJ.
/// let e = nvp.instruction_energy() * 545.0;
/// assert!((e.as_nanojoules() - 1366.86).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcSpec {
    /// Core clock frequency in hertz.
    pub clock_hz: u64,
    /// Power drawn while actively executing.
    pub active_power: Power,
    /// Power drawn while idle but powered.
    pub idle_power: Power,
    /// Time to resume execution after power returns.
    pub restore_time: Duration,
    /// Energy consumed by a restore.
    pub restore_energy: Energy,
    /// Time to checkpoint state before power dies (zero for a VP —
    /// there is nothing to save, the state is simply lost).
    pub backup_time: Duration,
    /// Energy consumed by a backup.
    pub backup_energy: Energy,
}

impl ProcSpec {
    /// The paper's NVP: 1 MHz, 0.209 mW active, 7 µs restore under
    /// FIOS (Figure 1); backup into on-chip NV flip-flops.
    #[must_use]
    pub fn paper_nvp() -> Self {
        let active = Power::from_milliwatts(0.209);
        ProcSpec {
            clock_hz: 1_000_000,
            active_power: active,
            idle_power: Power::from_microwatts(2.0),
            restore_time: Duration::from_micros(7),
            restore_energy: active * Duration::from_micros(7),
            backup_time: Duration::from_micros(5),
            backup_energy: active * Duration::from_micros(5),
        }
    }

    /// The paper's NOS-mode NVP (Figure 4): same core, 32 µs start-up
    /// because restore happens from the cold capacitor path.
    #[must_use]
    pub fn paper_nvp_nos() -> Self {
        let mut spec = Self::paper_nvp();
        spec.restore_time = Duration::from_micros(32);
        spec.restore_energy = spec.active_power * Duration::from_micros(32);
        spec
    }

    /// The paper's volatile MCU: ~300 µs restart initialization
    /// (Figure 1) and no checkpoint capability.
    #[must_use]
    pub fn paper_vp() -> Self {
        let active = Power::from_milliwatts(0.209);
        ProcSpec {
            clock_hz: 1_000_000,
            active_power: active,
            idle_power: Power::from_microwatts(5.0),
            restore_time: Duration::from_micros(300),
            restore_energy: active * Duration::from_micros(300),
            backup_time: Duration::ZERO,
            backup_energy: Energy::ZERO,
        }
    }

    /// Wall-clock time to retire one instruction.
    #[must_use]
    pub fn instruction_time(&self) -> Duration {
        // 12 cycles at `clock_hz`; at 1 MHz this is exactly 12 µs.
        Duration::from_micros(CYCLES_PER_INSTRUCTION * 1_000_000 / self.clock_hz)
    }

    /// Energy to retire one instruction (2.508 nJ at the paper's
    /// operating point).
    #[must_use]
    pub fn instruction_energy(&self) -> Energy {
        self.active_power * self.instruction_time()
    }

    /// Wall-clock time for `n` instructions.
    #[must_use]
    pub fn execution_time(&self, instructions: u64) -> Duration {
        Duration::from_micros(instructions * self.instruction_time().as_micros())
    }

    /// Energy for `n` instructions.
    #[must_use]
    pub fn execution_energy(&self, instructions: u64) -> Energy {
        self.instruction_energy() * instructions as f64
    }

    /// Instructions that fit in an energy budget (floor).
    #[must_use]
    pub fn instructions_within(&self, budget: Energy) -> u64 {
        let per = self.instruction_energy().as_nanojoules();
        if per <= 0.0 {
            return u64::MAX;
        }
        // The epsilon absorbs float rounding so a budget computed as
        // `execution_energy(n)` affords exactly `n` instructions.
        (budget.max_zero().as_nanojoules() / per + 1e-9).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvp_instruction_energy_matches_table2() {
        let spec = ProcSpec::paper_nvp();
        assert!((spec.instruction_energy().as_nanojoules() - 2.508).abs() < 1e-12);
        // All five Table 2 apps:
        for (inst, nj) in [
            (545u64, 1366.86),
            (460, 1153.68),
            (56, 140.448),
            (477, 1196.316),
            (1670, 4188.36),
        ] {
            let e = spec.execution_energy(inst);
            assert!((e.as_nanojoules() - nj).abs() < 1e-6, "{inst} inst -> {e}");
        }
    }

    #[test]
    fn instruction_time_is_12us_at_1mhz() {
        assert_eq!(
            ProcSpec::paper_nvp().instruction_time(),
            Duration::from_micros(12)
        );
        assert_eq!(
            ProcSpec::paper_nvp().execution_time(1000),
            Duration::from_millis(12)
        );
    }

    #[test]
    fn vp_has_no_backup_but_long_restart() {
        let vp = ProcSpec::paper_vp();
        assert_eq!(vp.backup_time, Duration::ZERO);
        assert_eq!(vp.restore_time, Duration::from_micros(300));
        let nvp = ProcSpec::paper_nvp();
        assert!(nvp.restore_time < vp.restore_time);
    }

    #[test]
    fn instructions_within_budget_floors() {
        let spec = ProcSpec::paper_nvp();
        let budget = spec.instruction_energy() * 10.5;
        assert_eq!(spec.instructions_within(budget), 10);
        assert_eq!(spec.instructions_within(Energy::ZERO), 0);
    }

    #[test]
    fn nos_nvp_restore_is_32us() {
        assert_eq!(
            ProcSpec::paper_nvp_nos().restore_time,
            Duration::from_micros(32)
        );
    }
}

//! A counting global allocator for allocation-discipline tests.
//!
//! Install [`CountingAlloc`] as the `#[global_allocator]` of a test
//! binary and read [`allocation_count`] around the region under test:
//! the delta is the number of heap allocations (including
//! reallocations) the region performed. Frees are not counted — the
//! discipline the simulator's slot loop promises is "no new or grown
//! allocations in steady state", and a free can never violate it.
//!
//! This crate deliberately opts out of the workspace `unsafe_code =
//! "forbid"` lint (see its `Cargo.toml`): wrapping the system
//! allocator is the one place the workspace needs an `unsafe impl`.
//! It must only ever be used as a dev-dependency.
//!
//! # Examples
//!
//! ```
//! use neofog_alloc_probe::{allocation_count, CountingAlloc};
//!
//! // In a test binary: #[global_allocator]
//! // static GLOBAL: CountingAlloc = CountingAlloc;
//! let before = allocation_count();
//! let v: Vec<u8> = Vec::with_capacity(16);
//! drop(v);
//! let after = allocation_count();
//! // With the allocator installed, `after - before` would be 1.
//! let _ = after - before;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// The number of allocations and reallocations performed so far by a
/// binary whose `#[global_allocator]` is a [`CountingAlloc`]. Always
/// zero when the allocator is not installed.
#[must_use]
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A [`System`]-delegating allocator that counts `alloc` and `realloc`
/// calls. Declare it as the test binary's `#[global_allocator]`.
pub struct CountingAlloc;

// SAFETY: delegates verbatim to the system allocator, upholding its
// contract unchanged; the counter is a relaxed atomic side effect with
// no influence on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

//! The slot-driven WSN system simulator (paper §4).
//!
//! One simulator instance models one chain of logical positions (10 in
//! every figure), optionally NVD4Q-multiplexed so each position is
//! implemented by `M` physical clones. Time advances in RTC slots
//! (default 12 s × 1500 slots = the paper's 5-hour window, in which 10
//! always-on nodes would ideally deliver 15 000 data packages).
//!
//! # What happens in a slot
//!
//! 1. **Harvest** — each physical node integrates its power trace,
//!    feeds the RTC capacitor first (charging priority), then builds
//!    its slot energy budget through its front-end: FIOS nodes get a
//!    90 %-efficient direct pool plus the capacitor; NOS nodes only
//!    the capacitor round-trip.
//! 2. **Wake** — nodes scheduled this slot (their clone phase) wake if
//!    they can afford the activation threshold; a scheduled node that
//!    cannot is a *failure* (energy depletion). Awake nodes capture one
//!    data package; fog-capable nodes also enqueue its processing task.
//! 3. **Balance** — the configured intra-chain balancer redistributes
//!    fog tasks among the awake representatives using their Spendthrift
//!    state; transfer traffic is charged.
//! 4. **Compute** — fog tasks execute within each node's time and
//!    energy budget (forward progress persists across slots on NVPs).
//! 5. **Transmit** — nodes with ready packages open a radio session
//!    (531 ms software init / 33 ms NVM restore / 1.9 ms NVRF start
//!    depending on the system) and ship packages into the chain mesh;
//!    the MAC layer relays transparently (§2.3), so delivery succeeds
//!    with the measured per-hop probability compounded over the hop
//!    count, and awake intermediate nodes are charged forwarding
//!    airtime. Packages whose relay duty cannot be paid are lost.
//! 6. **Slot end** — volatile nodes lose their queues; capacitors
//!    leak; stored-energy traces are recorded.

use crate::balance::{
    ChainBalanceInput, DistributedBalancer, FogTask, LoadBalancer, NoBalancer, NodeBalanceState,
    TreeBalancer,
};
use crate::metrics::NetworkMetrics;
use crate::node::{NodeConfig, SystemKind};
use neofog_energy::{PowerTrace, Rtc, Scenario, SuperCap, TraceGenerator};
use neofog_net::slots::SlotSchedule;
use neofog_nvp::SpendthriftPolicy;
use neofog_rf::{LossModel, RfTimings};
use neofog_types::{Duration, Energy, NodeId, Power, SimRng};
use serde::{Deserialize, Serialize};

/// Which balancer a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BalancerKind {
    /// No balancing at all.
    None,
    /// The baseline up-down tree balancer.
    Tree,
    /// The paper's distributed Algorithm-1 balancer.
    Distributed,
}

impl BalancerKind {
    /// Instantiates the balancer (the distributed one uses the slot
    /// length as its `MAXTIME` call interval).
    #[must_use]
    pub fn build(self, slot_len: Duration) -> Box<dyn LoadBalancer> {
        match self {
            BalancerKind::None => Box::new(NoBalancer),
            BalancerKind::Tree => Box::new(TreeBalancer::new()),
            BalancerKind::Distributed => Box::new(DistributedBalancer::new(
                slot_len.as_secs_f64().ceil() as u64,
            )),
        }
    }

    /// The default balancer of each evaluated system.
    #[must_use]
    pub fn default_for(system: SystemKind) -> Self {
        match system {
            SystemKind::NosVp => BalancerKind::None,
            SystemKind::NosNvp => BalancerKind::Tree,
            SystemKind::FiosNeoFog => BalancerKind::Distributed,
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Node design under test.
    pub system: SystemKind,
    /// Intra-chain balancer.
    pub balancer: BalancerKind,
    /// Power-trace scenario.
    pub scenario: Scenario,
    /// Logical chain positions (the paper presents 10).
    pub positions: usize,
    /// NVD4Q multiplexing factor (1 = no virtualization).
    pub multiplex: u32,
    /// Number of RTC slots to simulate.
    pub slots: u64,
    /// Slot length.
    pub slot_len: Duration,
    /// Trace/loss random seed (the paper's "power profile" index).
    pub seed: u64,
    /// Per-node configuration.
    pub node: NodeConfig,
    /// Record per-slot stored energy (Figure 9) — memory-heavy.
    pub trace_stored: bool,
    /// Extra channel loss from weather (rainy scenarios).
    pub weather_loss: f64,
    /// Probability that a wake actually yields a usable sample; heavy
    /// rain degrades the sensing itself ("total successful sampling
    /// under the reduced power conditions reduces to 8000", §5.3).
    pub sampling_success: f64,
    /// Multiplier on every node's power trace (1.0 = the scenario's
    /// nominal level; Figure 9 uses a bright daytime window).
    pub income_scale: f64,
}

impl SimConfig {
    /// The evaluation defaults: 10 positions, 1500 × 12 s slots
    /// (5 hours, 15 000 ideal packages), system-default balancer.
    #[must_use]
    pub fn paper_default(system: SystemKind, scenario: Scenario, seed: u64) -> Self {
        let mut node = NodeConfig::paper_default(system);
        // The forest and bridge deployments run the heavier offloaded
        // kernels (volumetric reconstruction / structural models); the
        // mountain nodes run a lighter slide detector.
        if matches!(
            scenario,
            Scenario::ForestIndependent | Scenario::BridgeDependent
        ) {
            node.package = crate::node::PackageSpec::heavy();
        }
        SimConfig {
            system,
            balancer: BalancerKind::default_for(system),
            scenario,
            positions: 10,
            multiplex: 1,
            slots: 1500,
            slot_len: Duration::from_secs(12),
            seed,
            node,
            trace_stored: false,
            weather_loss: if scenario == Scenario::MountainRainy {
                0.03
            } else {
                0.0
            },
            sampling_success: if scenario == Scenario::MountainRainy {
                0.55
            } else {
                1.0
            },
            income_scale: 1.0,
        }
    }

    /// Ideal package count: one per position per slot.
    #[must_use]
    pub fn ideal_packages(&self) -> u64 {
        self.positions as u64 * self.slots
    }
}

/// Maximum fog backlog a node admits (packages); the NV buffer sheds
/// newer samples beyond this.
const MAX_PENDING: usize = 8;

/// One captured data package travelling through the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Package {
    /// Index of the capturing physical node.
    origin: usize,
    /// Slot of capture.
    created: u64,
    /// Remaining fog instructions (0 = processed).
    fog_remaining: u64,
    /// Whether the fog task completed.
    fog_done: bool,
}

/// One physical node's live state.
struct NodeSim {
    cfg: NodeConfig,
    cap: SuperCap,
    rtc: Rtc,
    trace: PowerTrace,
    schedule: SlotSchedule,
    /// Logical chain position this node implements.
    position: usize,
    /// Packages awaiting fog processing (fog systems only).
    pending: Vec<Package>,
    /// Packages ready for transmission.
    outbox: Vec<Package>,
    rng: SimRng,
}

/// Per-slot spendable energy: a direct pool (FIOS) plus the capacitor
/// behind a discharge regulator.
struct SlotBudget {
    direct_left: Energy,
    direct_eff: f64,
    discharge_eff: f64,
}

impl SlotBudget {
    fn available(&self, cap: &SuperCap) -> Energy {
        self.direct_left + cap.stored() * self.discharge_eff
    }

    /// Spends `amount` (at the load), direct pool first, booking the
    /// delivery and both channels' conversion losses in the ledger.
    /// Returns false (spending nothing) if unaffordable.
    fn spend(&mut self, cap: &mut SuperCap, ledger: &mut EnergyLedger, amount: Energy) -> bool {
        if self.available(cap) < amount {
            return false;
        }
        let from_direct = amount.min(self.direct_left);
        self.direct_left -= from_direct;
        if self.direct_eff > 0.0 && from_direct > Energy::ZERO {
            // The direct channel is lossy at the point of use: raw
            // income `from_direct / eff` delivered only `from_direct`.
            ledger.debit_loss(from_direct / self.direct_eff - from_direct);
        }
        let rest = amount - from_direct;
        if rest > Energy::ZERO {
            let gross = rest / self.discharge_eff;
            // Floating-point slack: available() said yes.
            let drawn = cap.discharge_up_to(gross);
            debug_assert!(drawn >= gross * 0.999);
            ledger.debit_loss(drawn.saturating_sub(rest));
        }
        ledger.debit_consumed(amount);
        true
    }

    /// Returns the unspent direct pool converted back to raw income.
    fn leftover_income(&mut self) -> Energy {
        let left = self.direct_left;
        self.direct_left = Energy::ZERO;
        if self.direct_eff > 0.0 {
            left / self.direct_eff
        } else {
            left
        }
    }
}

/// Per-node, per-slot energy conservation ledger.
///
/// Every nanojoule that moves during a slot is booked into exactly one
/// bucket, and [`EnergyLedger::settle`] asserts the slot balances:
///
/// ```text
/// harvested + stored_before = consumed + leaked + lost + stored_after
/// ```
///
/// * `harvested` — income after the harvester front-end.
/// * `consumed` — energy delivered to loads at the point of use (wake,
///   compute, radio) plus the RTC's intake; the RTC is treated as a
///   terminal load because everything it banks is spent keeping time.
/// * `leaked` — capacitor self-discharge.
/// * `lost` — conversion losses (direct channel, discharge regulator,
///   charge path) and energy a full capacitor rejects.
///
/// In release builds the ledger is a zero-sized no-op, so the
/// accounting is a debug-build safety net rather than a runtime cost.
/// The `NF-LEDGER-001` lint keeps every debit/credit site routed
/// through it.
#[cfg(debug_assertions)]
#[derive(Debug, Clone, Copy)]
struct EnergyLedger {
    stored_before: Energy,
    harvested: Energy,
    consumed: Energy,
    leaked: Energy,
    lost: Energy,
}

#[cfg(debug_assertions)]
impl EnergyLedger {
    /// Opens a slot ledger against the capacitor's current level.
    fn open(stored: Energy) -> Self {
        EnergyLedger {
            stored_before: stored,
            harvested: Energy::ZERO,
            consumed: Energy::ZERO,
            leaked: Energy::ZERO,
            lost: Energy::ZERO,
        }
    }

    fn credit_harvest(&mut self, e: Energy) {
        self.harvested += e;
    }

    fn debit_consumed(&mut self, e: Energy) {
        self.consumed += e;
    }

    fn debit_leak(&mut self, e: Energy) {
        self.leaked += e;
    }

    fn debit_loss(&mut self, e: Energy) {
        self.lost += e;
    }

    /// Asserts the slot's conservation identity within float slack.
    fn settle(&self, stored_after: Energy) {
        let inflow = self.harvested.as_nanojoules() + self.stored_before.as_nanojoules();
        let outflow = self.consumed.as_nanojoules()
            + self.leaked.as_nanojoules()
            + self.lost.as_nanojoules()
            + stored_after.as_nanojoules();
        let tol = 1e-6 * inflow.abs().max(outflow.abs()).max(1.0);
        debug_assert!(
            (inflow - outflow).abs() <= tol,
            "slot energy not conserved (nJ): harvested {} + before {} != consumed {} \
             + leaked {} + lost {} + after {}",
            self.harvested.as_nanojoules(),
            self.stored_before.as_nanojoules(),
            self.consumed.as_nanojoules(),
            self.leaked.as_nanojoules(),
            self.lost.as_nanojoules(),
            stored_after.as_nanojoules(),
        );
    }
}

/// Release builds: the ledger and all bookings compile away.
#[cfg(not(debug_assertions))]
#[derive(Debug, Clone, Copy)]
struct EnergyLedger;

#[cfg(not(debug_assertions))]
impl EnergyLedger {
    #[inline(always)]
    fn open(_stored: Energy) -> Self {
        EnergyLedger
    }

    #[inline(always)]
    fn credit_harvest(&mut self, _e: Energy) {}

    #[inline(always)]
    fn debit_consumed(&mut self, _e: Energy) {}

    #[inline(always)]
    fn debit_leak(&mut self, _e: Energy) {}

    #[inline(always)]
    fn debit_loss(&mut self, _e: Energy) {}

    #[inline(always)]
    fn settle(&self, _stored_after: Energy) {}
}

/// Result of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// The configuration that produced it.
    pub config: SimConfig,
    /// All counters.
    pub metrics: NetworkMetrics,
}

impl SimResult {
    /// Convenience: total delivered / ideal.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        self.metrics.total_processed() as f64 / self.config.ideal_packages() as f64
    }
}

/// The simulator.
pub struct Simulator {
    cfg: SimConfig,
    nodes: Vec<NodeSim>,
    /// Physical node indices per logical position.
    positions: Vec<Vec<usize>>,
    balancer: Box<dyn LoadBalancer>,
    loss: LossModel,
    rf: RfTimings,
    spendthrift: SpendthriftPolicy,
    metrics: NetworkMetrics,
    rng: SimRng,
}

impl Simulator {
    /// Builds a simulator (generating per-node power traces).
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        let physical = cfg.positions * cfg.multiplex as usize;
        let mut gen = TraceGenerator::new(cfg.scenario, cfg.seed);
        let total_time = Duration::from_micros(cfg.slot_len.as_micros() * cfg.slots);
        let trace_dt = Duration::from_secs(1);
        let mut rng = SimRng::seed_from(cfg.seed ^ 0x5EED);
        let mut nodes = Vec::with_capacity(physical);
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); cfg.positions];
        for p in 0..cfg.positions {
            for k in 0..cfg.multiplex {
                let idx = nodes.len();
                positions[p].push(idx);
                let schedule = if cfg.multiplex == 1 {
                    SlotSchedule::every_slot()
                } else {
                    SlotSchedule::new(cfg.multiplex, k)
                };
                let trace = gen
                    .node_trace(idx as u64, total_time, trace_dt)
                    .scaled(cfg.income_scale);
                let cap = SuperCap::new(cfg.node.cap_capacity)
                    .with_charge_efficiency(0.65)
                    .with_leak(cfg.node.cap_leak)
                    .with_initial(cfg.node.cap_capacity * cfg.node.initial_charge);
                let rtc = Rtc::new(Energy::from_millijoules(5.0), Power::from_microwatts(2.0));
                nodes.push(NodeSim {
                    cfg: cfg.node,
                    cap,
                    rtc,
                    trace,
                    schedule,
                    position: p,
                    pending: Vec::new(),
                    outbox: Vec::new(),
                    rng: rng.fork(idx as u64),
                });
            }
        }
        let loss = LossModel::paper_default().with_weather_loss(cfg.weather_loss);
        let balancer = cfg.balancer.build(cfg.slot_len);
        let metrics = NetworkMetrics::new(physical);
        Simulator {
            nodes,
            positions,
            balancer,
            loss,
            rf: RfTimings::paper_default(),
            spendthrift: SpendthriftPolicy::paper_default(),
            metrics,
            rng: SimRng::seed_from(cfg.seed ^ 0xBA1A),
            cfg,
        }
    }

    /// Runs the whole simulation and returns the metrics.
    #[must_use]
    pub fn run(mut self) -> SimResult {
        for slot in 0..self.cfg.slots {
            self.step(slot);
        }
        SimResult {
            config: self.cfg,
            metrics: self.metrics,
        }
    }

    /// Advances one slot.
    fn step(&mut self, slot: u64) {
        let slot_len = self.cfg.slot_len;
        let t0 = Duration::from_micros(slot * slot_len.as_micros());
        let t1 = t0 + slot_len;
        let system = self.cfg.system;
        let fe = self.cfg.node.front_end;
        let n_phys = self.nodes.len();

        let mut budgets: Vec<SlotBudget> = Vec::with_capacity(n_phys);
        let mut awake = vec![false; n_phys];
        let mut income_power = vec![Power::ZERO; n_phys];
        // One conservation ledger per physical node, opened against the
        // stored level entering the slot and settled at slot end.
        let mut ledgers: Vec<EnergyLedger> = self
            .nodes
            .iter()
            .map(|n| EnergyLedger::open(n.cap.stored()))
            .collect();

        // --- 1. Harvest + 2. Wake/capture -------------------------------
        for i in 0..n_phys {
            let node = &mut self.nodes[i];
            let ledger = &mut ledgers[i];
            let ambient = node.trace.energy_between(t0, t1);
            let mut income = ambient * node.cfg.harvester_efficiency;
            ledger.credit_harvest(income);
            income_power[i] =
                Power::from_milliwatts(income.as_nanojoules() / slot_len.as_micros() as f64);
            // RTC priority charging (takes only what it needs; the RTC
            // is a terminal load, so its intake books as consumed).
            let past_rtc = node.rtc.charge_with_priority(income);
            ledger.debit_consumed(income.saturating_sub(past_rtc));
            income = past_rtc;
            node.rtc.advance(slot_len);
            if !node.rtc.is_synchronized() {
                // Attempt a resynchronization with stored energy. Any
                // draw the RTC cannot bank has left the capacitor for
                // good and books as lost.
                let drawn = node.cap.discharge_up_to(Energy::from_millijoules(1.0));
                let spare = node.rtc.charge_with_priority(drawn);
                ledger.debit_consumed(drawn.saturating_sub(spare));
                ledger.debit_loss(spare);
                node.rtc.resynchronize(Energy::from_millijoules(0.5));
            }

            let mut budget = match fe.has_direct_channel() {
                true => SlotBudget {
                    direct_left: income * fe.direct_efficiency(),
                    direct_eff: fe.direct_efficiency(),
                    discharge_eff: fe.discharge_efficiency(),
                },
                false => {
                    // NOS: income goes through the capacitor first; the
                    // charge path's conversion loss plus any overflow a
                    // full capacitor rejects both book as lost.
                    let level = node.cap.stored();
                    let rejected = node.cap.charge(income);
                    ledger
                        .debit_loss(income.saturating_sub(node.cap.stored().saturating_sub(level)));
                    self.metrics.nodes[i].rejected += rejected;
                    SlotBudget {
                        direct_left: Energy::ZERO,
                        direct_eff: 0.0,
                        discharge_eff: fe.discharge_efficiency(),
                    }
                }
            };
            self.metrics.nodes[i].harvested += income;

            // Wake decision.
            let scheduled = node.schedule.wakes_at(slot) && node.rtc.is_synchronized();
            if scheduled {
                if budget.available(&node.cap) >= system.wake_threshold() {
                    budget.spend(&mut node.cap, ledger, system.wake_cost());
                    awake[i] = true;
                    self.metrics.nodes[i].wakeups += 1;
                    // Capture one package (rain can spoil the sample).
                    if !node.rng.chance(self.cfg.sampling_success) {
                        budgets.push(budget);
                        continue;
                    }
                    self.metrics.nodes[i].captured += 1;
                    let pkg = Package {
                        origin: i,
                        created: slot,
                        fog_remaining: node.cfg.package.fog_instructions,
                        fog_done: false,
                    };
                    if system.is_fog_capable() {
                        // Admission control: the NV buffer holds a
                        // bounded backlog; beyond it new samples are
                        // discarded ("if the node lacks energy to
                        // process ... the sampled data are discarded").
                        if node.pending.len() < MAX_PENDING {
                            node.pending.push(pkg);
                        } else {
                            self.metrics.nodes[i].dropped += 1;
                        }
                    } else {
                        node.outbox.push(pkg);
                    }
                } else {
                    self.metrics.nodes[i].failures += 1;
                }
            }
            budgets.push(budget);
        }

        // --- 3. Balance fog tasks among awake representatives ----------
        if system.is_fog_capable() && !matches!(self.cfg.balancer, BalancerKind::None) {
            self.balance_step(slot, &mut budgets, &mut ledgers, &awake, &income_power);
        }

        // --- 4. Fog execution ------------------------------------------
        if system.is_fog_capable() {
            for i in 0..n_phys {
                self.compute_step(
                    i,
                    slot,
                    &mut budgets[i],
                    &mut ledgers[i],
                    income_power[i],
                    slot_len,
                );
            }
        }

        // Stale pending packages: a node flush with energy ships them
        // raw to the cloud; otherwise "the sampled data are discarded"
        // (§5.1).
        let stale_after = 20;
        for i in 0..n_phys {
            let node = &mut self.nodes[i];
            let fog_len = node.cfg.package.fog_instructions;
            // Packages with execution progress are never shed — killing
            // a half-finished head would waste the energy already sunk.
            let (stale, keep): (Vec<Package>, Vec<Package>) =
                node.pending.drain(..).partition(|p| {
                    p.fog_remaining == fog_len && slot.saturating_sub(p.created) > stale_after
                });
            node.pending = keep;
            if node.cap.fraction() > 0.6 {
                node.outbox.extend(stale);
            } else {
                self.metrics.nodes[i].dropped += stale.len() as u64;
            }
        }

        // --- 5. Transmission -------------------------------------------
        self.transmit_step(slot, &mut budgets, &mut ledgers, &awake);

        // --- 6. Slot end -------------------------------------------------
        for (i, budget) in budgets.iter_mut().enumerate().take(n_phys) {
            let node = &mut self.nodes[i];
            let ledger = &mut ledgers[i];
            // Unspent direct income charges the capacitor.
            let leftover = budget.leftover_income();
            if leftover > Energy::ZERO {
                let level = node.cap.stored();
                let rejected = node.cap.charge(leftover);
                ledger.debit_loss(leftover.saturating_sub(node.cap.stored().saturating_sub(level)));
                self.metrics.nodes[i].rejected += rejected;
            }
            let level = node.cap.stored();
            node.cap.leak(slot_len);
            ledger.debit_leak(level.saturating_sub(node.cap.stored()));
            if !system.retains_state() {
                // Volatile node: queues evaporate at power-down.
                let lost = node.pending.len() + node.outbox.len();
                self.metrics.nodes[i].dropped += lost as u64;
                node.pending.clear();
                node.outbox.clear();
            }
            if self.cfg.trace_stored {
                self.metrics.nodes[i]
                    .stored_series
                    .push(node.cap.stored().as_millijoules() as f32);
            }
            ledger.settle(node.cap.stored());
        }
    }

    /// Builds the balance input, runs the balancer, applies the moves
    /// and charges transfer costs.
    fn balance_step(
        &mut self,
        _slot: u64,
        budgets: &mut [SlotBudget],
        ledgers: &mut [EnergyLedger],
        awake: &[bool],
        income_power: &[Power],
    ) {
        // One representative per position: the awake clone (if any).
        let reps: Vec<Option<usize>> = self
            .positions
            .iter()
            .map(|phys| phys.iter().copied().find(|&i| awake[i]))
            .collect();
        let mut chain_nodes = Vec::with_capacity(self.positions.len());
        let mut rep_map = Vec::with_capacity(self.positions.len());
        for rep in &reps {
            let (state, idx) = match rep {
                Some(i) => {
                    let node = &self.nodes[*i];
                    let level_income = income_power[*i];
                    let radio = self.cfg.node.radio;
                    let tx_reserve = radio.session_cost(&self.rf)
                        + radio.packet_cost(&self.rf, node.cfg.package.processed_bytes) * 2.0;
                    let spare = budgets[*i].available(&node.cap).saturating_sub(tx_reserve);
                    let tasks: Vec<FogTask> = node
                        .pending
                        .iter()
                        .enumerate()
                        .map(|(k, p)| FogTask::new(p.fog_remaining, (*i as u64) << 32 | k as u64))
                        .collect();
                    (
                        NodeBalanceState {
                            node: NodeId::new(*i as u32),
                            spare_energy: spare,
                            efficiency: self.spendthrift.efficiency(level_income),
                            throughput: self.spendthrift.throughput(level_income),
                            tasks,
                            alive: true,
                        },
                        Some(*i),
                    )
                }
                None => (
                    NodeBalanceState {
                        node: NodeId::new(u32::MAX),
                        spare_energy: Energy::ZERO,
                        efficiency: 0.0,
                        throughput: 0.0,
                        tasks: Vec::new(),
                        alive: false,
                    },
                    None,
                ),
            };
            chain_nodes.push(state);
            rep_map.push(idx);
        }
        let mut input = ChainBalanceInput { nodes: chain_nodes };
        let report = self.balancer.balance(&mut input, &mut self.rng);
        self.metrics.balance_interruptions += report.interrupted_regions;
        self.metrics.balance_tasks_moved += report.tasks_moved;
        self.metrics.balance_transfer_hops += report.transfer_hops;

        // Apply the assignment: rebuild each representative's pending
        // queue from the post-balance task tags (a tag names the
        // original holder and its queue index).
        let all_packages: Vec<Vec<Package>> = self
            .nodes
            .iter_mut()
            .map(|n| std::mem::take(&mut n.pending))
            .collect();
        for (pos, state) in input.nodes.iter().enumerate() {
            let Some(dest) = rep_map[pos] else { continue };
            for task in &state.tasks {
                let src = (task.tag >> 32) as usize;
                let k = (task.tag & 0xFFFF_FFFF) as usize;
                let pkg = all_packages[src][k];
                self.nodes[dest].pending.push(pkg);
            }
        }
        // Sleeping clones keep their own pending packages (they were
        // not offered to the balancer).
        for (i, packages) in all_packages.into_iter().enumerate() {
            if !awake[i] {
                self.nodes[i].pending.extend(packages);
            }
        }

        // Charge transfer costs: each hop moves one raw package.
        if report.transfer_hops > 0 {
            let per_hop = self
                .cfg
                .node
                .radio
                .packet_cost(&self.rf, self.cfg.node.package.raw_bytes)
                + self
                    .cfg
                    .system
                    .rx_cost(&self.rf, self.cfg.node.package.raw_bytes);
            let participants: Vec<usize> = (0..self.nodes.len()).filter(|&i| awake[i]).collect();
            if !participants.is_empty() {
                let share = per_hop * report.transfer_hops as f64 / participants.len() as f64;
                for i in participants {
                    let node = &mut self.nodes[i];
                    budgets[i].spend(&mut node.cap, &mut ledgers[i], share);
                    self.metrics.nodes[i].radio_energy += share;
                }
            }
        }
    }

    /// Executes fog tasks on node `i` within its slot budget.
    fn compute_step(
        &mut self,
        i: usize,
        _slot: u64,
        budget: &mut SlotBudget,
        ledger: &mut EnergyLedger,
        income: Power,
        slot_len: Duration,
    ) {
        let node = &mut self.nodes[i];
        if node.pending.is_empty() {
            return;
        }
        // Spendthrift samples both income power and the stored-energy
        // level (§2.2/§4): the effective sustainable power this slot is
        // the income plus what the capacitor could contribute, so a
        // node that accumulated for several sleeping slots (NVD4Q
        // clones) boosts its frequency when it finally activates.
        // The capacitor term is damped: the store must last beyond this
        // one slot, so Spendthrift only banks half of it on the level
        // decision.
        let effective = income
            + Power::from_milliwatts(
                0.5 * budget.available(&node.cap).as_nanojoules() / slot_len.as_micros() as f64,
            );
        let lvl = self.spendthrift.choose(effective);
        let (epi, throughput) = (lvl.energy_per_inst, self.spendthrift.throughput(effective));
        // Keep a transmit reserve so computing never starves shipping.
        let reserve = node.cfg.radio.session_cost(&self.rf)
            + node
                .cfg
                .radio
                .packet_cost(&self.rf, node.cfg.package.processed_bytes);
        let mut time_left = (throughput * slot_len.as_secs_f64()) as u64;
        let mut done_any = false;
        while time_left > 0 {
            let Some(pkg) = node.pending.first_mut() else {
                break;
            };
            let energy_afford = budget
                .available(&node.cap)
                .saturating_sub(reserve)
                .as_nanojoules()
                / epi.as_nanojoules();
            let run = pkg
                .fog_remaining
                .min(time_left)
                .min(energy_afford.max(0.0) as u64);
            if run == 0 {
                break;
            }
            let cost = epi * run as f64;
            if !budget.spend(&mut node.cap, ledger, cost) {
                break;
            }
            self.metrics.nodes[i].compute_energy += cost;
            pkg.fog_remaining -= run;
            time_left -= run;
            if pkg.fog_remaining == 0 {
                pkg.fog_done = true;
                let finished = node.pending.remove(0);
                node.outbox.push(finished);
                self.metrics.nodes[i].tasks_executed += 1;
                done_any = true;
            }
        }
        let _ = done_any;
    }

    /// Ships outboxes into the chain mesh.
    fn transmit_step(
        &mut self,
        _slot: u64,
        budgets: &mut [SlotBudget],
        ledgers: &mut [EnergyLedger],
        awake: &[bool],
    ) {
        let radio = self.cfg.node.radio;
        let session = radio.session_cost(&self.rf);
        let n_pos = self.positions.len();
        // Forwarding duty (airtime) accumulated per position this slot.
        let mut forward_bytes: Vec<u64> = vec![0; n_pos];

        for i in 0..self.nodes.len() {
            if !awake[i] || self.nodes[i].outbox.is_empty() {
                continue;
            }
            let position = self.nodes[i].position;
            // Processed packages first: smaller and more valuable.
            self.nodes[i].outbox.sort_by_key(|p| !p.fog_done);
            // Open the session only when the first packet is payable
            // too — bringing the radio up and then browning out before
            // anything is sent would waste the whole session.
            let first = self.nodes[i].outbox[0];
            let first_bytes = if first.fog_done {
                self.nodes[i].cfg.package.processed_bytes
            } else {
                self.nodes[i].cfg.package.raw_bytes
            };
            let first_cost = radio.packet_cost(&self.rf, first_bytes);
            if budgets[i].available(&self.nodes[i].cap) < session + first_cost {
                continue;
            }
            if !budgets[i].spend(&mut self.nodes[i].cap, &mut ledgers[i], session) {
                continue;
            }
            self.metrics.nodes[i].radio_energy += session;
            let hops = position as u32; // hops to the sink edge
            while let Some(pkg) = self.nodes[i].outbox.first().copied() {
                let bytes = if pkg.fog_done {
                    self.nodes[i].cfg.package.processed_bytes
                } else {
                    self.nodes[i].cfg.package.raw_bytes
                };
                let cost = radio.packet_cost(&self.rf, bytes);
                if !budgets[i].spend(&mut self.nodes[i].cap, &mut ledgers[i], cost) {
                    break;
                }
                self.metrics.nodes[i].radio_energy += cost;
                self.nodes[i].outbox.remove(0);
                // End-to-end delivery through the transparent MAC:
                // per-hop loss compounded over the chain.
                let delivered = {
                    let p = self.loss.chain_success(hops + 1);
                    self.nodes[i].rng.chance(p)
                };
                // Relay duty accrues at intermediate positions.
                for pb in forward_bytes.iter_mut().take(position) {
                    *pb += u64::from(bytes);
                }
                let origin = pkg.origin;
                if delivered {
                    if pkg.fog_done {
                        self.metrics.nodes[origin].delivered_fog += 1;
                    } else {
                        self.metrics.nodes[origin].delivered_cloud += 1;
                    }
                } else {
                    self.metrics.nodes[origin].dropped += 1;
                }
            }
        }

        // Charge forwarding airtime to awake representatives of the
        // relay positions (RX + TX per byte).
        for (pos, &bytes) in forward_bytes.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            let Some(rep) = self.positions[pos].iter().copied().find(|&i| awake[i]) else {
                continue;
            };
            let per_byte =
                self.rf.active_power * Duration::from_micros(2 * self.rf.on_air_per_byte_us);
            let duty = per_byte * bytes as f64;
            let node = &mut self.nodes[rep];
            if budgets[rep].spend(&mut node.cap, &mut ledgers[rep], duty) {
                self.metrics.nodes[rep].radio_energy += duty;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(system: SystemKind) -> SimConfig {
        let mut cfg = SimConfig::paper_default(system, Scenario::ForestIndependent, 1);
        cfg.slots = 150;
        cfg
    }

    #[test]
    fn runs_and_counts_are_bounded() {
        for system in SystemKind::ALL {
            let result = Simulator::new(quick_cfg(system)).run();
            let m = &result.metrics;
            let ideal = result.config.ideal_packages();
            assert!(m.total_wakeups() + m.total_failures() <= ideal);
            assert!(m.total_captured() <= m.total_wakeups());
            assert!(
                m.total_processed() <= m.total_captured(),
                "{system:?}: processed {} > captured {}",
                m.total_processed(),
                m.total_captured()
            );
        }
    }

    #[test]
    fn vp_never_fog_processes() {
        let result = Simulator::new(quick_cfg(SystemKind::NosVp)).run();
        assert_eq!(result.metrics.fog_processed(), 0);
    }

    #[test]
    fn neofog_mostly_fog_processes() {
        let result = Simulator::new(quick_cfg(SystemKind::FiosNeoFog)).run();
        let m = &result.metrics;
        assert!(m.total_processed() > 0, "nothing delivered");
        assert!(m.fog_share() > 0.5, "fog share {}", m.fog_share());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Simulator::new(quick_cfg(SystemKind::FiosNeoFog)).run();
        let b = Simulator::new(quick_cfg(SystemKind::FiosNeoFog)).run();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg2 = quick_cfg(SystemKind::FiosNeoFog);
        cfg2.seed = 99;
        let a = Simulator::new(quick_cfg(SystemKind::FiosNeoFog)).run();
        let b = Simulator::new(cfg2).run();
        assert_ne!(a.metrics, b.metrics);
    }

    #[test]
    fn stored_trace_recorded_when_enabled() {
        let mut cfg = quick_cfg(SystemKind::FiosNeoFog);
        cfg.trace_stored = true;
        let result = Simulator::new(cfg).run();
        assert_eq!(result.metrics.nodes[0].stored_series.len(), 150);
    }

    #[test]
    fn multiplexing_reduces_per_node_wakeups() {
        let mut cfg = quick_cfg(SystemKind::FiosNeoFog);
        cfg.multiplex = 3;
        let result = Simulator::new(cfg).run();
        // 30 physical nodes, each scheduled 1/3 of slots.
        assert_eq!(result.metrics.nodes.len(), 30);
        for n in &result.metrics.nodes {
            assert!(n.wakeups + n.failures <= 50);
        }
    }
}

//! Ready-made experiment configurations for every table and figure of
//! the paper's evaluation (§5).
//!
//! Batch execution itself lives in [`crate::runner`]: every helper
//! here builds its configuration list and hands it to the
//! work-stealing pool, collecting full results through the
//! order-preserving [`CollectAll`] reducer. Each helper has a `_with`
//! variant taking an explicit [`PoolConfig`] and [`Progress`] observer
//! (the figure binaries wire `--workers` and a stderr ticker through
//! these); the plain variants default to every available core and no
//! progress output.

use crate::metrics::NetworkMetrics;
use crate::node::SystemKind;
use crate::runner::{run_batch, CollectAll, NoProgress, PoolConfig, Progress};
use crate::sim::{SimConfig, SimResult};
use neofog_energy::Scenario;
use neofog_types::{NeoFogError, Result};
use serde::{Deserialize, Serialize};

/// The three-bar summary each power profile gets in Figures 10/11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemSummary {
    /// Node design.
    pub system: SystemKind,
    /// Total node wakeups.
    pub wakeups: u64,
    /// Packages delivered raw (cloud-processed).
    pub cloud: u64,
    /// Packages delivered after in-fog processing.
    pub fog: u64,
}

impl SystemSummary {
    /// Total packages processed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cloud + self.fog
    }

    fn from_result(result: &SimResult) -> Self {
        SystemSummary {
            system: result.config.system,
            wakeups: result.metrics.total_wakeups(),
            cloud: result.metrics.cloud_processed(),
            fog: result.metrics.fog_processed(),
        }
    }
}

/// One power profile's worth of Figure 10/11 data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRow {
    /// Profile index (the paper shows five).
    pub profile: u64,
    /// One summary per system, in [`SystemKind::ALL`] order.
    pub systems: Vec<SystemSummary>,
}

/// Runs a batch of simulations on the work-stealing pool, keeping
/// every full result in input order.
///
/// This is a thin wrapper over [`run_batch`] with the [`CollectAll`]
/// reducer, default pool sizing (every available core) and no progress
/// output — see [`run_many_with`] to control either, and prefer a
/// summarizing reducer (like the fleet's) when the batch is large and
/// the full results are not needed.
///
/// # Errors
///
/// Returns [`NeoFogError::Internal`] if a simulation worker thread
/// panics or a result goes missing, and propagates any
/// [`crate::sim::Simulator::new`] configuration error (cancelling the
/// rest of the batch).
pub fn run_many(configs: &[SimConfig]) -> Result<Vec<SimResult>> {
    run_many_with(configs, &PoolConfig::default(), &mut NoProgress)
}

/// [`run_many`] with explicit pool sizing and a progress observer.
///
/// # Errors
///
/// Same as [`run_many`].
pub fn run_many_with(
    configs: &[SimConfig],
    pool: &PoolConfig,
    progress: &mut dyn Progress,
) -> Result<Vec<SimResult>> {
    run_batch(configs, CollectAll::default(), pool, progress)
}

/// Points the first configuration of a batch at a JSONL event log
/// (see [`SimConfig`]'s `events_path`). One representative run per
/// batch is logged: concurrent runs must not share a file, and one
/// deterministic log is enough to replay and diff the batch's seed.
fn log_first_run(configs: &mut [SimConfig], events: Option<&str>) {
    if let (Some(path), Some(first)) = (events, configs.first_mut()) {
        first.events_path = Some(path.to_string());
    }
}

/// Figures 10 (independent) and 11 (dependent): runs all three systems
/// over the given power profiles. When `events` is set, the first run
/// of the batch streams its JSONL event log there.
///
/// # Errors
///
/// Propagates [`run_many`] failures.
pub fn figure10_11(
    scenario: Scenario,
    profiles: &[u64],
    events: Option<&str>,
) -> Result<Vec<ProfileRow>> {
    figure10_11_with(
        scenario,
        profiles,
        events,
        &PoolConfig::default(),
        &mut NoProgress,
    )
}

/// [`figure10_11`] with explicit pool sizing and a progress observer.
///
/// # Errors
///
/// Propagates [`run_many`] failures.
pub fn figure10_11_with(
    scenario: Scenario,
    profiles: &[u64],
    events: Option<&str>,
    pool: &PoolConfig,
    progress: &mut dyn Progress,
) -> Result<Vec<ProfileRow>> {
    let mut configs: Vec<SimConfig> = profiles
        .iter()
        .flat_map(|&p| {
            SystemKind::ALL
                .iter()
                .map(move |&s| SimConfig::paper_default(s, scenario, p))
        })
        .collect();
    log_first_run(&mut configs, events);
    let results = run_many_with(&configs, pool, progress)?;
    Ok(profiles
        .iter()
        .enumerate()
        .map(|(pi, &p)| ProfileRow {
            profile: p,
            systems: results
                .iter()
                .skip(pi * SystemKind::ALL.len())
                .take(SystemKind::ALL.len())
                .map(SystemSummary::from_result)
                .collect(),
        })
        .collect())
}

/// Averages the per-system totals across profiles (the "Average"
/// cluster of Figures 10/11).
#[must_use]
pub fn average_row(rows: &[ProfileRow]) -> Vec<SystemSummary> {
    let n = rows.len().max(1) as u64;
    (0..SystemKind::ALL.len())
        .map(|si| SystemSummary {
            system: SystemKind::ALL[si],
            wakeups: rows.iter().map(|r| r.systems[si].wakeups).sum::<u64>() / n,
            cloud: rows.iter().map(|r| r.systems[si].cloud).sum::<u64>() / n,
            fog: rows.iter().map(|r| r.systems[si].fog).sum::<u64>() / n,
        })
        .collect()
}

/// Figure 9: stored-energy traces of the first three chain nodes.
///
/// The paper's comparison is VP without load balance, NVP with the
/// baseline tree balance and NVP with the proposed distributed balance
/// — all on a bright daytime solar window where an unbalanced node's
/// capacitor is "frequently full, meaning further energy was rejected".
///
/// When `events` is set, the first variant streams its JSONL event log
/// there.
///
/// # Errors
///
/// Propagates [`run_many`] failures.
pub fn figure9(seed: u64, events: Option<&str>) -> Result<Vec<(&'static str, NetworkMetrics)>> {
    figure9_with(seed, events, &PoolConfig::default(), &mut NoProgress)
}

/// [`figure9`] with explicit pool sizing and a progress observer.
///
/// # Errors
///
/// Propagates [`run_many`] failures.
pub fn figure9_with(
    seed: u64,
    events: Option<&str>,
    pool: &PoolConfig,
    progress: &mut dyn Progress,
) -> Result<Vec<(&'static str, NetworkMetrics)>> {
    use crate::sim::BalancerKind;
    let variants = [
        ("VP w/o load balance", SystemKind::NosVp, BalancerKind::None),
        (
            "NVP + baseline tree LB",
            SystemKind::NosNvp,
            BalancerKind::Tree,
        ),
        (
            "NVP + distributed LB",
            SystemKind::NosNvp,
            BalancerKind::Distributed,
        ),
    ];
    let mut configs: Vec<SimConfig> = variants
        .iter()
        .map(|&(_, system, balancer)| {
            let mut cfg = SimConfig::paper_default(system, Scenario::BridgeDependent, seed);
            cfg.balancer = balancer;
            cfg.trace_stored = true;
            cfg.income_scale = 1.0; // bright day
            cfg
        })
        .collect();
    log_first_run(&mut configs, events);
    Ok(run_many_with(&configs, pool, progress)?
        .into_iter()
        .zip(variants)
        .map(|(r, (label, _, _))| (label, r.metrics))
        .collect())
}

/// One point of the Figure 12/13 multiplexing sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplexPoint {
    /// Multiplexing factor (1 = "100 %").
    pub factor: u32,
    /// Packages processed in-fog by the NEOFog system.
    pub fog_processed: u64,
    /// Total packages processed.
    pub total_processed: u64,
    /// Total samples captured across the logical network.
    pub captured: u64,
}

/// Figures 12/13: NVD4Q multiplexing sweep. Returns the NEOFog points
/// for each factor plus the VP-without-balancing reference. When
/// `events` is set, the first factor's run streams its JSONL event log
/// there.
///
/// # Errors
///
/// Propagates [`run_many`] failures.
pub fn multiplex_sweep(
    scenario: Scenario,
    factors: &[u32],
    seed: u64,
    events: Option<&str>,
) -> Result<(Vec<MultiplexPoint>, u64)> {
    multiplex_sweep_with(
        scenario,
        factors,
        seed,
        events,
        &PoolConfig::default(),
        &mut NoProgress,
    )
}

/// [`multiplex_sweep`] with explicit pool sizing and a progress
/// observer.
///
/// # Errors
///
/// Propagates [`run_many`] failures.
pub fn multiplex_sweep_with(
    scenario: Scenario,
    factors: &[u32],
    seed: u64,
    events: Option<&str>,
    pool: &PoolConfig,
    progress: &mut dyn Progress,
) -> Result<(Vec<MultiplexPoint>, u64)> {
    let mut configs: Vec<SimConfig> = factors
        .iter()
        .map(|&f| {
            let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, scenario, seed);
            cfg.multiplex = f;
            cfg
        })
        .collect();
    configs.push(SimConfig::paper_default(SystemKind::NosVp, scenario, seed));
    log_first_run(&mut configs, events);
    let mut results = run_many_with(&configs, pool, progress)?;
    let vp = results
        .pop()
        .ok_or_else(|| NeoFogError::internal("multiplex sweep lost its VP reference run"))?;
    let points = results
        .iter()
        .zip(factors)
        .map(|(r, &f)| MultiplexPoint {
            factor: f,
            fog_processed: r.metrics.fog_processed(),
            total_processed: r.metrics.total_processed(),
            captured: r.metrics.total_captured(),
        })
        .collect();
    // The VP system delivers everything raw; its "in-fog" equivalent in
    // Figures 12/13 is its delivered package count.
    Ok((points, vp.metrics.total_processed()))
}

/// The paper's headline numbers, derived from the low-power sweep:
/// in-fog gain of NEOFog over VP at baseline node count, and at 3×
/// multiplexing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    /// NEOFog(1×) / VP in-fog gain (paper: 4.2×).
    pub baseline_gain: f64,
    /// NEOFog(3×) / VP in-fog gain (paper: up to 8×).
    pub multiplexed_gain: f64,
}

/// One ablation variant: the full NEOFog node with one technique
/// removed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Packages processed in-fog.
    pub fog: u64,
    /// Total packages processed.
    pub total: u64,
}

/// The §5 "contributions due to individual techniques" study: start
/// from the full FIOS-NEOFog node and remove one nonvolatility-
/// exploiting technique at a time. When `events` is set, the full
/// NEOFog variant streams its JSONL event log there.
///
/// # Errors
///
/// Propagates [`run_many`] failures.
pub fn ablation(scenario: Scenario, seed: u64, events: Option<&str>) -> Result<Vec<AblationRow>> {
    ablation_with(
        scenario,
        seed,
        events,
        &PoolConfig::default(),
        &mut NoProgress,
    )
}

/// [`ablation`] with explicit pool sizing and a progress observer.
///
/// # Errors
///
/// Propagates [`run_many`] failures.
pub fn ablation_with(
    scenario: Scenario,
    seed: u64,
    events: Option<&str>,
    pool: &PoolConfig,
    progress: &mut dyn Progress,
) -> Result<Vec<AblationRow>> {
    use crate::node::RadioControl;
    use crate::sim::BalancerKind;
    use neofog_energy::FrontEnd;

    let base = SimConfig::paper_default(SystemKind::FiosNeoFog, scenario, seed);
    let mut variants: Vec<(String, SimConfig)> = Vec::new();
    variants.push(("full NEOFog".into(), base.clone()));
    {
        let mut cfg = base.clone();
        cfg.node.radio = RadioControl::NvmRestore;
        variants.push(("- NVRF (NVM-restore radio)".into(), cfg));
    }
    {
        let mut cfg = base.clone();
        cfg.node.front_end = FrontEnd::nos();
        variants.push(("- FIOS front-end (NOS single channel)".into(), cfg));
    }
    {
        let mut cfg = base.clone();
        cfg.balancer = BalancerKind::Tree;
        variants.push(("- distributed LB (baseline tree)".into(), cfg));
    }
    {
        let mut cfg = base.clone();
        cfg.balancer = BalancerKind::None;
        variants.push(("- load balancing entirely".into(), cfg));
    }
    variants.push((
        "NOS-NVP baseline".into(),
        SimConfig::paper_default(SystemKind::NosNvp, scenario, seed),
    ));
    variants.push((
        "NOS-VP baseline".into(),
        SimConfig::paper_default(SystemKind::NosVp, scenario, seed),
    ));

    let labels: Vec<String> = variants.iter().map(|(l, _)| l.clone()).collect();
    let mut configs: Vec<SimConfig> = variants.into_iter().map(|(_, c)| c).collect();
    log_first_run(&mut configs, events);
    Ok(run_many_with(&configs, pool, progress)?
        .into_iter()
        .zip(labels)
        .map(|(r, label)| AblationRow {
            label,
            fog: r.metrics.fog_processed(),
            total: r.metrics.total_processed(),
        })
        .collect())
}

/// Computes the headline gains in the low-power (rainy) scenario.
///
/// # Errors
///
/// Propagates [`run_many`] failures.
pub fn headline(seed: u64) -> Result<Headline> {
    headline_with(seed, &PoolConfig::default(), &mut NoProgress)
}

/// [`headline`] with explicit pool sizing and a progress observer.
///
/// # Errors
///
/// Propagates [`run_many`] failures.
pub fn headline_with(
    seed: u64,
    pool: &PoolConfig,
    progress: &mut dyn Progress,
) -> Result<Headline> {
    let (points, vp) =
        multiplex_sweep_with(Scenario::MountainRainy, &[1, 3], seed, None, pool, progress)?;
    let vp = vp.max(1) as f64;
    let [one, three] = points.as_slice() else {
        return Err(NeoFogError::internal(
            "headline sweep expects exactly two factors",
        ));
    };
    Ok(Headline {
        baseline_gain: one.fog_processed as f64 / vp,
        multiplexed_gain: three.fog_processed as f64 / vp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn shrink(cfg: &mut SimConfig) {
        cfg.slots = 120;
    }

    #[test]
    fn run_many_preserves_order() {
        let mut a = SimConfig::paper_default(SystemKind::NosVp, Scenario::ForestIndependent, 1);
        let mut b =
            SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 1);
        shrink(&mut a);
        shrink(&mut b);
        let results = run_many(&[a, b]).expect("batch runs");
        assert_eq!(results[0].config.system, SystemKind::NosVp);
        assert_eq!(results[1].config.system, SystemKind::FiosNeoFog);
    }

    #[test]
    fn parallel_equals_serial() {
        let mut cfg =
            SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 7);
        shrink(&mut cfg);
        let serial = Simulator::new(cfg.clone()).expect("config is valid").run();
        let parallel = run_many(&[cfg.clone()]).expect("batch runs").remove(0);
        assert_eq!(serial.metrics, parallel.metrics);
    }

    #[test]
    fn average_row_averages() {
        let rows = vec![
            ProfileRow {
                profile: 1,
                systems: vec![
                    SystemSummary {
                        system: SystemKind::NosVp,
                        wakeups: 10,
                        cloud: 4,
                        fog: 0,
                    },
                    SystemSummary {
                        system: SystemKind::NosNvp,
                        wakeups: 8,
                        cloud: 1,
                        fog: 5,
                    },
                    SystemSummary {
                        system: SystemKind::FiosNeoFog,
                        wakeups: 8,
                        cloud: 1,
                        fog: 9,
                    },
                ],
            },
            ProfileRow {
                profile: 2,
                systems: vec![
                    SystemSummary {
                        system: SystemKind::NosVp,
                        wakeups: 20,
                        cloud: 8,
                        fog: 0,
                    },
                    SystemSummary {
                        system: SystemKind::NosNvp,
                        wakeups: 10,
                        cloud: 1,
                        fog: 7,
                    },
                    SystemSummary {
                        system: SystemKind::FiosNeoFog,
                        wakeups: 10,
                        cloud: 1,
                        fog: 11,
                    },
                ],
            },
        ];
        let avg = average_row(&rows);
        assert_eq!(avg[0].wakeups, 15);
        assert_eq!(avg[0].cloud, 6);
        assert_eq!(avg[2].fog, 10);
    }
}

//! Evaluation metrics (paper §5).
//!
//! "To quantify WSN output quality, we employ the following metrics:
//! counts of node wakeups, successfully processed samples, and samples
//! processed in the fog." Cloud-processed packages are those delivered
//! raw; fog-processed packages were fully processed at the edge before
//! delivery.

use neofog_types::Energy;
use serde::{Deserialize, Serialize};

/// Per-node counters.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// Slots in which the node woke up.
    pub wakeups: u64,
    /// Slots in which the node was scheduled to wake but could not
    /// (energy depletion — the paper's "node failures").
    pub failures: u64,
    /// Packages captured (sampled) by this node.
    pub captured: u64,
    /// Fog tasks completed by this node (execution credit, counts
    /// balanced work from neighbours too).
    pub tasks_executed: u64,
    /// Own packages delivered having been processed in the fog.
    pub delivered_fog: u64,
    /// Own packages delivered raw (processed in the cloud).
    pub delivered_cloud: u64,
    /// Packages lost (channel loss, volatile drops, buffer overflow).
    pub dropped: u64,
    /// Total energy harvested (delivered by the front-end).
    pub harvested: Energy,
    /// Energy rejected because the capacitor was full.
    pub rejected: Energy,
    /// Energy spent on radio (TX + RX + init).
    pub radio_energy: Energy,
    /// Energy spent on computation (fog tasks).
    pub compute_energy: Energy,
    /// Stored-energy samples over time (for Figure 9), in millijoules,
    /// recorded once per slot when tracing is enabled.
    pub stored_series: Vec<f32>,
}

/// Whole-network counters plus per-node detail.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NetworkMetrics {
    /// Per-node metrics, indexed by node index.
    pub nodes: Vec<NodeMetrics>,
    /// Load-balance rounds that were interrupted.
    pub balance_interruptions: u64,
    /// Tasks moved by the balancer.
    pub balance_tasks_moved: u64,
    /// Hop transmissions spent on balancing.
    pub balance_transfer_hops: u64,
    /// Offload decisions resolved (including decisions to hold).
    pub offload_decisions: u64,
    /// Tasks shipped off their capturing node by offload decisions.
    pub offload_shipped_tasks: u64,
}

impl NetworkMetrics {
    /// Creates zeroed metrics for `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        NetworkMetrics {
            nodes: vec![NodeMetrics::default(); n],
            ..Default::default()
        }
    }

    /// Sum of node wakeups.
    #[must_use]
    pub fn total_wakeups(&self) -> u64 {
        self.nodes.iter().map(|n| n.wakeups).sum()
    }

    /// Sum of node failures.
    #[must_use]
    pub fn total_failures(&self) -> u64 {
        self.nodes.iter().map(|n| n.failures).sum()
    }

    /// Sum of captured packages.
    #[must_use]
    pub fn total_captured(&self) -> u64 {
        self.nodes.iter().map(|n| n.captured).sum()
    }

    /// Packages delivered after in-fog processing.
    #[must_use]
    pub fn fog_processed(&self) -> u64 {
        self.nodes.iter().map(|n| n.delivered_fog).sum()
    }

    /// Packages delivered raw for cloud processing.
    #[must_use]
    pub fn cloud_processed(&self) -> u64 {
        self.nodes.iter().map(|n| n.delivered_cloud).sum()
    }

    /// Total packages delivered (the paper's "total packets
    /// processed").
    #[must_use]
    pub fn total_processed(&self) -> u64 {
        self.fog_processed() + self.cloud_processed()
    }

    /// Total packages dropped.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.nodes.iter().map(|n| n.dropped).sum()
    }

    /// Total radio energy across the network.
    #[must_use]
    pub fn total_radio_energy(&self) -> Energy {
        self.nodes.iter().map(|n| n.radio_energy).sum()
    }

    /// Total compute energy across the network.
    #[must_use]
    pub fn total_compute_energy(&self) -> Energy {
        self.nodes.iter().map(|n| n.compute_energy).sum()
    }

    /// Share of delivered packages that were fog-processed.
    #[must_use]
    pub fn fog_share(&self) -> f64 {
        let total = self.total_processed();
        if total == 0 {
            0.0
        } else {
            self.fog_processed() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_nodes() {
        let mut m = NetworkMetrics::new(3);
        m.nodes[0].wakeups = 5;
        m.nodes[1].wakeups = 7;
        m.nodes[2].delivered_fog = 4;
        m.nodes[2].delivered_cloud = 1;
        assert_eq!(m.total_wakeups(), 12);
        assert_eq!(m.total_processed(), 5);
        assert_eq!(m.fog_processed(), 4);
        assert!((m.fog_share() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_network_has_zero_share() {
        let m = NetworkMetrics::new(2);
        assert_eq!(m.fog_share(), 0.0);
        assert_eq!(m.total_processed(), 0);
    }
}

//! NEOFog core: the paper's contribution.
//!
//! This crate assembles the substrates (`neofog-energy`, `neofog-nvp`,
//! `neofog-rf`, `neofog-sensors`, `neofog-workloads`, `neofog-net`)
//! into the three optimization layers of the NEOFog architecture
//! (paper §3) and the system-level simulator that evaluates them
//! (paper §4–§5):
//!
//! * [`node`] — node-level reoptimization: the NOS-VP, NOS-NVP and
//!   FIOS-NEOFog system kinds with their activation thresholds and
//!   per-slot cost structure (Figure 4).
//! * [`balance`] — intra-chain load balancing: no balancing, the
//!   baseline up-down tree balancer, and the paper's distributed
//!   dynamic-programming balancer (Algorithm 1).
//! * [`nvd4q`] — inter-chain node virtualization for QoS
//!   (Algorithm 2): clone sets time-multiplexing logical nodes via
//!   NVRF state sharing.
//! * [`sim`] — the slot-driven WSN system simulator, structured as a
//!   six-phase pipeline emitting typed [`sim::SimEvent`]s to pluggable
//!   observers, and [`fleet`] — the streaming many-chain harness
//!   behind the paper's "our simulator runs thousands of single-node
//!   simulators simultaneously".
//! * [`runner`] — batch execution: the work-stealing job pool, the
//!   [`runner::Reduce`] streaming-aggregation trait and the
//!   [`runner::Progress`] observer hook every experiment/fleet entry
//!   point runs on.
//! * [`metrics`] — wakeups / packets captured / cloud-processed /
//!   fog-processed accounting, plus stored-energy traces (Figure 9).
//! * [`experiment`] — ready-made configurations for every table and
//!   figure of the evaluation, and [`report`] — plain-text renderers
//!   for their outputs.
//! * [`timeline`] — the Figure 1 / Figure 4 activation timing
//!   breakdowns.
//! * [`table1`] — the catalog of deployed energy-harvesting WSN
//!   systems (Table 1).

pub mod balance;
pub mod experiment;
pub mod fleet;
pub mod metrics;
pub mod node;
pub mod nvd4q;
pub mod report;
pub mod runner;
pub mod sim;
pub mod table1;
pub mod timeline;

pub use balance::{
    BalanceReport, ChainBalanceInput, DistributedBalancer, LoadBalancer, NoBalancer,
    NodeBalanceState, OffloadBalancer, OffloadDecision, OffloadTarget, RouteContext, TreeBalancer,
};
pub use metrics::{NetworkMetrics, NodeMetrics};
pub use node::{NodeCapabilities, NodeConfig, PackageSpec, SystemKind, TierCapabilities};
pub use nvd4q::{CloneSet, VirtualizationManager};
pub use runner::{run_batch, CollectAll, NoProgress, PoolConfig, Progress, Reduce, StderrTicker};
pub use sim::{
    BalancerKind, EventLogObserver, LedgerObserver, MetricsObserver, Observers, RadioPurpose,
    ShedReason, SimConfig, SimEvent, SimObserver, SimResult, Simulator, StoredTraceObserver,
};

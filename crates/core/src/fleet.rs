//! Fleet-scale simulation (paper §4).
//!
//! "Our simulator runs thousands of single-node simulators
//! simultaneously (1000 for intra-chain simulation, and 1000 to 5000
//! for inter-chain simulation). Each node has different power inputs.
//! ... Of the simulated thousands of nodes, 10 consecutive nodes'
//! information is shown as the presented example in the paper for
//! simplicity."
//!
//! [`run_fleet`] simulates many independent chains on the
//! work-stealing pool (each chain seeded differently, exactly like the
//! paper's per-node power inputs) and aggregates the distribution of
//! per-chain outcomes, so the 10-node figures can be read as one draw
//! from a characterized population.
//!
//! Aggregation streams: every chain's [`SimResult`] is reduced to a
//! [`ChainSummary`] — three `u64` counters, 24 bytes — on the worker
//! thread that simulated it and dropped immediately, so the peak
//! memory of a 100 000-chain fleet is `O(chains × 24 bytes)` plus one
//! in-flight result per worker, independent of how heavy the per-node
//! metrics (or a `trace_stored` series) are.
//!
//! Each in-flight chain is one columnar [`Simulator`]: its hot node
//! state lives in the struct-of-arrays kernel (DESIGN.md §14), so a
//! worker's footprint is a handful of dense vectors plus the per-node
//! energy curves. For *wide* chains (many positions per chain, rather
//! than many chains), coarsen [`SimConfig::trace_dt`] toward the slot
//! length — curve storage scales with `slots × slot_len / trace_dt`
//! per node, and the default fine resolution is what dominates memory
//! long before the columns do.
//!
//! [`Simulator`]: crate::sim::Simulator

use crate::runner::{run_batch, NoProgress, PoolConfig, Progress, Reduce};
use crate::sim::{SimConfig, SimResult};
use neofog_types::{NeoFogError, Result};
use serde::{Deserialize, Serialize};

/// Summary statistics over per-chain outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetStat {
    /// Mean across chains.
    pub mean: f64,
    /// Population standard deviation across chains (σ, dividing by
    /// `n` — the fleet *is* the population, not a sample of one).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl FleetStat {
    /// Computes statistics from raw per-chain values.
    ///
    /// # Percentile convention
    ///
    /// Percentiles use the **nearest-rank** method on the ascending
    /// sort: percentile `q` is the element at index
    /// `round(q × (n − 1))` (half-away-from-zero rounding, the `f64`
    /// default). No interpolation is performed — every reported
    /// percentile is a value that actually occurred. Consequences at
    /// the boundaries:
    ///
    /// * `n = 1`: every percentile equals the single value.
    /// * `n = 2`: `p10` is the smaller element (`round(0.1) = 0`);
    ///   `p50` and `p90` are the larger (`round(0.5) = round(0.9) = 1`).
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::InvalidConfig`] if `values` is empty —
    /// percentiles of an empty population are undefined.
    pub fn from_values(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(NeoFogError::invalid_config(
                "fleet statistics need at least one chain value",
            ));
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pct = |q: f64| -> f64 {
            let idx = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx]
        };
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let variance =
            sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / sorted.len() as f64;
        Ok(FleetStat {
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            p10: pct(0.10),
            p50: pct(0.50),
            p90: pct(0.90),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Aggregated result of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// Chains simulated.
    pub chains: usize,
    /// Physical nodes simulated in total.
    pub nodes: usize,
    /// Distribution of per-chain fog-processed packages.
    pub fog: FleetStat,
    /// Distribution of per-chain total processed packages.
    pub total: FleetStat,
    /// Distribution of per-chain captured packages.
    pub captured: FleetStat,
    /// Network-wide fog-processed sum.
    pub fog_sum: u64,
}

/// The scalars a fleet keeps per chain: 24 bytes, however large the
/// chain's full [`SimResult`] was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSummary {
    /// Packages processed in-fog.
    pub fog: u64,
    /// Total packages processed.
    pub total: u64,
    /// Samples captured.
    pub captured: u64,
}

impl ChainSummary {
    /// Extracts the fleet-relevant counters from one chain's result.
    #[must_use]
    pub fn of(result: &SimResult) -> Self {
        ChainSummary {
            fog: result.metrics.fog_processed(),
            total: result.metrics.total_processed(),
            captured: result.metrics.total_captured(),
        }
    }
}

/// The streaming reducer behind [`run_fleet`]: folds each chain's
/// [`ChainSummary`] into three per-chain value vectors (for the
/// [`FleetStat`] percentiles) and a running network-wide sum.
///
/// Because [`Reduce::map`] runs on the worker thread, the full
/// [`SimResult`] never reaches the aggregation side: steady-state
/// memory is the three `f64` vectors — 24 bytes per chain.
#[derive(Debug, Default)]
pub struct FleetReducer {
    fog: Vec<f64>,
    total: Vec<f64>,
    captured: Vec<f64>,
    fog_sum: u64,
}

impl Reduce for FleetReducer {
    type Item = ChainSummary;
    type Output = FleetReducer;

    fn map(result: SimResult) -> ChainSummary {
        ChainSummary::of(&result)
    }

    fn fold(&mut self, _index: usize, chain: ChainSummary) {
        // Folds arrive in chain order, so these vectors line up with
        // the pre-runner serial collection exactly.
        self.fog.push(chain.fog as f64);
        self.total.push(chain.total as f64);
        self.captured.push(chain.captured as f64);
        self.fog_sum += chain.fog;
    }

    fn finish(self) -> FleetReducer {
        self
    }
}

/// Runs `chains` independent copies of `base` (seeded `base.seed`,
/// `base.seed + 1`, …) on the work-stealing pool and aggregates.
///
/// Uses default pool sizing (every available core) and no progress
/// output; see [`run_fleet_with`] to control either.
///
/// # Errors
///
/// Returns [`NeoFogError::InvalidConfig`] if `chains` is zero and
/// propagates [`crate::runner::run_batch`] failures.
///
/// # Examples
///
/// ```
/// use neofog_core::fleet::run_fleet;
/// use neofog_core::sim::SimConfig;
/// use neofog_core::SystemKind;
/// use neofog_energy::Scenario;
///
/// let mut base = SimConfig::paper_default(
///     SystemKind::FiosNeoFog,
///     Scenario::ForestIndependent,
///     1,
/// );
/// base.slots = 50;
/// let fleet = run_fleet(&base, 20).expect("fleet runs"); // 200 nodes
/// assert_eq!(fleet.chains, 20);
/// assert!(fleet.fog.p90 >= fleet.fog.p10);
/// ```
pub fn run_fleet(base: &SimConfig, chains: usize) -> Result<FleetResult> {
    run_fleet_with(base, chains, &PoolConfig::default(), &mut NoProgress)
}

/// [`run_fleet`] with explicit pool sizing and a progress observer.
///
/// # Errors
///
/// Same as [`run_fleet`].
pub fn run_fleet_with(
    base: &SimConfig,
    chains: usize,
    pool: &PoolConfig,
    progress: &mut dyn Progress,
) -> Result<FleetResult> {
    if chains == 0 {
        return Err(NeoFogError::invalid_config("at least one chain required"));
    }
    let configs: Vec<SimConfig> = (0..chains)
        .map(|k| {
            let mut cfg = base.clone();
            cfg.seed = base.seed.wrapping_add(k as u64);
            cfg
        })
        .collect();
    let tallies = run_batch(&configs, FleetReducer::default(), pool, progress)?;
    Ok(FleetResult {
        chains,
        nodes: chains * base.positions * base.multiplex as usize,
        fog: FleetStat::from_values(&tallies.fog)?,
        total: FleetStat::from_values(&tallies.total)?,
        captured: FleetStat::from_values(&tallies.captured)?,
        fog_sum: tallies.fog_sum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SystemKind;
    use neofog_energy::Scenario;

    fn base(slots: u64) -> SimConfig {
        let mut cfg =
            SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 7);
        cfg.slots = slots;
        cfg
    }

    #[test]
    fn stats_are_ordered() {
        let s = FleetStat::from_values(&[5.0, 1.0, 9.0, 3.0, 7.0]).expect("non-empty");
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.p50, 5.0);
        assert!(s.p10 <= s.p50 && s.p50 <= s.p90);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Population σ of {1,3,5,7,9}: √8.
        assert!((s.std_dev - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_values_are_rejected_not_panicking() {
        assert!(matches!(
            FleetStat::from_values(&[]),
            Err(NeoFogError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn one_element_population_is_degenerate() {
        let s = FleetStat::from_values(&[4.25]).expect("non-empty");
        assert_eq!(
            (s.mean, s.min, s.p10, s.p50, s.p90, s.max),
            (4.25, 4.25, 4.25, 4.25, 4.25, 4.25)
        );
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn two_element_population_follows_nearest_rank() {
        // Nearest rank with n = 2: p10 → index round(0.1) = 0, p50 and
        // p90 → index round(0.5) = round(0.9) = 1.
        let s = FleetStat::from_values(&[10.0, 2.0]).expect("non-empty");
        assert_eq!(s.min, 2.0);
        assert_eq!(s.p10, 2.0);
        assert_eq!(s.p50, 10.0);
        assert_eq!(s.p90, 10.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.mean, 6.0);
        // Population σ of {2, 10} is 4.
        assert_eq!(s.std_dev, 4.0);
    }

    #[test]
    fn fleet_counts_nodes() {
        let fleet = run_fleet(&base(40), 8).expect("fleet runs");
        assert_eq!(fleet.chains, 8);
        assert_eq!(fleet.nodes, 80);
        assert!(fleet.fog_sum > 0);
    }

    #[test]
    fn chains_vary_but_cluster() {
        let fleet = run_fleet(&base(120), 16).expect("fleet runs");
        // Independent seeds: some spread, but the population clusters
        // (p90 within ~3x of p10 for this scenario).
        assert!(fleet.fog.max > fleet.fog.min, "no variation is suspicious");
        assert!(
            fleet.fog.p90 <= fleet.fog.p10 * 3.0 + 50.0,
            "{:?}",
            fleet.fog
        );
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = run_fleet(&base(40), 6).expect("fleet runs");
        let b = run_fleet(&base(40), 6).expect("fleet runs");
        assert_eq!(a, b);
    }

    #[test]
    fn zero_chains_rejected() {
        assert!(run_fleet(&base(10), 0).is_err());
    }
}

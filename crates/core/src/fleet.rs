//! Fleet-scale simulation (paper §4).
//!
//! "Our simulator runs thousands of single-node simulators
//! simultaneously (1000 for intra-chain simulation, and 1000 to 5000
//! for inter-chain simulation). Each node has different power inputs.
//! ... Of the simulated thousands of nodes, 10 consecutive nodes'
//! information is shown as the presented example in the paper for
//! simplicity."
//!
//! [`run_fleet`] simulates many independent chains in parallel (each
//! chain seeded differently, exactly like the paper's per-node power
//! inputs) and aggregates the distribution of per-chain outcomes, so
//! the 10-node figures can be read as one draw from a characterized
//! population.

use crate::experiment::run_many;
use crate::sim::SimConfig;
use neofog_types::{NeoFogError, Result};
use serde::{Deserialize, Serialize};

/// Summary statistics over per-chain outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetStat {
    /// Mean across chains.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl FleetStat {
    /// Computes statistics from raw per-chain values.
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::InvalidConfig`] if `values` is empty —
    /// percentiles of an empty population are undefined.
    pub fn from_values(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(NeoFogError::invalid_config(
                "fleet statistics need at least one chain value",
            ));
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pct = |q: f64| -> f64 {
            let idx = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx]
        };
        Ok(FleetStat {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p10: pct(0.10),
            p50: pct(0.50),
            p90: pct(0.90),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Aggregated result of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// Chains simulated.
    pub chains: usize,
    /// Physical nodes simulated in total.
    pub nodes: usize,
    /// Distribution of per-chain fog-processed packages.
    pub fog: FleetStat,
    /// Distribution of per-chain total processed packages.
    pub total: FleetStat,
    /// Distribution of per-chain captured packages.
    pub captured: FleetStat,
    /// Network-wide fog-processed sum.
    pub fog_sum: u64,
}

/// Runs `chains` independent copies of `base` (seeded `base.seed`,
/// `base.seed + 1`, …) in parallel and aggregates.
///
/// # Errors
///
/// Returns [`NeoFogError::InvalidConfig`] if `chains` is zero and
/// propagates [`run_many`] failures.
///
/// # Examples
///
/// ```
/// use neofog_core::fleet::run_fleet;
/// use neofog_core::sim::SimConfig;
/// use neofog_core::SystemKind;
/// use neofog_energy::Scenario;
///
/// let mut base = SimConfig::paper_default(
///     SystemKind::FiosNeoFog,
///     Scenario::ForestIndependent,
///     1,
/// );
/// base.slots = 50;
/// let fleet = run_fleet(&base, 20).expect("fleet runs"); // 200 nodes
/// assert_eq!(fleet.chains, 20);
/// assert!(fleet.fog.p90 >= fleet.fog.p10);
/// ```
pub fn run_fleet(base: &SimConfig, chains: usize) -> Result<FleetResult> {
    if chains == 0 {
        return Err(NeoFogError::invalid_config("at least one chain required"));
    }
    let configs: Vec<SimConfig> = (0..chains)
        .map(|k| {
            let mut cfg = base.clone();
            cfg.seed = base.seed.wrapping_add(k as u64);
            cfg
        })
        .collect();
    let results = run_many(configs)?;
    let fog: Vec<f64> = results
        .iter()
        .map(|r| r.metrics.fog_processed() as f64)
        .collect();
    let total: Vec<f64> = results
        .iter()
        .map(|r| r.metrics.total_processed() as f64)
        .collect();
    let captured: Vec<f64> = results
        .iter()
        .map(|r| r.metrics.total_captured() as f64)
        .collect();
    Ok(FleetResult {
        chains,
        nodes: chains * base.positions * base.multiplex as usize,
        fog: FleetStat::from_values(&fog)?,
        total: FleetStat::from_values(&total)?,
        captured: FleetStat::from_values(&captured)?,
        fog_sum: results.iter().map(|r| r.metrics.fog_processed()).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SystemKind;
    use neofog_energy::Scenario;

    fn base(slots: u64) -> SimConfig {
        let mut cfg =
            SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 7);
        cfg.slots = slots;
        cfg
    }

    #[test]
    fn stats_are_ordered() {
        let s = FleetStat::from_values(&[5.0, 1.0, 9.0, 3.0, 7.0]).expect("non-empty");
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.p50, 5.0);
        assert!(s.p10 <= s.p50 && s.p50 <= s.p90);
        assert!((s.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_values_are_rejected_not_panicking() {
        assert!(matches!(
            FleetStat::from_values(&[]),
            Err(NeoFogError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn fleet_counts_nodes() {
        let fleet = run_fleet(&base(40), 8).expect("fleet runs");
        assert_eq!(fleet.chains, 8);
        assert_eq!(fleet.nodes, 80);
        assert!(fleet.fog_sum > 0);
    }

    #[test]
    fn chains_vary_but_cluster() {
        let fleet = run_fleet(&base(120), 16).expect("fleet runs");
        // Independent seeds: some spread, but the population clusters
        // (p90 within ~3x of p10 for this scenario).
        assert!(fleet.fog.max > fleet.fog.min, "no variation is suspicious");
        assert!(
            fleet.fog.p90 <= fleet.fog.p10 * 3.0 + 50.0,
            "{:?}",
            fleet.fog
        );
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = run_fleet(&base(40), 6).expect("fleet runs");
        let b = run_fleet(&base(40), 6).expect("fleet runs");
        assert_eq!(a, b);
    }

    #[test]
    fn zero_chains_rejected() {
        assert!(run_fleet(&base(10), 0).is_err());
    }
}

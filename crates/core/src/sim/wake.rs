//! Phase 2 — wake/capture: scheduled nodes pay the activation
//! threshold and capture one data package.
//!
//! A node scheduled this slot (its clone phase) wakes only if its
//! budget covers the system's activation threshold; a scheduled node
//! that cannot afford it is a *failure* (energy depletion). Awake
//! nodes capture one package (rain can spoil the sample); fog-capable
//! nodes enqueue its processing task behind a bounded NV admission
//! buffer, others ship it raw.
//!
//! The admission check reads the FIFO-depth column, not the queue
//! itself, so a node that stays asleep costs this sweep two column
//! loads (schedule, RTC sync bit) and nothing from its cold row. The
//! sampling roll draws from the node's *own* RNG stream, so the sweep
//! is still per-node independent and shards cleanly.

use super::columns;
use super::ctx::{Package, SlotCtx, MAX_PENDING};
use super::event::{ShedReason, SimEvent};
use super::shard::{drive, ColumnsShard, Sweep};
use super::Simulator;
use crate::node::SystemKind;

/// The per-slot scalars the wake sweep closes over.
struct WakeSweep {
    slot: u64,
    system: SystemKind,
    sampling_success: f64,
    fog_capable: bool,
}

impl Sweep for WakeSweep {
    fn sweep<E: FnMut(SimEvent)>(
        &self,
        shard: &mut ColumnsShard<'_>,
        _pkg: &mut Vec<Package>,
        mut emit: E,
    ) {
        let ColumnsShard {
            base,
            cap,
            rtc,
            schedule,
            fifo_depth,
            direct_left,
            awake,
            cold,
            ledgers,
            direct_eff,
            discharge_eff,
            ..
        } = shard;
        for (
            local,
            (((((((schedule, rtc), cap), direct_left), awake), fifo_depth), cold), ledger),
        ) in schedule
            .iter()
            .zip(rtc.iter())
            .zip(cap.iter_mut())
            .zip(direct_left.iter_mut())
            .zip(awake.iter_mut())
            .zip(fifo_depth.iter_mut())
            .zip(cold.iter_mut())
            .zip(ledgers.iter_mut())
            .enumerate()
        {
            let node = *base + local;
            let scheduled = schedule.wakes_at(self.slot) && rtc.is_synchronized();
            if !scheduled {
                continue;
            }
            if columns::budget_available(*direct_left, *discharge_eff, cap)
                >= self.system.wake_threshold()
            {
                columns::spend_budget(
                    direct_left,
                    *direct_eff,
                    *discharge_eff,
                    cap,
                    ledger,
                    self.system.wake_cost(),
                );
                *awake = true;
                emit(SimEvent::NodeWoke { node });
                // Capture one package (rain can spoil the sample).
                if !cold.rng.chance(self.sampling_success) {
                    continue;
                }
                emit(SimEvent::PackageCaptured { node });
                let pkg = Package {
                    origin: node,
                    created: self.slot,
                    fog_remaining: cold.cfg.package.fog_instructions,
                    fog_done: false,
                };
                if self.fog_capable {
                    // Admission control: the NV buffer holds a bounded
                    // backlog; beyond it new samples are discarded ("if
                    // the node lacks energy to process ... the sampled
                    // data are discarded").
                    if (*fifo_depth as usize) < MAX_PENDING {
                        cold.pending.push(pkg);
                        *fifo_depth += 1;
                    } else {
                        emit(SimEvent::PackageShed {
                            node,
                            count: 1,
                            reason: ShedReason::BufferFull,
                        });
                    }
                } else {
                    cold.outbox.push(pkg);
                }
            } else {
                emit(SimEvent::WakeFailed { node });
            }
        }
    }
}

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let system = parts.cfg.system;
    let sweep = WakeSweep {
        slot: ctx.slot,
        system,
        sampling_success: parts.cfg.sampling_success,
        fog_capable: system.is_fog_capable(),
    };
    drive(
        parts.nodes,
        &mut ctx.ledgers,
        &mut ctx.shards,
        parts.threads,
        parts.cfg.positions,
        parts.cfg.multiplex as usize,
        &mut bus,
        &sweep,
    );
}

//! Phase 2 — wake/capture: scheduled nodes pay the activation
//! threshold and capture one data package.
//!
//! A node scheduled this slot (its clone phase) wakes only if its
//! budget covers the system's activation threshold; a scheduled node
//! that cannot afford it is a *failure* (energy depletion). Awake
//! nodes capture one package (rain can spoil the sample); fog-capable
//! nodes enqueue its processing task behind a bounded NV admission
//! buffer, others ship it raw.

use super::ctx::{Package, SlotCtx, MAX_PENDING};
use super::event::{ShedReason, SimEvent};
use super::Simulator;

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let system = parts.cfg.system;
    for (i, (((node, ledger), budget), awake)) in parts
        .nodes
        .iter_mut()
        .zip(ctx.ledgers.iter_mut())
        .zip(ctx.budgets.iter_mut())
        .zip(ctx.awake.iter_mut())
        .enumerate()
    {
        let scheduled = node.schedule.wakes_at(ctx.slot) && node.rtc.is_synchronized();
        if !scheduled {
            continue;
        }
        if budget.available(&node.cap) >= system.wake_threshold() {
            budget.spend(&mut node.cap, ledger, system.wake_cost());
            *awake = true;
            bus.emit(&SimEvent::NodeWoke { node: i });
            // Capture one package (rain can spoil the sample).
            if !node.rng.chance(parts.cfg.sampling_success) {
                continue;
            }
            bus.emit(&SimEvent::PackageCaptured { node: i });
            let pkg = Package {
                origin: i,
                created: ctx.slot,
                fog_remaining: node.cfg.package.fog_instructions,
                fog_done: false,
            };
            if system.is_fog_capable() {
                // Admission control: the NV buffer holds a bounded
                // backlog; beyond it new samples are discarded ("if
                // the node lacks energy to process ... the sampled
                // data are discarded").
                if node.pending.len() < MAX_PENDING {
                    node.pending.push(pkg);
                } else {
                    bus.emit(&SimEvent::PackageShed {
                        node: i,
                        count: 1,
                        reason: ShedReason::BufferFull,
                    });
                }
            } else {
                node.outbox.push(pkg);
            }
        } else {
            bus.emit(&SimEvent::WakeFailed { node: i });
        }
    }
}

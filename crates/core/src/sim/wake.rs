//! Phase 2 — wake/capture: scheduled nodes pay the activation
//! threshold and capture one data package.
//!
//! A node scheduled this slot (its clone phase) wakes only if its
//! budget covers the system's activation threshold; a scheduled node
//! that cannot afford it is a *failure* (energy depletion). Awake
//! nodes capture one package (rain can spoil the sample); fog-capable
//! nodes enqueue its processing task behind a bounded NV admission
//! buffer, others ship it raw.
//!
//! The admission check reads the FIFO-depth column, not the queue
//! itself, so a node that stays asleep costs this sweep two column
//! loads (schedule, RTC sync bit) and nothing from its cold row.

use super::columns::{self, NodeColumns};
use super::ctx::{Package, SlotCtx, MAX_PENDING};
use super::event::{ShedReason, SimEvent};
use super::Simulator;

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let system = parts.cfg.system;
    let sampling_success = parts.cfg.sampling_success;
    let fog_capable = system.is_fog_capable();
    let direct_eff = parts.nodes.direct_eff;
    let discharge_eff = parts.nodes.discharge_eff;
    let NodeColumns {
        cap,
        rtc,
        schedule,
        fifo_depth,
        direct_left,
        awake,
        cold,
        ..
    } = &mut *parts.nodes;
    for (i, (((((((schedule, rtc), cap), direct_left), awake), fifo_depth), cold), ledger)) in
        schedule
            .iter()
            .zip(rtc.iter())
            .zip(cap.iter_mut())
            .zip(direct_left.iter_mut())
            .zip(awake.iter_mut())
            .zip(fifo_depth.iter_mut())
            .zip(cold.iter_mut())
            .zip(ctx.ledgers.iter_mut())
            .enumerate()
    {
        let scheduled = schedule.wakes_at(ctx.slot) && rtc.is_synchronized();
        if !scheduled {
            continue;
        }
        if columns::budget_available(*direct_left, discharge_eff, cap) >= system.wake_threshold() {
            columns::spend_budget(
                direct_left,
                direct_eff,
                discharge_eff,
                cap,
                ledger,
                system.wake_cost(),
            );
            *awake = true;
            bus.emit(&SimEvent::NodeWoke { node: i });
            // Capture one package (rain can spoil the sample).
            if !cold.rng.chance(sampling_success) {
                continue;
            }
            bus.emit(&SimEvent::PackageCaptured { node: i });
            let pkg = Package {
                origin: i,
                created: ctx.slot,
                fog_remaining: cold.cfg.package.fog_instructions,
                fog_done: false,
            };
            if fog_capable {
                // Admission control: the NV buffer holds a bounded
                // backlog; beyond it new samples are discarded ("if
                // the node lacks energy to process ... the sampled
                // data are discarded").
                if (*fifo_depth as usize) < MAX_PENDING {
                    cold.pending.push(pkg);
                    *fifo_depth += 1;
                } else {
                    bus.emit(&SimEvent::PackageShed {
                        node: i,
                        count: 1,
                        reason: ShedReason::BufferFull,
                    });
                }
            } else {
                cold.outbox.push(pkg);
            }
        } else {
            bus.emit(&SimEvent::WakeFailed { node: i });
        }
    }
}

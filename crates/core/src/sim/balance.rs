//! Phase 3 — balance: redistribute fog tasks among the awake
//! representatives of each chain position.
//!
//! The configured intra-chain balancer sees one representative per
//! logical position (the awake clone, if any) with its Spendthrift
//! state, reassigns the pending fog tasks, and the transfer traffic is
//! charged to the awake nodes — via the balance-credit column: the
//! per-node share is marked on every awake node, then a second sweep
//! spends marked credits in index order (the same order the old
//! participant list walked, without allocating it).
//!
//! The balancer call itself is inherently serial (it sees the whole
//! chain at once and draws from the global RNG stream); only the final
//! credit-spend sweep is element-wise, so that is the part that shards
//! when `threads > 1`.

use super::columns::{self, NodeColumns};
use super::ctx::{Package, SlotCtx};
use super::event::{RadioPurpose, SimEvent};
use super::shard::{drive, ColumnsShard, Sweep};
use super::{BalancerKind, Simulator};
use crate::balance::{ChainBalanceInput, FogTask, NodeBalanceState, RouteContext};
use neofog_types::{Energy, NodeId};

/// The balance-credit spend sweep: pays every marked share in index
/// order and clears the credit column behind itself.
struct CreditSweep;

impl Sweep for CreditSweep {
    fn sweep<E: FnMut(SimEvent)>(
        &self,
        shard: &mut ColumnsShard<'_>,
        _pkg: &mut Vec<Package>,
        mut emit: E,
    ) {
        let ColumnsShard {
            base,
            cap,
            direct_left,
            balance_credit,
            ledgers,
            direct_eff,
            discharge_eff,
            ..
        } = shard;
        for (local, (((credit, cap), direct_left), ledger)) in balance_credit
            .iter_mut()
            .zip(cap.iter_mut())
            .zip(direct_left.iter_mut())
            .zip(ledgers.iter_mut())
            .enumerate()
        {
            if *credit == Energy::ZERO {
                continue;
            }
            let share = *credit;
            *credit = Energy::ZERO;
            columns::spend_budget(direct_left, *direct_eff, *discharge_eff, cap, ledger, share);
            emit(SimEvent::RadioCharged {
                node: *base + local,
                energy: share,
                purpose: RadioPurpose::Balance,
            });
        }
    }
}

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    if !sim.cfg.system.is_fog_capable() || matches!(sim.cfg.balancer, BalancerKind::None) {
        return;
    }
    let (parts, mut bus) = sim.split();
    let cols = &mut *parts.nodes;
    // One representative per position: the awake clone (if any).
    let reps: Vec<Option<usize>> = parts
        .positions
        .iter()
        .map(|phys| phys.iter().copied().find(|&i| cols.awake[i]))
        .collect();
    let mut chain_nodes = Vec::with_capacity(parts.positions.len());
    let mut rep_map = Vec::with_capacity(parts.positions.len());
    for (pos, rep) in reps.iter().enumerate() {
        let (state, idx) = match rep {
            Some(i) => {
                let cold = &cols.cold[*i];
                let level_income = cols.income_power[*i];
                let radio = parts.cfg.node.radio;
                let tx_reserve = radio.session_cost(parts.rf)
                    + radio.packet_cost(parts.rf, cold.cfg.package.processed_bytes) * 2.0;
                let spare = columns::budget_available(
                    cols.direct_left[*i],
                    cols.discharge_eff,
                    &cols.cap[*i],
                )
                .saturating_sub(tx_reserve);
                let tasks: Vec<FogTask> = cold
                    .pending
                    .iter()
                    .enumerate()
                    .map(|(k, p)| FogTask::new(p.fog_remaining, (*i as u64) << 32 | k as u64))
                    .collect();
                (
                    NodeBalanceState {
                        node: NodeId::new(*i as u32),
                        spare_energy: spare,
                        efficiency: parts.spendthrift.efficiency(level_income),
                        // Tier capability scales execution speed
                        // (×1.0 exact on all-sensor chains).
                        throughput: parts.spendthrift.throughput(level_income)
                            * parts.caps[pos].compute_rate,
                        tasks,
                        alive: true,
                    },
                    Some(*i),
                )
            }
            None => (
                NodeBalanceState {
                    node: NodeId::new(u32::MAX),
                    spare_energy: Energy::ZERO,
                    efficiency: 0.0,
                    throughput: 0.0,
                    tasks: Vec::new(),
                    alive: false,
                },
                None,
            ),
        };
        chain_nodes.push(state);
        rep_map.push(idx);
    }
    let mut input = ChainBalanceInput { nodes: chain_nodes };
    let route = RouteContext {
        hops_to_sink: parts.route.hops_slice(),
        next_hop: parts.route.next_hop_slice(),
        tier: parts.route.tier_slice(),
        caps: parts.caps,
        raw_bytes: parts.cfg.node.package.raw_bytes,
    };
    ctx.offload.clear();
    let report = parts
        .balancer
        .balance_routed(&mut input, &route, parts.rng, &mut ctx.offload);
    bus.emit(&SimEvent::TasksMigrated {
        interrupted: report.interrupted_regions,
        moved: report.tasks_moved,
        hops: report.transfer_hops,
    });
    // Offload decisions are per logical position; report them against
    // the position's awake representative (the node that held — and
    // paid to ship — the tasks).
    for d in &ctx.offload {
        let Some(node) = rep_map.get(d.position).copied().flatten() else {
            continue;
        };
        bus.emit(&SimEvent::OffloadDecided {
            node,
            target: d.target,
            tasks: d.tasks,
            ship_energy: d.ship_energy,
        });
    }

    // Apply the assignment: rebuild each representative's pending
    // queue from the post-balance task tags (a tag names the
    // original holder and its queue index).
    let all_packages: Vec<Vec<Package>> = cols
        .cold
        .iter_mut()
        .map(|c| std::mem::take(&mut c.pending))
        .collect();
    for (pos, state) in input.nodes.iter().enumerate() {
        let Some(dest) = rep_map[pos] else { continue };
        for task in &state.tasks {
            let src = (task.tag >> 32) as usize;
            let k = (task.tag & 0xFFFF_FFFF) as usize;
            let pkg = all_packages[src][k];
            cols.cold[dest].pending.push(pkg);
        }
    }
    // Sleeping clones keep their own pending packages (they were
    // not offered to the balancer).
    for (i, packages) in all_packages.into_iter().enumerate() {
        if !cols.awake[i] {
            cols.cold[i].pending.extend(packages);
        }
    }
    // The queues were rebuilt wholesale; re-derive the depth mirror.
    cols.sync_fifo_depths();

    // Charge transfer costs: each hop moves one raw package.
    if report.transfer_hops > 0 {
        let per_hop = parts
            .cfg
            .node
            .radio
            .packet_cost(parts.rf, parts.cfg.node.package.raw_bytes)
            + parts
                .cfg
                .system
                .rx_cost(parts.rf, parts.cfg.node.package.raw_bytes);
        let participants = {
            let NodeColumns {
                awake,
                balance_credit,
                ..
            } = cols;
            let participants = awake.iter().filter(|&&a| a).count();
            if participants > 0 {
                let share = per_hop * report.transfer_hops as f64 / participants as f64;
                // Mark the share on every awake node...
                for (credit, &awake) in balance_credit.iter_mut().zip(awake.iter()) {
                    if awake {
                        *credit = share;
                    }
                }
            }
            participants
        };
        // ...then spend marked credits in index order (sharded when
        // threaded — credits are per-node, so the sweep partitions
        // cleanly). The share is charged whether or not the spend
        // lands in full — the airtime happened either way.
        if participants > 0 {
            drive(
                cols,
                &mut ctx.ledgers,
                &mut ctx.shards,
                parts.threads,
                parts.cfg.positions,
                parts.cfg.multiplex as usize,
                &mut bus,
                &CreditSweep,
            );
        }
    }
}

//! Phase 6 — slot end: bank leftovers, leak capacitors, settle
//! ledgers.
//!
//! Unspent direct income charges the capacitor (overflow is rejected),
//! capacitors self-discharge, volatile nodes lose their queues at
//! power-down, and each node's conservation ledger settles into a
//! [`SimEvent::LedgerSettled`] event for the observers to audit.

use super::ctx::SlotCtx;
use super::event::{ShedReason, SimEvent};
use super::Simulator;
use neofog_types::Energy;

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let system = parts.cfg.system;
    let slot_len = parts.cfg.slot_len;
    for (i, ((budget, node), ledger)) in ctx
        .budgets
        .iter_mut()
        .zip(parts.nodes.iter_mut())
        .zip(ctx.ledgers.iter_mut())
        .enumerate()
    {
        // Unspent direct income charges the capacitor.
        let leftover = budget.leftover_income();
        if leftover > Energy::ZERO {
            let level = node.cap.stored();
            let rejected = node.cap.charge(leftover);
            ledger.debit_loss(leftover.saturating_sub(node.cap.stored().saturating_sub(level)));
            bus.emit(&SimEvent::CapacitorOverflow { node: i, rejected });
        }
        let level = node.cap.stored();
        node.cap.leak(slot_len);
        let leaked = level.saturating_sub(node.cap.stored());
        ledger.debit_leak(leaked);
        if !system.retains_state() {
            // Volatile node: queues evaporate at power-down.
            let lost = (node.pending.len() + node.outbox.len()) as u64;
            if lost > 0 {
                bus.emit(&SimEvent::PackageShed {
                    node: i,
                    count: lost,
                    reason: ShedReason::Volatile,
                });
            }
            node.pending.clear();
            node.outbox.clear();
        }
        bus.emit(&SimEvent::CapacitorLeaked {
            node: i,
            leaked,
            stored: node.cap.stored(),
        });
        if let Some(settled) = ledger.settlement(i, node.cap.stored()) {
            bus.emit(&settled);
        }
    }
}

//! Phase 6 — slot end: bank leftovers, leak capacitors, settle
//! ledgers.
//!
//! Unspent direct income charges the capacitor (overflow is rejected),
//! capacitors self-discharge, volatile nodes lose their queues at
//! power-down, and each node's conservation ledger settles into a
//! [`SimEvent::LedgerSettled`] event for the observers to audit.
//!
//! The sweep zips the capacitor, direct-pool and FIFO-depth columns
//! against the cold rows; the metered capacitor accessors
//! (`charge_metered`, `leak_metered`) return the deltas the ledger
//! books, so each element is a single call instead of a
//! read-mutate-read sequence. Settlement is per-node too, so the
//! whole phase shards cleanly.

use super::columns;
use super::ctx::{Package, SlotCtx};
use super::event::{ShedReason, SimEvent};
use super::shard::{drive, ColumnsShard, Sweep};
use super::Simulator;
use neofog_types::{Duration, Energy};

/// The per-slot scalars the slot-end sweep closes over.
struct SlotEndSweep {
    slot_len: Duration,
    retains_state: bool,
}

impl Sweep for SlotEndSweep {
    fn sweep<E: FnMut(SimEvent)>(
        &self,
        shard: &mut ColumnsShard<'_>,
        _pkg: &mut Vec<Package>,
        mut emit: E,
    ) {
        let ColumnsShard {
            base,
            cap,
            fifo_depth,
            direct_left,
            cold,
            ledgers,
            direct_eff,
            ..
        } = shard;
        for (local, ((((cap, direct_left), fifo_depth), cold), ledger)) in cap
            .iter_mut()
            .zip(direct_left.iter_mut())
            .zip(fifo_depth.iter_mut())
            .zip(cold.iter_mut())
            .zip(ledgers.iter_mut())
            .enumerate()
        {
            let node = *base + local;
            // Unspent direct income charges the capacitor.
            let leftover = columns::leftover_income(direct_left, *direct_eff);
            if leftover > Energy::ZERO {
                let receipt = cap.charge_metered(leftover);
                ledger.debit_loss(leftover.saturating_sub(receipt.banked));
                emit(SimEvent::CapacitorOverflow {
                    node,
                    rejected: receipt.rejected,
                });
            }
            let leaked = cap.leak_metered(self.slot_len);
            ledger.debit_leak(leaked);
            if !self.retains_state {
                // Volatile node: queues evaporate at power-down.
                let lost = (cold.pending.len() + cold.outbox.len()) as u64;
                if lost > 0 {
                    emit(SimEvent::PackageShed {
                        node,
                        count: lost,
                        reason: ShedReason::Volatile,
                    });
                }
                cold.pending.clear();
                cold.outbox.clear();
                *fifo_depth = 0;
            }
            emit(SimEvent::CapacitorLeaked {
                node,
                leaked,
                stored: cap.stored(),
            });
            if let Some(settled) = ledger.settlement(node, cap.stored()) {
                emit(settled);
            }
        }
    }
}

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let sweep = SlotEndSweep {
        slot_len: parts.cfg.slot_len,
        retains_state: parts.cfg.system.retains_state(),
    };
    drive(
        parts.nodes,
        &mut ctx.ledgers,
        &mut ctx.shards,
        parts.threads,
        parts.cfg.positions,
        parts.cfg.multiplex as usize,
        &mut bus,
        &sweep,
    );
}

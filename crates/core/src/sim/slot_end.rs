//! Phase 6 — slot end: bank leftovers, leak capacitors, settle
//! ledgers.
//!
//! Unspent direct income charges the capacitor (overflow is rejected),
//! capacitors self-discharge, volatile nodes lose their queues at
//! power-down, and each node's conservation ledger settles into a
//! [`SimEvent::LedgerSettled`] event for the observers to audit.
//!
//! The sweep zips the capacitor, direct-pool and FIFO-depth columns
//! against the cold rows; the metered capacitor accessors
//! (`charge_metered`, `leak_metered`) return the deltas the ledger
//! books, so each element is a single call instead of a
//! read-mutate-read sequence.

use super::columns::{self, NodeColumns};
use super::ctx::SlotCtx;
use super::event::{ShedReason, SimEvent};
use super::Simulator;
use neofog_types::Energy;

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let system = parts.cfg.system;
    let slot_len = parts.cfg.slot_len;
    let retains_state = system.retains_state();
    let direct_eff = parts.nodes.direct_eff;
    let NodeColumns {
        cap,
        fifo_depth,
        direct_left,
        cold,
        ..
    } = &mut *parts.nodes;
    for (i, ((((cap, direct_left), fifo_depth), cold), ledger)) in cap
        .iter_mut()
        .zip(direct_left.iter_mut())
        .zip(fifo_depth.iter_mut())
        .zip(cold.iter_mut())
        .zip(ctx.ledgers.iter_mut())
        .enumerate()
    {
        // Unspent direct income charges the capacitor.
        let leftover = columns::leftover_income(direct_left, direct_eff);
        if leftover > Energy::ZERO {
            let receipt = cap.charge_metered(leftover);
            ledger.debit_loss(leftover.saturating_sub(receipt.banked));
            bus.emit(&SimEvent::CapacitorOverflow {
                node: i,
                rejected: receipt.rejected,
            });
        }
        let leaked = cap.leak_metered(slot_len);
        ledger.debit_leak(leaked);
        if !retains_state {
            // Volatile node: queues evaporate at power-down.
            let lost = (cold.pending.len() + cold.outbox.len()) as u64;
            if lost > 0 {
                bus.emit(&SimEvent::PackageShed {
                    node: i,
                    count: lost,
                    reason: ShedReason::Volatile,
                });
            }
            cold.pending.clear();
            cold.outbox.clear();
            *fifo_depth = 0;
        }
        bus.emit(&SimEvent::CapacitorLeaked {
            node: i,
            leaked,
            stored: cap.stored(),
        });
        if let Some(settled) = ledger.settlement(i, cap.stored()) {
            bus.emit(&settled);
        }
    }
}

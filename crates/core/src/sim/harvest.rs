//! Phase 1 — harvest: integrate each node's income curve into its slot
//! energy budget.
//!
//! Per node: the ambient income is read off the node's prefix-summed
//! [`EnergyCurve`](neofog_energy::EnergyCurve) — two O(1) lookups
//! instead of a walk over every trace sample the slot covers — scaled
//! by the harvester front-end; the RTC capacitor charges first
//! (charging priority) and, if it lost synchronization, attempts a
//! stored-energy resync; what remains builds the [`SlotBudget`]
//! (crate-private) — FIOS nodes get a 90 %-efficient direct pool plus
//! the capacitor, NOS nodes only the capacitor round-trip.

use super::ctx::{SlotBudget, SlotCtx};
use super::event::SimEvent;
use super::Simulator;
use neofog_types::{Energy, Power};

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let slot_len = parts.cfg.slot_len;
    let fe = parts.cfg.node.front_end;
    for (i, ((node, ledger), income_power)) in parts
        .nodes
        .iter_mut()
        .zip(ctx.ledgers.iter_mut())
        .zip(ctx.income_power.iter_mut())
        .enumerate()
    {
        let ambient = node.curve.energy_between(ctx.t0, ctx.t1);
        let mut income = ambient * node.cfg.harvester_efficiency;
        ledger.credit_harvest(income);
        *income_power =
            Power::from_milliwatts(income.as_nanojoules() / slot_len.as_micros() as f64);
        // RTC priority charging (takes only what it needs; the RTC
        // is a terminal load, so its intake books as consumed).
        let past_rtc = node.rtc.charge_with_priority(income);
        ledger.debit_consumed(income.saturating_sub(past_rtc));
        income = past_rtc;
        node.rtc.advance(slot_len);
        if !node.rtc.is_synchronized() {
            // Attempt a resynchronization with stored energy. Any
            // draw the RTC cannot bank has left the capacitor for
            // good and books as lost.
            let drawn = node.cap.discharge_up_to(Energy::from_millijoules(1.0));
            let spare = node.rtc.charge_with_priority(drawn);
            ledger.debit_consumed(drawn.saturating_sub(spare));
            ledger.debit_loss(spare);
            node.rtc.resynchronize(Energy::from_millijoules(0.5));
        }

        let budget = if fe.has_direct_channel() {
            SlotBudget {
                direct_left: income * fe.direct_efficiency(),
                direct_eff: fe.direct_efficiency(),
                discharge_eff: fe.discharge_efficiency(),
            }
        } else {
            // NOS: income goes through the capacitor first; the
            // charge path's conversion loss plus any overflow a
            // full capacitor rejects both book as lost.
            let level = node.cap.stored();
            let rejected = node.cap.charge(income);
            ledger.debit_loss(income.saturating_sub(node.cap.stored().saturating_sub(level)));
            bus.emit(&SimEvent::CapacitorOverflow { node: i, rejected });
            SlotBudget {
                direct_left: Energy::ZERO,
                direct_eff: 0.0,
                discharge_eff: fe.discharge_efficiency(),
            }
        };
        bus.emit(&SimEvent::HarvestBooked { node: i, income });
        ctx.budgets.push(budget);
    }
}

//! Phase 1 — harvest: integrate each node's income curve into its slot
//! energy budget.
//!
//! Per node: the ambient income is read off the node's prefix-summed
//! [`EnergyCurve`](neofog_energy::EnergyCurve) — two O(1) lookups
//! instead of a walk over every trace sample the slot covers — scaled
//! by the harvester front-end; the RTC capacitor charges first
//! (charging priority) and, if it lost synchronization, attempts a
//! stored-energy resync; what remains fills the `direct_left` budget
//! column — FIOS nodes get a 90 %-efficient direct pool plus the
//! capacitor, NOS nodes only the capacitor round-trip.
//!
//! The sweep zips exactly the columns it writes (capacitor, RTC,
//! direct pool, income power) against the cold rows it reads (curve,
//! config); the budget efficiencies are per-run scalars set when the
//! columns were scattered, so nothing is stored per node here. There
//! is no cross-node data flow, so the sweep runs per shard through
//! [`drive`] when `threads > 1`.

use super::ctx::{Package, SlotCtx};
use super::event::SimEvent;
use super::shard::{drive, ColumnsShard, Sweep};
use super::Simulator;
use neofog_energy::FrontEnd;
use neofog_types::{Duration, Energy, Power};

/// The per-slot scalars the harvest sweep closes over.
struct HarvestSweep {
    t0: Duration,
    t1: Duration,
    slot_len: Duration,
    fe: FrontEnd,
}

impl Sweep for HarvestSweep {
    fn sweep<E: FnMut(SimEvent)>(
        &self,
        shard: &mut ColumnsShard<'_>,
        _pkg: &mut Vec<Package>,
        mut emit: E,
    ) {
        let has_direct = self.fe.has_direct_channel();
        let ColumnsShard {
            base,
            cap,
            rtc,
            direct_left,
            income_power,
            cold,
            ledgers,
            ..
        } = shard;
        for (local, (((((cold, cap), rtc), direct_left), income_power), ledger)) in cold
            .iter_mut()
            .zip(cap.iter_mut())
            .zip(rtc.iter_mut())
            .zip(direct_left.iter_mut())
            .zip(income_power.iter_mut())
            .zip(ledgers.iter_mut())
            .enumerate()
        {
            let node = *base + local;
            let ambient = cold.curve.energy_between(self.t0, self.t1);
            let mut income = ambient * cold.cfg.harvester_efficiency;
            ledger.credit_harvest(income);
            *income_power =
                Power::from_milliwatts(income.as_nanojoules() / self.slot_len.as_micros() as f64);
            // RTC priority charging (takes only what it needs; the RTC
            // is a terminal load, so its intake books as consumed).
            let past_rtc = rtc.tick(income, self.slot_len);
            ledger.debit_consumed(income.saturating_sub(past_rtc));
            income = past_rtc;
            if !rtc.is_synchronized() {
                // Attempt a resynchronization with stored energy. Any
                // draw the RTC cannot bank has left the capacitor for
                // good and books as lost.
                let drawn = cap.discharge_up_to(Energy::from_millijoules(1.0));
                let spare = rtc.charge_with_priority(drawn);
                ledger.debit_consumed(drawn.saturating_sub(spare));
                ledger.debit_loss(spare);
                rtc.resynchronize(Energy::from_millijoules(0.5));
            }

            if has_direct {
                *direct_left = income * self.fe.direct_efficiency();
            } else {
                // NOS: income goes through the capacitor first; the
                // charge path's conversion loss plus any overflow a
                // full capacitor rejects both book as lost. The direct
                // pool column stays at the zero `begin_slot` gave it.
                let receipt = cap.charge_metered(income);
                ledger.debit_loss(income.saturating_sub(receipt.banked));
                emit(SimEvent::CapacitorOverflow {
                    node,
                    rejected: receipt.rejected,
                });
            }
            emit(SimEvent::HarvestBooked { node, income });
        }
    }
}

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let sweep = HarvestSweep {
        t0: ctx.t0,
        t1: ctx.t1,
        slot_len: parts.cfg.slot_len,
        fe: parts.cfg.node.front_end,
    };
    drive(
        parts.nodes,
        &mut ctx.ledgers,
        &mut ctx.shards,
        parts.threads,
        parts.cfg.positions,
        parts.cfg.multiplex as usize,
        &mut bus,
        &sweep,
    );
}

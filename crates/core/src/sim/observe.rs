//! The observer bus: pluggable recorders fed by [`SimEvent`]s.
//!
//! The phase functions know nothing about metrics, traces or logs —
//! they only emit events. Everything recorded about a run is an
//! implementation of [`SimObserver`] folded over the event stream:
//!
//! * [`MetricsObserver`] — the paper's counters ([`NetworkMetrics`]).
//! * [`StoredTraceObserver`] — the Figure-9 stored-energy series.
//! * [`LedgerObserver`](crate::sim::LedgerObserver) — the debug-build
//!   conservation checker.
//! * [`EventLogObserver`] — a deterministic JSONL event log for replay
//!   and slot-by-slot diffing.
//!
//! Additional observers compose through the [`Observers`] fan-out and
//! [`Simulator::attach_observer`](crate::sim::Simulator::attach_observer).

use super::event::SimEvent;
use crate::balance::OffloadTarget;
use crate::metrics::NetworkMetrics;
use neofog_types::{NeoFogError, Result};
use std::io::Write;

/// A recorder fed every [`SimEvent`] in emission order.
///
/// Observers must not influence the simulation: they receive shared
/// references to events and have no channel back into the slot loop,
/// so attaching or removing one can never change a `SimResult`.
pub trait SimObserver {
    /// Called once per event, in deterministic emission order.
    fn on_event(&mut self, event: &SimEvent);

    /// Called once after the final slot, before results are assembled.
    fn on_finish(&mut self) {}
}

/// Fan-out composition of boxed observers (delivery in push order).
#[derive(Default)]
pub struct Observers {
    inner: Vec<Box<dyn SimObserver>>,
}

impl Observers {
    /// Adds an observer to the end of the delivery order.
    pub fn push(&mut self, observer: Box<dyn SimObserver>) {
        self.inner.push(observer);
    }

    /// Number of attached observers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no observer is attached (the bus fast-path).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl SimObserver for Observers {
    fn on_event(&mut self, event: &SimEvent) {
        for obs in &mut self.inner {
            obs.on_event(event);
        }
    }

    fn on_finish(&mut self) {
        for obs in &mut self.inner {
            obs.on_finish();
        }
    }
}

impl std::fmt::Debug for Observers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observers")
            .field("len", &self.inner.len())
            .finish()
    }
}

/// The bus a phase emits through: the always-on recorders (metrics,
/// optional trace) plus the pluggable [`Observers`] fan-out, split off
/// the simulator so phases can hold `&mut` node state alongside it.
pub(crate) struct EventBus<'a> {
    pub(crate) metrics: &'a mut MetricsObserver,
    pub(crate) trace: Option<&'a mut StoredTraceObserver>,
    pub(crate) extra: &'a mut Observers,
}

impl EventBus<'_> {
    /// Delivers one event to every recorder, in a fixed order.
    pub(crate) fn emit(&mut self, event: &SimEvent) {
        self.metrics.on_event(event);
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.on_event(event);
        }
        self.extra.on_event(event);
    }
}

/// Folds the event stream into the paper's [`NetworkMetrics`].
///
/// This is the sole writer of the counters a
/// [`SimResult`](crate::sim::SimResult) reports; it applies each event
/// to exactly
/// the field the pre-pipeline slot loop mutated at the same program
/// point, so the fold reproduces the original metrics bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsObserver {
    metrics: NetworkMetrics,
}

impl MetricsObserver {
    /// A fresh fold over `physical_nodes` per-node counter slots.
    #[must_use]
    pub fn new(physical_nodes: usize) -> Self {
        MetricsObserver {
            metrics: NetworkMetrics::new(physical_nodes),
        }
    }

    /// Read access to the counters accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> &NetworkMetrics {
        &self.metrics
    }

    /// Consumes the fold into the final counters.
    #[must_use]
    pub fn into_metrics(self) -> NetworkMetrics {
        self.metrics
    }
}

impl SimObserver for MetricsObserver {
    fn on_event(&mut self, event: &SimEvent) {
        match *event {
            SimEvent::HarvestBooked { node, income } => {
                self.metrics.nodes[node].harvested += income;
            }
            SimEvent::CapacitorOverflow { node, rejected } => {
                self.metrics.nodes[node].rejected += rejected;
            }
            SimEvent::NodeWoke { node } => self.metrics.nodes[node].wakeups += 1,
            SimEvent::WakeFailed { node } => self.metrics.nodes[node].failures += 1,
            SimEvent::PackageCaptured { node } => self.metrics.nodes[node].captured += 1,
            SimEvent::PackageShed { node, count, .. } => {
                self.metrics.nodes[node].dropped += count;
            }
            SimEvent::TasksMigrated {
                interrupted,
                moved,
                hops,
            } => {
                self.metrics.balance_interruptions += interrupted;
                self.metrics.balance_tasks_moved += moved;
                self.metrics.balance_transfer_hops += hops;
            }
            SimEvent::OffloadDecided { target, tasks, .. } => {
                self.metrics.offload_decisions += 1;
                if !matches!(target, OffloadTarget::Local) {
                    self.metrics.offload_shipped_tasks += tasks;
                }
            }
            SimEvent::RadioCharged { node, energy, .. } => {
                self.metrics.nodes[node].radio_energy += energy;
            }
            SimEvent::FogProgressed { node, energy, .. } => {
                self.metrics.nodes[node].compute_energy += energy;
            }
            SimEvent::FogCompleted { node } => self.metrics.nodes[node].tasks_executed += 1,
            SimEvent::PackageDelivered { origin, fog_done } => {
                if fog_done {
                    self.metrics.nodes[origin].delivered_fog += 1;
                } else {
                    self.metrics.nodes[origin].delivered_cloud += 1;
                }
            }
            SimEvent::PackageLost { origin } => self.metrics.nodes[origin].dropped += 1,
            SimEvent::SlotBegan { .. }
            | SimEvent::SlotEnded { .. }
            | SimEvent::CapacitorLeaked { .. }
            | SimEvent::LedgerSettled { .. } => {}
        }
    }
}

/// Records the per-slot stored-energy series (Figure 9) from the
/// [`SimEvent::CapacitorLeaked`] event each node emits at slot end.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTraceObserver {
    series: Vec<Vec<f32>>,
}

impl StoredTraceObserver {
    /// A fresh trace for `physical_nodes` nodes.
    #[must_use]
    pub fn new(physical_nodes: usize) -> Self {
        StoredTraceObserver {
            series: vec![Vec::new(); physical_nodes],
        }
    }

    /// Moves the recorded series into the per-node metrics.
    pub fn merge_into(self, metrics: &mut NetworkMetrics) {
        for (node, series) in metrics.nodes.iter_mut().zip(self.series) {
            node.stored_series = series;
        }
    }
}

impl SimObserver for StoredTraceObserver {
    fn on_event(&mut self, event: &SimEvent) {
        if let SimEvent::CapacitorLeaked { node, stored, .. } = *event {
            if let Some(series) = self.series.get_mut(node) {
                series.push(stored.as_millijoules() as f32);
            }
        }
    }
}

/// Streams every event as one JSON object per line (JSONL).
///
/// The format is deliberately dependency-free and deterministic: keys
/// appear in a fixed order, energies are printed in nanojoules with
/// Rust's shortest-roundtrip `f64` formatting, and no wall-clock data
/// is ever written — so the same `SimConfig` and seed produce a
/// byte-identical log, and two logs can be diffed slot-by-slot.
///
/// Note that [`SimEvent::LedgerSettled`] lines appear in debug builds
/// only (the conservation ledger compiles away in release), so logs
/// should be diffed across runs of the same build profile.
pub struct EventLogObserver {
    out: Box<dyn Write>,
    slot: u64,
    failed: bool,
}

impl EventLogObserver {
    /// Opens (creates or truncates) a log file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::InvalidConfig`] when the file cannot be
    /// created.
    pub fn create(path: &str) -> Result<Self> {
        let file = std::fs::File::create(path).map_err(|e| {
            NeoFogError::invalid_config(format!("cannot create event log {path}: {e}"))
        })?;
        Ok(Self::from_writer(Box::new(std::io::BufWriter::new(file))))
    }

    /// Streams to an arbitrary writer (used by tests to capture bytes).
    #[must_use]
    pub fn from_writer(out: Box<dyn Write>) -> Self {
        EventLogObserver {
            out,
            slot: 0,
            failed: false,
        }
    }

    /// Whether a write failed at some point (the log is then partial;
    /// the simulation itself is unaffected).
    #[must_use]
    pub fn is_failed(&self) -> bool {
        self.failed
    }
}

impl SimObserver for EventLogObserver {
    fn on_event(&mut self, event: &SimEvent) {
        if self.failed {
            return;
        }
        if let SimEvent::SlotBegan { slot } = *event {
            self.slot = slot;
        }
        let line = render_jsonl(self.slot, event);
        if self.out.write_all(line.as_bytes()).is_err() {
            self.failed = true;
        }
    }

    fn on_finish(&mut self) {
        if self.out.flush().is_err() {
            self.failed = true;
        }
    }
}

impl std::fmt::Debug for EventLogObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLogObserver")
            .field("slot", &self.slot)
            .field("failed", &self.failed)
            .finish()
    }
}

/// Renders one event as a JSONL line (trailing `\n` included). Keys:
/// `slot` and `kind` first, then the event's own fields in declaration
/// order; energies carry an `_nj` suffix (nanojoules).
#[must_use]
pub fn render_jsonl(slot: u64, event: &SimEvent) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(96);
    // String formatting into a String cannot fail; `write!` only
    // returns Err when the sink does.
    let _ = write!(s, "{{\"slot\":{slot},\"kind\":\"{}\"", event.kind());
    match *event {
        SimEvent::SlotBegan { .. } | SimEvent::SlotEnded { .. } => {}
        SimEvent::HarvestBooked { node, income } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"income_nj\":{}",
                income.as_nanojoules()
            );
        }
        SimEvent::CapacitorOverflow { node, rejected } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"rejected_nj\":{}",
                rejected.as_nanojoules()
            );
        }
        SimEvent::NodeWoke { node }
        | SimEvent::WakeFailed { node }
        | SimEvent::PackageCaptured { node }
        | SimEvent::FogCompleted { node } => {
            let _ = write!(s, ",\"node\":{node}");
        }
        SimEvent::PackageShed {
            node,
            count,
            reason,
        } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"count\":{count},\"reason\":\"{}\"",
                reason.label()
            );
        }
        SimEvent::TasksMigrated {
            interrupted,
            moved,
            hops,
        } => {
            let _ = write!(
                s,
                ",\"interrupted\":{interrupted},\"moved\":{moved},\"hops\":{hops}"
            );
        }
        SimEvent::OffloadDecided {
            node,
            target,
            tasks,
            ship_energy,
        } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"target\":\"{}\",\"tasks\":{tasks},\"ship_energy_nj\":{}",
                target.label(),
                ship_energy.as_nanojoules()
            );
        }
        SimEvent::RadioCharged {
            node,
            energy,
            purpose,
        } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"energy_nj\":{},\"purpose\":\"{}\"",
                energy.as_nanojoules(),
                purpose.label()
            );
        }
        SimEvent::FogProgressed {
            node,
            instructions,
            energy,
        } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"instructions\":{instructions},\"energy_nj\":{}",
                energy.as_nanojoules()
            );
        }
        SimEvent::PackageDelivered { origin, fog_done } => {
            let _ = write!(s, ",\"origin\":{origin},\"fog_done\":{fog_done}");
        }
        SimEvent::PackageLost { origin } => {
            let _ = write!(s, ",\"origin\":{origin}");
        }
        SimEvent::CapacitorLeaked {
            node,
            leaked,
            stored,
        } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"leaked_nj\":{},\"stored_nj\":{}",
                leaked.as_nanojoules(),
                stored.as_nanojoules()
            );
        }
        SimEvent::LedgerSettled {
            node,
            stored_before,
            harvested,
            consumed,
            leaked,
            lost,
            stored_after,
        } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"stored_before_nj\":{},\"harvested_nj\":{},\
                 \"consumed_nj\":{},\"leaked_nj\":{},\"lost_nj\":{},\"stored_after_nj\":{}",
                stored_before.as_nanojoules(),
                harvested.as_nanojoules(),
                consumed.as_nanojoules(),
                leaked.as_nanojoules(),
                lost.as_nanojoules(),
                stored_after.as_nanojoules()
            );
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::event::RadioPurpose;
    use neofog_types::Energy;

    #[test]
    fn jsonl_lines_are_wellformed() {
        let line = render_jsonl(
            7,
            &SimEvent::RadioCharged {
                node: 3,
                energy: Energy::from_nanojoules(1.5),
                purpose: RadioPurpose::Session,
            },
        );
        assert_eq!(
            line,
            "{\"slot\":7,\"kind\":\"radio_charged\",\"node\":3,\"energy_nj\":1.5,\
             \"purpose\":\"session\"}\n"
        );
    }

    #[test]
    fn metrics_fold_applies_counters() {
        let mut obs = MetricsObserver::new(2);
        obs.on_event(&SimEvent::NodeWoke { node: 1 });
        obs.on_event(&SimEvent::PackageDelivered {
            origin: 0,
            fog_done: true,
        });
        obs.on_event(&SimEvent::HarvestBooked {
            node: 1,
            income: Energy::from_nanojoules(42.0),
        });
        let m = obs.into_metrics();
        assert_eq!(m.nodes[1].wakeups, 1);
        assert_eq!(m.nodes[0].delivered_fog, 1);
        assert_eq!(m.nodes[1].harvested, Energy::from_nanojoules(42.0));
    }

    #[test]
    fn event_log_tracks_slot_and_streams() {
        struct Shared(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut obs = EventLogObserver::from_writer(Box::new(Shared(sink.clone())));
        obs.on_event(&SimEvent::SlotBegan { slot: 5 });
        obs.on_event(&SimEvent::NodeWoke { node: 0 });
        obs.on_finish();
        let text = String::from_utf8(sink.borrow().clone()).expect("utf8");
        assert_eq!(
            text,
            "{\"slot\":5,\"kind\":\"slot_began\"}\n{\"slot\":5,\"kind\":\"node_woke\",\"node\":0}\n"
        );
        assert!(!obs.is_failed());
    }

    #[test]
    fn observers_fan_out_in_push_order() {
        struct Counter(std::rc::Rc<std::cell::RefCell<u32>>);
        impl SimObserver for Counter {
            fn on_event(&mut self, _event: &SimEvent) {
                *self.0.borrow_mut() += 1;
            }
        }
        let count = std::rc::Rc::new(std::cell::RefCell::new(0));
        let mut fan = Observers::default();
        assert!(fan.is_empty());
        fan.push(Box::new(Counter(count.clone())));
        fan.push(Box::new(Counter(count.clone())));
        assert_eq!(fan.len(), 2);
        fan.on_event(&SimEvent::SlotBegan { slot: 0 });
        assert_eq!(*count.borrow(), 2);
    }
}

//! Struct-of-arrays node state: the columnar substrate the slot
//! kernel sweeps over.
//!
//! The phase functions are linear passes over every physical node, and
//! at fleet scale (10⁵–10⁶ nodes per chain) the array-of-structs
//! [`NodeSim`] layout made each pass a pointer-chase: harvesting
//! touched a capacitor, an RTC, a curve and two queues per node even
//! though it only *needed* the capacitor level and the curve. This
//! module splits that state by temperature:
//!
//! * **Hot columns** — one `Vec` per field the sweeps read every slot:
//!   capacitor, RTC, schedule, chain position, NV FIFO depth, the
//!   per-slot direct pool, wake flags, income powers and balance
//!   credits. A phase that needs three fields walks three dense
//!   arrays; everything else stays out of cache.
//! * **Cold rows** — [`NodeCold`]: the node config, the prefix-summed
//!   energy curve, the package queues and the RNG stream. These are
//!   touched only when a node actually wakes, computes or transmits,
//!   so they stay row-oriented and are reached through [`NodeView`].
//!
//! The per-slot energy budget arithmetic that used to live on
//! `SlotBudget` is preserved *verbatim* as the free functions
//! [`budget_available`], [`spend_budget`] and [`leftover_income`]
//! (identical operation order, so event logs stay bit-identical to the
//! row-oriented pipeline — `tests/columns_goldens.rs` pins that). The
//! front-end efficiencies they take are per-*run* scalars on
//! [`NodeColumns`], not per-node columns: every node shares the same
//! `NodeConfig`, so storing them per node would be n copies of two
//! constants.
//!
//! Balance credits are a column (not a scratch `Vec<usize>` of
//! participant indices, as the balance phase used to allocate) so the
//! transfer-cost charging is itself a linear sweep: mark the share on
//! every awake node, then spend marked credits in index order —
//! allocation-free and in the same order the participant list gave.

use super::ctx::{NodeSim, Package};
use super::ledger::EnergyLedger;
use crate::node::{NodeCapabilities, NodeConfig};
use neofog_energy::{EnergyCurve, FrontEnd, Rtc, SuperCap};
use neofog_net::slots::SlotSchedule;
use neofog_types::{Energy, Power, SimRng};

/// Rarely-touched per-node state, reached only when a node is active.
#[cfg_attr(test, derive(Debug, Clone, PartialEq))]
pub(crate) struct NodeCold {
    /// Node design parameters (identical across the fleet).
    pub(crate) cfg: NodeConfig,
    /// Tier-derived radio/compute capability row (varies by tier, not
    /// per node, so it is cold: read only in compute and balance).
    pub(crate) caps: NodeCapabilities,
    /// Prefix-summed income curve (O(1) per-slot integration).
    pub(crate) curve: EnergyCurve,
    /// Packages awaiting fog processing (fog systems only).
    pub(crate) pending: Vec<Package>,
    /// Packages ready for transmission.
    pub(crate) outbox: Vec<Package>,
    /// The node's private RNG stream.
    pub(crate) rng: SimRng,
}

/// All per-node state, columnar for the hot fields.
///
/// Indices are physical node indices, identical to the old
/// `Vec<NodeSim>` order (and to [`Simulator::new`]'s construction
/// order), so every event keeps its node id.
///
/// [`Simulator::new`]: super::Simulator::new
pub(crate) struct NodeColumns {
    // --- durable hot columns (persist across slots) ---
    /// Main super-capacitor per node.
    pub(crate) cap: Vec<SuperCap>,
    /// RTC capacitor per node.
    pub(crate) rtc: Vec<Rtc>,
    /// Wake schedule cursor per node.
    pub(crate) schedule: Vec<SlotSchedule>,
    /// Logical chain position per node.
    pub(crate) position: Vec<usize>,
    /// Route-plan hop count from each node's position to the sink
    /// (equals `position` on chains; the transmit sweep reads it for
    /// session/packet hop pricing).
    pub(crate) hops_to_sink: Vec<u32>,
    /// NV FIFO backlog (`cold[i].pending.len()`), mirrored here so
    /// admission checks and empty-queue skips never touch a cold row.
    pub(crate) fifo_depth: Vec<u32>,
    // --- per-slot hot columns (reset by `begin_slot`) ---
    /// Unspent direct-channel pool (the `SlotBudget::direct_left` of
    /// the row pipeline; the harvest phase fills it).
    pub(crate) direct_left: Vec<Energy>,
    /// Wake flags (set by the wake phase; absorbed from `SlotCtx`).
    pub(crate) awake: Vec<bool>,
    /// Mean income power over the slot, pre-RTC (harvest fills it).
    pub(crate) income_power: Vec<Power>,
    /// Balance-transfer shares marked on awake nodes, spent in index
    /// order by the balance phase's charging sweep.
    pub(crate) balance_credit: Vec<Energy>,
    // --- per-run scalars ---
    /// Direct-channel efficiency (0.0 on systems without one); shared
    /// by every node, so a scalar rather than a column.
    pub(crate) direct_eff: f64,
    /// Capacitor discharge-regulator efficiency (shared).
    pub(crate) discharge_eff: f64,
    // --- cold rows ---
    /// Row-oriented cold state, indexed like the columns.
    pub(crate) cold: Vec<NodeCold>,
}

/// A row lens over one node: disjoint `&mut`s into the columns plus
/// the cold row, so phase code that works a single node (compute,
/// transmit) reads like the row-oriented pipeline it replaced.
///
/// The budget pieces are separate fields (not a sub-struct) on
/// purpose: the compute phase holds a borrow of `pending`'s head
/// package across `spend` calls, which is only legal because
/// `direct_left`/`cap` are sibling fields the borrow checker can split
/// (`&mut *view.direct_left` while `view.pending`'s head is live).
pub(crate) struct NodeView<'a> {
    /// Node design parameters.
    pub(crate) cfg: &'a NodeConfig,
    /// Main super-capacitor.
    pub(crate) cap: &'a mut SuperCap,
    /// Fog-processing queue.
    pub(crate) pending: &'a mut Vec<Package>,
    /// Transmission queue.
    pub(crate) outbox: &'a mut Vec<Package>,
    /// Private RNG stream.
    pub(crate) rng: &'a mut SimRng,
    /// Mirrored `pending.len()`; keep in sync on push/pop.
    pub(crate) fifo_depth: &'a mut u32,
    /// Unspent direct pool.
    pub(crate) direct_left: &'a mut Energy,
    /// Logical chain position.
    pub(crate) position: usize,
    /// Route-plan hop count to the sink.
    pub(crate) hops_to_sink: u32,
    /// Tier-derived capability row.
    pub(crate) caps: NodeCapabilities,
    /// Mean income power this slot.
    pub(crate) income_power: Power,
    /// Direct-channel efficiency (per-run scalar).
    pub(crate) direct_eff: f64,
    /// Discharge-regulator efficiency (per-run scalar).
    pub(crate) discharge_eff: f64,
}

impl NodeView<'_> {
    /// Spendable energy this slot (see [`budget_available`]).
    pub(crate) fn available(&self) -> Energy {
        budget_available(*self.direct_left, self.discharge_eff, self.cap)
    }

    /// Spends `amount` at the load (see [`spend_budget`]).
    pub(crate) fn spend(&mut self, ledger: &mut EnergyLedger, amount: Energy) -> bool {
        spend_budget(
            &mut *self.direct_left,
            self.direct_eff,
            self.discharge_eff,
            &mut *self.cap,
            ledger,
            amount,
        )
    }
}

/// Spendable energy: the direct pool plus the capacitor behind the
/// discharge regulator. Identical to `SlotBudget::available`.
pub(crate) fn budget_available(direct_left: Energy, discharge_eff: f64, cap: &SuperCap) -> Energy {
    direct_left + cap.stored() * discharge_eff
}

/// Spends `amount` (at the load), direct pool first, booking the
/// delivery and both channels' conversion losses in the ledger.
/// Returns false (spending nothing) if unaffordable. Identical
/// operation order to `SlotBudget::spend`.
pub(crate) fn spend_budget(
    direct_left: &mut Energy,
    direct_eff: f64,
    discharge_eff: f64,
    cap: &mut SuperCap,
    ledger: &mut EnergyLedger,
    amount: Energy,
) -> bool {
    if budget_available(*direct_left, discharge_eff, cap) < amount {
        return false;
    }
    let from_direct = amount.min(*direct_left);
    *direct_left -= from_direct;
    if direct_eff > 0.0 && from_direct > Energy::ZERO {
        // The direct channel is lossy at the point of use: raw
        // income `from_direct / eff` delivered only `from_direct`.
        ledger.debit_loss(from_direct / direct_eff - from_direct);
    }
    let rest = amount - from_direct;
    if rest > Energy::ZERO {
        let gross = rest / discharge_eff;
        // Floating-point slack: available() said yes.
        let drawn = cap.discharge_up_to(gross);
        debug_assert!(drawn >= gross * 0.999);
        ledger.debit_loss(drawn.saturating_sub(rest));
    }
    ledger.debit_consumed(amount);
    true
}

/// Drains the direct pool, returning it converted back to raw income.
/// Identical to `SlotBudget::leftover_income`.
pub(crate) fn leftover_income(direct_left: &mut Energy, direct_eff: f64) -> Energy {
    let left = *direct_left;
    *direct_left = Energy::ZERO;
    if direct_eff > 0.0 {
        left / direct_eff
    } else {
        left
    }
}

impl NodeColumns {
    /// Splits row-oriented node state into columns. `fe` is the fleet's
    /// shared front-end (every node has the same `NodeConfig`), which
    /// fixes the per-run budget efficiencies.
    pub(crate) fn scatter(rows: Vec<NodeSim>, fe: FrontEnd) -> NodeColumns {
        let n = rows.len();
        let mut cols = NodeColumns {
            cap: Vec::with_capacity(n),
            rtc: Vec::with_capacity(n),
            schedule: Vec::with_capacity(n),
            position: Vec::with_capacity(n),
            hops_to_sink: Vec::with_capacity(n),
            fifo_depth: Vec::with_capacity(n),
            direct_left: vec![Energy::ZERO; n],
            awake: vec![false; n],
            income_power: vec![Power::ZERO; n],
            balance_credit: vec![Energy::ZERO; n],
            direct_eff: if fe.has_direct_channel() {
                fe.direct_efficiency()
            } else {
                0.0
            },
            discharge_eff: fe.discharge_efficiency(),
            cold: Vec::with_capacity(n),
        };
        for row in rows {
            cols.cap.push(row.cap);
            cols.rtc.push(row.rtc);
            cols.schedule.push(row.schedule);
            cols.position.push(row.position);
            cols.hops_to_sink.push(row.hops_to_sink);
            cols.fifo_depth.push(row.pending.len() as u32);
            cols.cold.push(NodeCold {
                cfg: row.cfg,
                caps: row.caps,
                curve: row.curve,
                pending: row.pending,
                outbox: row.outbox,
                rng: row.rng,
            });
        }
        cols
    }

    /// Rebuilds the row-oriented view — the inverse of
    /// [`scatter`](NodeColumns::scatter). Test-only: the round-trip
    /// property test asserts the split is lossless.
    #[cfg(test)]
    pub(crate) fn gather(self) -> Vec<NodeSim> {
        let NodeColumns {
            cap,
            rtc,
            schedule,
            position,
            hops_to_sink,
            cold,
            ..
        } = self;
        cap.into_iter()
            .zip(rtc)
            .zip(schedule)
            .zip(position)
            .zip(hops_to_sink)
            .zip(cold)
            .map(
                |(((((cap, rtc), schedule), position), hops_to_sink), cold)| NodeSim {
                    cfg: cold.cfg,
                    cap,
                    rtc,
                    curve: cold.curve,
                    schedule,
                    position,
                    hops_to_sink,
                    caps: cold.caps,
                    pending: cold.pending,
                    outbox: cold.outbox,
                    rng: cold.rng,
                },
            )
            .collect()
    }

    /// Number of physical nodes.
    pub(crate) fn len(&self) -> usize {
        self.cold.len()
    }

    /// Resets the per-slot columns in place (capacity survives; the
    /// steady-state loop allocates nothing here).
    pub(crate) fn begin_slot(&mut self) {
        self.direct_left.fill(Energy::ZERO);
        self.awake.fill(false);
        self.income_power.fill(Power::ZERO);
        self.balance_credit.fill(Energy::ZERO);
    }

    /// Re-derives every FIFO depth from its queue — one linear sweep,
    /// used after the balance phase rebuilds the pending queues
    /// wholesale.
    pub(crate) fn sync_fifo_depths(&mut self) {
        for (depth, cold) in self.fifo_depth.iter_mut().zip(self.cold.iter()) {
            *depth = cold.pending.len() as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SystemKind;
    use neofog_energy::PowerTrace;
    use neofog_types::Duration;
    use proptest::prelude::*;

    /// One row with every field carrying node-distinct state, so a
    /// field dropped or cross-wired by scatter/gather shows up.
    fn row(i: usize, stored_mj: f64, pend: usize, out: usize, seed: u64, pos: usize) -> NodeSim {
        let trace = PowerTrace::constant(
            Power::from_milliwatts(0.5 + i as f64),
            Duration::from_secs(60),
            Duration::from_secs(1),
        );
        let mut rtc = Rtc::new(Energy::from_millijoules(5.0), Power::from_microwatts(2.0));
        // Vary the RTC level (and possibly its sync state) per node.
        rtc.elapse(Duration::from_secs(seed % 7));
        let mut rng = SimRng::seed_from(seed);
        let pkg = |k: usize, done: bool| Package {
            origin: i,
            created: k as u64,
            fog_remaining: if done { 0 } else { 1 + k as u64 * 17 },
            fog_done: done,
        };
        NodeSim {
            cfg: NodeConfig::paper_default(SystemKind::FiosNeoFog),
            cap: SuperCap::new(Energy::from_millijoules(100.0))
                .with_charge_efficiency(0.65)
                .with_initial(Energy::from_millijoules(stored_mj)),
            rtc,
            curve: EnergyCurve::new(trace),
            schedule: SlotSchedule::new(3, (i % 3) as u32),
            position: pos,
            hops_to_sink: pos as u32,
            caps: crate::node::TierCapabilities::paper_default().sensor,
            pending: (0..pend).map(|k| pkg(k, false)).collect(),
            outbox: (0..out).map(|k| pkg(k, k % 2 == 0)).collect(),
            rng: rng.fork(i as u64),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// scatter → gather is lossless: every field of every row
        /// survives the columnar split bit-for-bit.
        #[test]
        fn scatter_gather_round_trips(
            specs in prop::collection::vec(
                (0.0..100.0f64, 0usize..8, 0usize..6, any::<u64>(), 0usize..10),
                1..24,
            )
        ) {
            let rows: Vec<NodeSim> = specs
                .iter()
                .enumerate()
                .map(|(i, &(mj, p, o, seed, pos))| row(i, mj, p, o, seed, pos))
                .collect();
            let reference: Vec<NodeSim> = specs
                .iter()
                .enumerate()
                .map(|(i, &(mj, p, o, seed, pos))| row(i, mj, p, o, seed, pos))
                .collect();
            let fe = SystemKind::FiosNeoFog.front_end();
            let cols = NodeColumns::scatter(rows, fe);
            // The FIFO-depth mirror is established by the split itself.
            for (depth, cold) in cols.fifo_depth.iter().zip(cols.cold.iter()) {
                prop_assert_eq!(*depth as usize, cold.pending.len());
            }
            let back = cols.gather();
            prop_assert_eq!(back, reference);
        }
    }

    #[test]
    fn budget_math_matches_the_row_pipeline() {
        // A FIOS-style budget: direct pool plus capacitor.
        let mut cap = SuperCap::new(Energy::from_millijoules(10.0))
            .with_initial(Energy::from_millijoules(4.0));
        let mut direct = Energy::from_millijoules(2.0);
        let (d_eff, c_eff) = (0.9, 0.8);
        let mut ledger = EnergyLedger::open(cap.stored());
        let avail = budget_available(direct, c_eff, &cap);
        assert!((avail.as_millijoules() - (2.0 + 4.0 * 0.8)).abs() < 1e-9);
        // Spend beyond the direct pool: remainder is drawn through the
        // discharge regulator at 1/0.8 gross.
        assert!(spend_budget(
            &mut direct,
            d_eff,
            c_eff,
            &mut cap,
            &mut ledger,
            Energy::from_millijoules(3.0),
        ));
        assert_eq!(direct, Energy::ZERO);
        assert!((cap.stored().as_millijoules() - (4.0 - 1.0 / 0.8)).abs() < 1e-9);
        // Unaffordable spends must not touch anything.
        let before = cap.stored();
        assert!(!spend_budget(
            &mut direct,
            d_eff,
            c_eff,
            &mut cap,
            &mut ledger,
            Energy::from_millijoules(100.0),
        ));
        assert_eq!(cap.stored(), before);
        // NOS leftover (no direct channel) passes through unconverted.
        let mut none = Energy::ZERO;
        assert_eq!(leftover_income(&mut none, 0.0), Energy::ZERO);
        let mut left = Energy::from_millijoules(0.9);
        let raw = leftover_income(&mut left, 0.9);
        assert!((raw.as_millijoules() - 1.0).abs() < 1e-9);
        assert_eq!(left, Energy::ZERO);
    }
}

//! Phase 5 — transmit: ship outboxes into the chain mesh.
//!
//! A node with ready packages opens a radio session (531 ms software
//! init / 33 ms NVM restore / 1.9 ms NVRF start depending on the
//! system) and ships packages processed-first; the MAC layer relays
//! transparently (§2.3), so delivery succeeds with the measured
//! per-hop probability compounded over the hop count, and awake
//! intermediate nodes are charged forwarding airtime.
//!
//! Relay duty is accumulated as a *difference array*: each packet
//! marks its byte count at its source position (one store), and a
//! single sweep over the route plan in decreasing-hop order (children
//! before parents) turns the marks into per-position duty — every
//! position relays exactly the bytes sourced at the positions that
//! route through it. On a chain the sweep order is `[n-1, …, 0]` and
//! each position has one child, so the sweep *is* the reverse
//! suffix-sum of the row pipeline: the same `u64` additions in the
//! same order, bit-identical charged duties. The row pipeline walked
//! `forward_bytes[0..pos]` per packet, which made a full-chain slot
//! O(positions²); the sweep is O(positions) on any topology.
//!
//! # Sharding
//!
//! The phase runs in three rounds when `threads > 1`:
//!
//! 1. **Send** — per-shard sweep. The `forward_bytes[position]` marks
//!    are the only per-position writes, and shard boundaries are
//!    position-aligned, so each shard owns a disjoint
//!    `forward_bytes` segment (`chunks_mut`). Each shard also totals
//!    its segment into [`ShardScratch::fold_total`] for round 2.
//! 2. **Fold** — on a chain, the suffix-sum distributes: shard `k`'s
//!    duties equal its local reverse suffix-sum plus a carry (the
//!    total bytes sourced by shards `k+1..`), so the coordinator
//!    combines the per-shard totals in fixed (descending-shard) order
//!    into carries — `u64` addition is associative and exact, so the
//!    duties are bit-identical to the serial sweep — and the apply
//!    pass forks again. Non-chain topologies keep the serial
//!    O(positions) route-plan fold: it is not the bottleneck and its
//!    child-order would need per-shard O(positions) scratch to split.
//! 3. **Relay duty** — per-shard sweep over positions; each
//!    position's awake representative lives in the shard that owns
//!    the position, so the charge writes stay shard-local.
//!
//! Events are spliced after round 1 and again after round 3, which
//! reproduces the serial sequence: all session/packet events in node
//! order, then all relay charges in position order.

use super::ctx::{Package, SlotCtx};
use super::event::{RadioPurpose, SimEvent};
use super::shard::{full, pos_per_shard, splice, ColumnsShard, ShardIter, ShardScratch};
use super::Simulator;
use crate::node::RadioControl;
use crate::runner::fork::fork_join;
use neofog_rf::{LossModel, RfTimings};
use neofog_types::{Duration, Energy};

/// The per-run scalars the send sweep closes over.
struct SendSweep<'a> {
    radio: RadioControl,
    session: Energy,
    rf: &'a RfTimings,
    loss: &'a LossModel,
}

impl SendSweep<'_> {
    /// Ships every awake node's outbox, marking relay bytes into the
    /// shard's `forward_bytes` segment (`fwd[position - pos_base]`).
    fn sweep<E: FnMut(SimEvent)>(
        &self,
        shard: &mut ColumnsShard<'_>,
        pkg: &mut Vec<Package>,
        fwd: &mut [u64],
        mut emit: E,
    ) {
        for local in 0..shard.len() {
            if !shard.awake[local] {
                continue;
            }
            let node = shard.base + local;
            let pos_base = shard.pos_base;
            let (mut view, ledger) = shard.view_ledger(local);
            if view.outbox.is_empty() {
                continue;
            }
            let local_pos = view.position - pos_base;
            // Processed packages first: smaller and more valuable. A
            // stable two-pass partition through the package scratch
            // keeps the relative order `sort_by_key` gave without its
            // potential temporary allocation.
            pkg.clear();
            pkg.extend(view.outbox.iter().filter(|p| p.fog_done));
            pkg.extend(view.outbox.iter().filter(|p| !p.fog_done));
            view.outbox.clear();
            view.outbox.extend_from_slice(pkg);
            // Open the session only when the first packet is payable
            // too — bringing the radio up and then browning out before
            // anything is sent would waste the whole session.
            let first = view.outbox[0];
            let first_bytes = if first.fog_done {
                view.cfg.package.processed_bytes
            } else {
                view.cfg.package.raw_bytes
            };
            let first_cost = self.radio.packet_cost(self.rf, first_bytes);
            if view.available() < self.session + first_cost {
                continue;
            }
            if !view.spend(ledger, self.session) {
                continue;
            }
            emit(SimEvent::RadioCharged {
                node,
                energy: self.session,
                purpose: RadioPurpose::Session,
            });
            let hops = view.hops_to_sink; // route-plan hops to the sink edge
            while let Some(pkg) = view.outbox.first().copied() {
                let bytes = if pkg.fog_done {
                    view.cfg.package.processed_bytes
                } else {
                    view.cfg.package.raw_bytes
                };
                let cost = self.radio.packet_cost(self.rf, bytes);
                if !view.spend(ledger, cost) {
                    break;
                }
                emit(SimEvent::RadioCharged {
                    node,
                    energy: cost,
                    purpose: RadioPurpose::Packet,
                });
                view.outbox.remove(0);
                // End-to-end delivery through the transparent MAC:
                // per-hop loss compounded over the chain.
                let delivered = {
                    let p = self.loss.chain_success(hops + 1);
                    view.rng.chance(p)
                };
                // Relay duty: mark the bytes at the source position;
                // the route fold below credits them to every position
                // on the path to the sink.
                fwd[local_pos] += u64::from(bytes);
                let origin = pkg.origin;
                if delivered {
                    emit(SimEvent::PackageDelivered {
                        origin,
                        fog_done: pkg.fog_done,
                    });
                } else {
                    emit(SimEvent::PackageLost { origin });
                }
            }
        }
    }
}

/// Charges forwarding airtime (RX + TX per byte) to each relay
/// position's awake representative, scanning the shard's
/// `forward_bytes` segment.
fn duty_sweep<E: FnMut(SimEvent)>(
    shard: &mut ColumnsShard<'_>,
    fwd: &[u64],
    positions: &[Vec<usize>],
    rf: &RfTimings,
    mut emit: E,
) {
    let per_byte = rf.active_power * Duration::from_micros(2 * rf.on_air_per_byte_us);
    for (local_pos, &bytes) in fwd.iter().enumerate() {
        if bytes == 0 {
            continue;
        }
        let pos = shard.pos_base + local_pos;
        let Some(rep) = positions[pos]
            .iter()
            .copied()
            .find(|&i| shard.awake[i - shard.base])
        else {
            continue;
        };
        let duty = per_byte * bytes as f64;
        let local = rep - shard.base;
        let (mut view, ledger) = shard.view_ledger(local);
        if view.spend(ledger, duty) {
            emit(SimEvent::RadioCharged {
                node: rep,
                energy: duty,
                purpose: RadioPurpose::Relay,
            });
        }
    }
}

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let radio = parts.cfg.node.radio;
    let send = SendSweep {
        radio,
        session: radio.session_cost(parts.rf),
        rf: parts.rf,
        loss: parts.loss,
    };
    let n_pos = parts.positions.len();
    // Per-position relay marks this slot, folded into duty below
    // (scratch vector: capacity persists across slots).
    ctx.forward_bytes.resize(n_pos, 0);

    let shards = parts.threads.min(n_pos).max(1);
    if shards <= 1 {
        // Serial path: one full-range shard, events straight to the bus.
        let mut shard = full(parts.nodes, &mut ctx.ledgers);
        let pkg = &mut ctx.shards[0].pkg;
        send.sweep(&mut shard, pkg, &mut ctx.forward_bytes, |e| bus.emit(&e));

        // Fold the per-source marks into per-position relay duty with
        // one pass over the route plan's decreasing-hop order (children
        // before parents): a position's duty is the byte total sourced
        // at the positions routing through it. On a chain this
        // degenerates to the reverse suffix-sum this pass replaced —
        // same additions, same order, bit-identical duties.
        ctx.route_acc.resize(n_pos, 0);
        for &v in parts.route.order() {
            let v = v as usize;
            let sourced = ctx.forward_bytes[v];
            let inherited = ctx.route_acc[v];
            ctx.forward_bytes[v] = inherited;
            if let Some(parent) = parts.route.next_hop(v) {
                ctx.route_acc[parent] += inherited + sourced;
            }
        }

        duty_sweep(
            &mut shard,
            &ctx.forward_bytes,
            parts.positions,
            parts.rf,
            |e| {
                bus.emit(&e);
            },
        );
        return;
    }

    let per = pos_per_shard(n_pos, shards);
    let multiplex = parts.cfg.multiplex as usize;

    // Round 1: per-shard send sweeps over disjoint forward segments,
    // each totalling its segment for the fold.
    fork_join(
        ShardIter::new(parts.nodes, &mut ctx.ledgers, per, multiplex)
            .zip(ctx.shards.iter_mut())
            .zip(ctx.forward_bytes.chunks_mut(per))
            .map(|((mut shard, scratch), fwd)| {
                let ShardScratch {
                    events,
                    pkg,
                    fold_total,
                } = scratch;
                let send = &send;
                move || {
                    send.sweep(&mut shard, pkg, fwd, |e| events.push(e));
                    *fold_total = fwd.iter().sum();
                }
            }),
    );
    splice(&mut ctx.shards, &mut bus);

    // Round 2: the relay fold.
    if parts.cfg.topology.is_chain() {
        // The chain suffix-sum distributes over position segments:
        // shard k's duty is its local reverse suffix-sum plus the
        // carry — everything sourced downstream (shards k+1..). The
        // carries are combined here in fixed descending-shard order;
        // u64 addition is exact, so this matches the serial fold bit
        // for bit.
        let mut carry = 0u64;
        for scratch in ctx.shards.iter_mut().rev() {
            let total = scratch.fold_total;
            scratch.fold_total = carry; // becomes the shard's carry-in
            carry += total;
        }
        fork_join(
            ctx.forward_bytes
                .chunks_mut(per)
                .zip(ctx.shards.iter())
                .map(|(fwd, scratch)| {
                    let carry = scratch.fold_total;
                    move || {
                        let mut running = carry;
                        for slot in fwd.iter_mut().rev() {
                            let sourced = *slot;
                            *slot = running;
                            running += sourced;
                        }
                    }
                }),
        );
    } else {
        // General topologies keep the serial O(positions) route-plan
        // fold: child order is topology-dependent, so splitting it
        // would need per-shard O(positions) accumulators for no
        // measurable win (the per-node sweeps dominate).
        ctx.route_acc.resize(n_pos, 0);
        for &v in parts.route.order() {
            let v = v as usize;
            let sourced = ctx.forward_bytes[v];
            let inherited = ctx.route_acc[v];
            ctx.forward_bytes[v] = inherited;
            if let Some(parent) = parts.route.next_hop(v) {
                ctx.route_acc[parent] += inherited + sourced;
            }
        }
    }

    // Round 3: per-shard relay-duty charges (each position's
    // representative lives inside the shard owning the position).
    fork_join(
        ShardIter::new(parts.nodes, &mut ctx.ledgers, per, multiplex)
            .zip(ctx.shards.iter_mut())
            .zip(ctx.forward_bytes.chunks(per))
            .map(|((mut shard, scratch), fwd)| {
                let events = &mut scratch.events;
                let positions = parts.positions;
                let rf = parts.rf;
                move || duty_sweep(&mut shard, fwd, positions, rf, |e| events.push(e))
            }),
    );
    splice(&mut ctx.shards, &mut bus);
}

//! Phase 5 — transmit: ship outboxes into the chain mesh.
//!
//! A node with ready packages opens a radio session (531 ms software
//! init / 33 ms NVM restore / 1.9 ms NVRF start depending on the
//! system) and ships packages processed-first; the MAC layer relays
//! transparently (§2.3), so delivery succeeds with the measured
//! per-hop probability compounded over the hop count, and awake
//! intermediate nodes are charged forwarding airtime.
//!
//! Relay duty is accumulated as a *difference array*: each packet
//! marks its byte count at its source position (one store), and a
//! single sweep over the route plan in decreasing-hop order (children
//! before parents) turns the marks into per-position duty — every
//! position relays exactly the bytes sourced at the positions that
//! route through it. On a chain the sweep order is `[n-1, …, 0]` and
//! each position has one child, so the sweep *is* the reverse
//! suffix-sum of the row pipeline: the same `u64` additions in the
//! same order, bit-identical charged duties. The row pipeline walked
//! `forward_bytes[0..pos]` per packet, which made a full-chain slot
//! O(positions²); the sweep is O(positions) on any topology.

use super::ctx::SlotCtx;
use super::event::{RadioPurpose, SimEvent};
use super::Simulator;
use neofog_types::Duration;

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let radio = parts.cfg.node.radio;
    let session = radio.session_cost(parts.rf);
    let n_pos = parts.positions.len();
    // Per-position relay marks this slot, folded into duty below
    // (scratch vector: capacity persists across slots).
    ctx.forward_bytes.resize(n_pos, 0);

    for i in 0..parts.nodes.len() {
        if !parts.nodes.awake[i] {
            continue;
        }
        let mut view = parts.nodes.view(i);
        if view.outbox.is_empty() {
            continue;
        }
        let position = view.position;
        // Processed packages first: smaller and more valuable. A
        // stable two-pass partition through the package scratch keeps
        // the relative order `sort_by_key` gave without its potential
        // temporary allocation.
        ctx.pkg_scratch.clear();
        ctx.pkg_scratch
            .extend(view.outbox.iter().filter(|p| p.fog_done));
        ctx.pkg_scratch
            .extend(view.outbox.iter().filter(|p| !p.fog_done));
        view.outbox.clear();
        view.outbox.extend_from_slice(&ctx.pkg_scratch);
        // Open the session only when the first packet is payable
        // too — bringing the radio up and then browning out before
        // anything is sent would waste the whole session.
        let first = view.outbox[0];
        let first_bytes = if first.fog_done {
            view.cfg.package.processed_bytes
        } else {
            view.cfg.package.raw_bytes
        };
        let first_cost = radio.packet_cost(parts.rf, first_bytes);
        if view.available() < session + first_cost {
            continue;
        }
        if !view.spend(&mut ctx.ledgers[i], session) {
            continue;
        }
        bus.emit(&SimEvent::RadioCharged {
            node: i,
            energy: session,
            purpose: RadioPurpose::Session,
        });
        let hops = view.hops_to_sink; // route-plan hops to the sink edge
        while let Some(pkg) = view.outbox.first().copied() {
            let bytes = if pkg.fog_done {
                view.cfg.package.processed_bytes
            } else {
                view.cfg.package.raw_bytes
            };
            let cost = radio.packet_cost(parts.rf, bytes);
            if !view.spend(&mut ctx.ledgers[i], cost) {
                break;
            }
            bus.emit(&SimEvent::RadioCharged {
                node: i,
                energy: cost,
                purpose: RadioPurpose::Packet,
            });
            view.outbox.remove(0);
            // End-to-end delivery through the transparent MAC:
            // per-hop loss compounded over the chain.
            let delivered = {
                let p = parts.loss.chain_success(hops + 1);
                view.rng.chance(p)
            };
            // Relay duty: mark the bytes at the source position; the
            // route sweep below credits them to every position on the
            // path to the sink.
            ctx.forward_bytes[position] += u64::from(bytes);
            let origin = pkg.origin;
            if delivered {
                bus.emit(&SimEvent::PackageDelivered {
                    origin,
                    fog_done: pkg.fog_done,
                });
            } else {
                bus.emit(&SimEvent::PackageLost { origin });
            }
        }
    }

    // Fold the per-source marks into per-position relay duty with one
    // pass over the route plan's decreasing-hop order (children before
    // parents): a position's duty is the byte total sourced at the
    // positions routing through it. On a chain this degenerates to the
    // reverse suffix-sum this pass replaced — same additions, same
    // order, bit-identical duties.
    ctx.route_acc.resize(n_pos, 0);
    for &v in parts.route.order() {
        let v = v as usize;
        let sourced = ctx.forward_bytes[v];
        let inherited = ctx.route_acc[v];
        ctx.forward_bytes[v] = inherited;
        if let Some(parent) = parts.route.next_hop(v) {
            ctx.route_acc[parent] += inherited + sourced;
        }
    }

    // Charge forwarding airtime to awake representatives of the
    // relay positions (RX + TX per byte).
    for (pos, &bytes) in ctx.forward_bytes.iter().enumerate() {
        if bytes == 0 {
            continue;
        }
        let Some(rep) = parts.positions[pos]
            .iter()
            .copied()
            .find(|&i| parts.nodes.awake[i])
        else {
            continue;
        };
        let per_byte =
            parts.rf.active_power * Duration::from_micros(2 * parts.rf.on_air_per_byte_us);
        let duty = per_byte * bytes as f64;
        let mut view = parts.nodes.view(rep);
        if view.spend(&mut ctx.ledgers[rep], duty) {
            bus.emit(&SimEvent::RadioCharged {
                node: rep,
                energy: duty,
                purpose: RadioPurpose::Relay,
            });
        }
    }
}

//! Phase 5 — transmit: ship outboxes into the chain mesh.
//!
//! A node with ready packages opens a radio session (531 ms software
//! init / 33 ms NVM restore / 1.9 ms NVRF start depending on the
//! system) and ships packages processed-first; the MAC layer relays
//! transparently (§2.3), so delivery succeeds with the measured
//! per-hop probability compounded over the hop count, and awake
//! intermediate nodes are charged forwarding airtime.

use super::ctx::SlotCtx;
use super::event::{RadioPurpose, SimEvent};
use super::Simulator;
use neofog_types::Duration;

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let (parts, mut bus) = sim.split();
    let radio = parts.cfg.node.radio;
    let session = radio.session_cost(parts.rf);
    let n_pos = parts.positions.len();
    // Forwarding duty (airtime) accumulated per position this slot
    // (scratch vector: capacity persists across slots).
    ctx.forward_bytes.resize(n_pos, 0);

    for i in 0..parts.nodes.len() {
        if !ctx.awake[i] || parts.nodes[i].outbox.is_empty() {
            continue;
        }
        let position = parts.nodes[i].position;
        // Processed packages first: smaller and more valuable. A
        // stable two-pass partition through the package scratch keeps
        // the relative order `sort_by_key` gave without its potential
        // temporary allocation.
        ctx.pkg_scratch.clear();
        ctx.pkg_scratch
            .extend(parts.nodes[i].outbox.iter().filter(|p| p.fog_done));
        ctx.pkg_scratch
            .extend(parts.nodes[i].outbox.iter().filter(|p| !p.fog_done));
        parts.nodes[i].outbox.clear();
        parts.nodes[i].outbox.extend_from_slice(&ctx.pkg_scratch);
        // Open the session only when the first packet is payable
        // too — bringing the radio up and then browning out before
        // anything is sent would waste the whole session.
        let first = parts.nodes[i].outbox[0];
        let first_bytes = if first.fog_done {
            parts.nodes[i].cfg.package.processed_bytes
        } else {
            parts.nodes[i].cfg.package.raw_bytes
        };
        let first_cost = radio.packet_cost(parts.rf, first_bytes);
        if ctx.budgets[i].available(&parts.nodes[i].cap) < session + first_cost {
            continue;
        }
        if !ctx.budgets[i].spend(&mut parts.nodes[i].cap, &mut ctx.ledgers[i], session) {
            continue;
        }
        bus.emit(&SimEvent::RadioCharged {
            node: i,
            energy: session,
            purpose: RadioPurpose::Session,
        });
        let hops = position as u32; // hops to the sink edge
        while let Some(pkg) = parts.nodes[i].outbox.first().copied() {
            let bytes = if pkg.fog_done {
                parts.nodes[i].cfg.package.processed_bytes
            } else {
                parts.nodes[i].cfg.package.raw_bytes
            };
            let cost = radio.packet_cost(parts.rf, bytes);
            if !ctx.budgets[i].spend(&mut parts.nodes[i].cap, &mut ctx.ledgers[i], cost) {
                break;
            }
            bus.emit(&SimEvent::RadioCharged {
                node: i,
                energy: cost,
                purpose: RadioPurpose::Packet,
            });
            parts.nodes[i].outbox.remove(0);
            // End-to-end delivery through the transparent MAC:
            // per-hop loss compounded over the chain.
            let delivered = {
                let p = parts.loss.chain_success(hops + 1);
                parts.nodes[i].rng.chance(p)
            };
            // Relay duty accrues at intermediate positions.
            for pb in ctx.forward_bytes.iter_mut().take(position) {
                *pb += u64::from(bytes);
            }
            let origin = pkg.origin;
            if delivered {
                bus.emit(&SimEvent::PackageDelivered {
                    origin,
                    fog_done: pkg.fog_done,
                });
            } else {
                bus.emit(&SimEvent::PackageLost { origin });
            }
        }
    }

    // Charge forwarding airtime to awake representatives of the
    // relay positions (RX + TX per byte).
    for (pos, &bytes) in ctx.forward_bytes.iter().enumerate() {
        if bytes == 0 {
            continue;
        }
        let Some(rep) = parts.positions[pos].iter().copied().find(|&i| ctx.awake[i]) else {
            continue;
        };
        let per_byte =
            parts.rf.active_power * Duration::from_micros(2 * parts.rf.on_air_per_byte_us);
        let duty = per_byte * bytes as f64;
        let node = &mut parts.nodes[rep];
        if ctx.budgets[rep].spend(&mut node.cap, &mut ctx.ledgers[rep], duty) {
            bus.emit(&SimEvent::RadioCharged {
                node: rep,
                energy: duty,
                purpose: RadioPurpose::Relay,
            });
        }
    }
}

//! The slot-driven WSN system simulator (paper §4), structured as a
//! phase pipeline over a typed event bus.
//!
//! One simulator instance models one chain of logical positions (10 in
//! every figure), optionally NVD4Q-multiplexed so each position is
//! implemented by `M` physical clones. Time advances in RTC slots
//! (default 12 s × 1500 slots = the paper's 5-hour window, in which 10
//! always-on nodes would ideally deliver 15 000 data packages).
//!
//! # The phase pipeline
//!
//! Every slot resets the simulator-owned scratch
//! [`SlotCtx`](ctx::SlotCtx) (budgets, wake flags, conservation
//! ledgers — cleared and refilled in place so the steady-state loop
//! never allocates) and runs six explicit phase functions over it,
//! in order — one module per phase:
//!
//! 1. [`harvest`] — each physical node reads its prefix-summed income
//!    curve over the slot (O(1) per node),
//!    feeds the RTC capacitor first (charging priority), then builds
//!    its slot energy budget through its front-end: FIOS nodes get a
//!    90 %-efficient direct pool plus the capacitor; NOS nodes only
//!    the capacitor round-trip.
//! 2. [`wake`] — nodes scheduled this slot (their clone phase) wake if
//!    they can afford the activation threshold; a scheduled node that
//!    cannot is a *failure* (energy depletion). Awake nodes capture one
//!    data package; fog-capable nodes also enqueue its processing task.
//! 3. [`balance`] — the configured intra-chain balancer redistributes
//!    fog tasks among the awake representatives using their Spendthrift
//!    state; transfer traffic is charged.
//! 4. [`compute`] — fog tasks execute within each node's time and
//!    energy budget (forward progress persists across slots on NVPs);
//!    stale pending packages are shed or shipped raw.
//! 5. [`transmit`] — nodes with ready packages open a radio session
//!    (531 ms software init / 33 ms NVM restore / 1.9 ms NVRF start
//!    depending on the system) and ship packages into the chain mesh;
//!    the MAC layer relays transparently (§2.3), so delivery succeeds
//!    with the measured per-hop probability compounded over the hop
//!    count, and awake intermediate nodes are charged forwarding
//!    airtime. Packages whose relay duty cannot be paid are lost.
//! 6. [`slot_end`] — volatile nodes lose their queues; capacitors
//!    leak; conservation ledgers settle.
//!
//! # The event bus
//!
//! Phases never touch a counter directly: every observable state
//! change is emitted as a [`SimEvent`] and folded by observers.
//! [`MetricsObserver`] (the paper's counters), [`StoredTraceObserver`]
//! (the Figure-9 series), [`LedgerObserver`] (debug conservation
//! checks) and the JSONL [`EventLogObserver`] are all such folds;
//! additional recorders attach via [`Simulator::attach_observer`].
//! Observers are write-only taps — attaching one can never change a
//! [`SimResult`].

mod balance;
mod columns;
mod compute;
mod ctx;
mod event;
mod harvest;
mod ledger;
mod observe;
mod shard;
mod slot_end;
mod transmit;
mod wake;

pub use event::{RadioPurpose, ShedReason, SimEvent};
pub use ledger::LedgerObserver;
pub use observe::{
    render_jsonl, EventLogObserver, MetricsObserver, Observers, SimObserver, StoredTraceObserver,
};

use crate::balance::{
    DistributedBalancer, LoadBalancer, NoBalancer, OffloadBalancer, TreeBalancer,
};
use crate::metrics::NetworkMetrics;
use crate::node::{NodeCapabilities, NodeConfig, SystemKind, TierCapabilities};
use columns::NodeColumns;
use ctx::{NodeSim, SlotCtx};
use neofog_energy::{Rtc, Scenario, SuperCap, TraceGenerator};
use neofog_net::slots::SlotSchedule;
use neofog_net::{RoutePlan, TopologySpec};
use neofog_nvp::SpendthriftPolicy;
use neofog_rf::{LossModel, RfTimings};
use neofog_types::{Duration, Energy, NeoFogError, Power, Result, SimRng};
use observe::EventBus;
use serde::{Deserialize, Serialize};

/// Which balancer a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BalancerKind {
    /// No balancing at all.
    None,
    /// The baseline up-down tree balancer.
    Tree,
    /// The paper's distributed Algorithm-1 balancer.
    Distributed,
    /// The topology-aware offload balancer: compute-here vs
    /// ship-to-neighbour vs ship-to-cloud, priced by the radio
    /// front-end energy model.
    Offload,
}

impl BalancerKind {
    /// Instantiates the balancer (the distributed one uses the slot
    /// length, rounded up to whole seconds, as its `MAXTIME` call
    /// interval).
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::InvalidConfig`] for
    /// [`BalancerKind::Distributed`] with a sub-second slot length: the
    /// `MAXTIME` interval is counted in whole seconds, so rounding a
    /// sub-second slot up to 1 s would silently stretch the call
    /// interval past the slot.
    pub fn build(self, slot_len: Duration) -> Result<Box<dyn LoadBalancer>> {
        match self {
            BalancerKind::None => Ok(Box::new(NoBalancer)),
            BalancerKind::Tree => Ok(Box::new(TreeBalancer::new())),
            BalancerKind::Offload => Ok(Box::new(OffloadBalancer::new())),
            BalancerKind::Distributed => {
                let micros = slot_len.as_micros();
                if micros < 1_000_000 {
                    return Err(NeoFogError::invalid_config(format!(
                        "distributed balancer needs a slot length of at least 1 s \
                         (got {micros} µs)"
                    )));
                }
                let maxtime_secs = micros.div_ceil(1_000_000);
                Ok(Box::new(DistributedBalancer::new(maxtime_secs)))
            }
        }
    }

    /// The default balancer of each evaluated system.
    #[must_use]
    pub fn default_for(system: SystemKind) -> Self {
        match system {
            SystemKind::NosVp => BalancerKind::None,
            SystemKind::NosNvp => BalancerKind::Tree,
            SystemKind::FiosNeoFog => BalancerKind::Distributed,
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Node design under test.
    pub system: SystemKind,
    /// Intra-chain balancer.
    pub balancer: BalancerKind,
    /// Network topology the positions are wired into (chain, seeded
    /// mesh or sensor/gateway/cloud tiers); compiled once into an
    /// immutable [`RoutePlan`] at construction.
    pub topology: TopologySpec,
    /// Per-tier node capabilities (compute rate, radio envelope, link
    /// rates) applied by the node's route-plan tier.
    pub capabilities: TierCapabilities,
    /// Power-trace scenario.
    pub scenario: Scenario,
    /// Logical chain positions (the paper presents 10).
    pub positions: usize,
    /// NVD4Q multiplexing factor (1 = no virtualization).
    pub multiplex: u32,
    /// Number of RTC slots to simulate.
    pub slots: u64,
    /// Slot length.
    pub slot_len: Duration,
    /// Sampling interval of the synthesized power traces. The paper
    /// evaluation uses 1 s (several samples per 12 s slot); fleet-scale
    /// benchmarks coarsen it to `slot_len` so a 10⁶-node chain's curves
    /// fit in memory (per-node curve storage is proportional to
    /// `slots × slot_len / trace_dt`).
    pub trace_dt: Duration,
    /// Trace/loss random seed (the paper's "power profile" index).
    pub seed: u64,
    /// Per-node configuration.
    pub node: NodeConfig,
    /// Record per-slot stored energy (Figure 9) — memory-heavy.
    pub trace_stored: bool,
    /// Extra channel loss from weather (rainy scenarios).
    pub weather_loss: f64,
    /// Probability that a wake actually yields a usable sample; heavy
    /// rain degrades the sensing itself ("total successful sampling
    /// under the reduced power conditions reduces to 8000", §5.3).
    pub sampling_success: f64,
    /// Multiplier on every node's power trace (1.0 = the scenario's
    /// nominal level; Figure 9 uses a bright daytime window).
    pub income_scale: f64,
    /// Write a deterministic JSONL event log to this path (see
    /// [`EventLogObserver`]); `None` disables logging.
    pub events_path: Option<String>,
    /// Worker threads for the sharded slot kernel: `1` (the default)
    /// runs today's serial path, `0` resolves to the machine's
    /// available parallelism, and any other value forks that many
    /// position-aligned shards per element-wise phase. Every value
    /// produces a byte-identical event log (see `sim/shard.rs`).
    pub threads: usize,
}

impl SimConfig {
    /// The evaluation defaults: 10 positions, 1500 × 12 s slots
    /// (5 hours, 15 000 ideal packages), system-default balancer.
    #[must_use]
    pub fn paper_default(system: SystemKind, scenario: Scenario, seed: u64) -> Self {
        let mut node = NodeConfig::paper_default(system);
        // The forest and bridge deployments run the heavier offloaded
        // kernels (volumetric reconstruction / structural models); the
        // mountain nodes run a lighter slide detector.
        if matches!(
            scenario,
            Scenario::ForestIndependent | Scenario::BridgeDependent
        ) {
            node.package = crate::node::PackageSpec::heavy();
        }
        SimConfig {
            system,
            balancer: BalancerKind::default_for(system),
            topology: TopologySpec::default(),
            capabilities: TierCapabilities::paper_default(),
            scenario,
            positions: 10,
            multiplex: 1,
            slots: 1500,
            slot_len: Duration::from_secs(12),
            trace_dt: Duration::from_secs(1),
            seed,
            node,
            trace_stored: false,
            weather_loss: if scenario == Scenario::MountainRainy {
                0.03
            } else {
                0.0
            },
            sampling_success: if scenario == Scenario::MountainRainy {
                0.55
            } else {
                1.0
            },
            income_scale: 1.0,
            events_path: None,
            threads: 1,
        }
    }

    /// Ideal package count: one per position per slot.
    #[must_use]
    pub fn ideal_packages(&self) -> u64 {
        self.positions as u64 * self.slots
    }
}

/// Result of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// The configuration that produced it.
    pub config: SimConfig,
    /// All counters.
    pub metrics: NetworkMetrics,
}

impl SimResult {
    /// Convenience: total delivered / ideal.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        self.metrics.total_processed() as f64 / self.config.ideal_packages() as f64
    }
}

/// The simulator: durable node state plus the observer stack.
pub struct Simulator {
    cfg: SimConfig,
    /// Per-node state, columnar for the hot fields (see [`columns`]).
    nodes: NodeColumns,
    /// Physical node indices per logical position.
    positions: Vec<Vec<usize>>,
    /// Compiled topology: next-hop table, hop counts, sweep order and
    /// CSR adjacency — the slot loop never does graph search.
    route: RoutePlan,
    /// Per-position capability rows, derived from each position's tier.
    caps: Vec<NodeCapabilities>,
    balancer: Box<dyn LoadBalancer>,
    loss: LossModel,
    rf: RfTimings,
    spendthrift: SpendthriftPolicy,
    rng: SimRng,
    /// The counters fold (sole producer of the result metrics).
    metrics: MetricsObserver,
    /// The Figure-9 stored-energy fold, when `trace_stored` is set.
    trace: Option<StoredTraceObserver>,
    /// Pluggable observers: debug ledger checks, the JSONL event log
    /// and anything attached via [`Simulator::attach_observer`].
    observers: Observers,
    /// Reusable per-slot scratch: cleared and refilled every slot so
    /// the steady-state loop allocates nothing after warm-up.
    scratch: SlotCtx,
    /// Resolved shard-kernel worker count (`cfg.threads` with `0`
    /// replaced by the machine's available parallelism; always ≥ 1).
    threads: usize,
    /// Slots advanced so far (see [`Simulator::advance`]).
    next_slot: u64,
}

/// Resolves a [`SimConfig::threads`] knob to a concrete worker count:
/// `0` means the machine's available parallelism (the same recipe the
/// work-stealing pool uses), anything else is taken as-is, floored at 1.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
    } else {
        threads
    }
}

/// The simulation state a phase may read and mutate, split from the
/// observer stack so a phase can hold `&mut` node state while emitting
/// events.
pub(crate) struct SimParts<'a> {
    pub(crate) cfg: &'a SimConfig,
    pub(crate) nodes: &'a mut NodeColumns,
    pub(crate) positions: &'a [Vec<usize>],
    pub(crate) route: &'a RoutePlan,
    pub(crate) caps: &'a [NodeCapabilities],
    pub(crate) balancer: &'a mut Box<dyn LoadBalancer>,
    pub(crate) loss: &'a LossModel,
    pub(crate) rf: &'a RfTimings,
    pub(crate) spendthrift: &'a SpendthriftPolicy,
    pub(crate) rng: &'a mut SimRng,
    /// Resolved shard-kernel worker count (see [`SimConfig::threads`]).
    pub(crate) threads: usize,
}

impl Simulator {
    /// Builds a simulator (generating per-node power traces).
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::InvalidConfig`] when the balancer rejects
    /// the slot length (see [`BalancerKind::build`]) or when
    /// `events_path` cannot be created.
    pub fn new(cfg: SimConfig) -> Result<Self> {
        let physical = cfg.positions * cfg.multiplex as usize;
        let gen = TraceGenerator::new(cfg.scenario, cfg.seed);
        let total_time = Duration::from_micros(cfg.slot_len.as_micros() * cfg.slots);
        let trace_dt = cfg.trace_dt;
        // One plan for the whole chain: dependent scenarios synthesize
        // their shared base curve exactly once here, instead of once
        // per physical node.
        let plan = gen.chain_plan(physical, total_time, trace_dt);
        // Compile the topology once: the slot loop only reads the
        // resulting next-hop/hops/order tables.
        let route = cfg.topology.build(cfg.positions)?;
        let caps: Vec<NodeCapabilities> = (0..cfg.positions)
            .map(|p| cfg.capabilities.for_tier(route.tier(p)))
            .collect();
        let mut rng = SimRng::seed_from(cfg.seed ^ 0x5EED);
        let mut nodes = Vec::with_capacity(physical);
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); cfg.positions];
        for p in 0..cfg.positions {
            for k in 0..cfg.multiplex {
                let idx = nodes.len();
                positions[p].push(idx);
                let schedule = if cfg.multiplex == 1 {
                    SlotSchedule::every_slot()
                } else {
                    SlotSchedule::new(cfg.multiplex, k)
                };
                let curve = plan.node_curve(idx, cfg.income_scale);
                let cap = SuperCap::new(cfg.node.cap_capacity)
                    .with_charge_efficiency(0.65)
                    .with_leak(cfg.node.cap_leak)
                    .with_initial(cfg.node.cap_capacity * cfg.node.initial_charge);
                let rtc = Rtc::new(Energy::from_millijoules(5.0), Power::from_microwatts(2.0));
                nodes.push(NodeSim {
                    cfg: cfg.node,
                    cap,
                    rtc,
                    curve,
                    schedule,
                    position: p,
                    hops_to_sink: route.hops(p),
                    caps: caps[p],
                    pending: Vec::with_capacity(ctx::QUEUE_RESERVE),
                    outbox: Vec::with_capacity(ctx::QUEUE_RESERVE),
                    rng: rng.fork(idx as u64),
                });
            }
        }
        // Scatter the construction rows into the columnar layout the
        // slot kernel sweeps (hot fields become dense arrays; queues,
        // curves and RNG streams stay row-oriented).
        let nodes = NodeColumns::scatter(nodes, cfg.node.front_end);
        let loss = LossModel::paper_default().with_weather_loss(cfg.weather_loss);
        let balancer = cfg.balancer.build(cfg.slot_len)?;
        let metrics = MetricsObserver::new(physical);
        let trace = cfg.trace_stored.then(|| StoredTraceObserver::new(physical));
        let mut observers = Observers::default();
        #[cfg(debug_assertions)]
        observers.push(Box::new(LedgerObserver));
        if let Some(path) = &cfg.events_path {
            observers.push(Box::new(EventLogObserver::create(path)?));
        }
        let threads = resolve_threads(cfg.threads);
        Ok(Simulator {
            nodes,
            positions,
            route,
            caps,
            balancer,
            loss,
            rf: RfTimings::paper_default(),
            spendthrift: SpendthriftPolicy::paper_default(),
            rng: SimRng::seed_from(cfg.seed ^ 0xBA1A),
            metrics,
            trace,
            observers,
            scratch: SlotCtx::warmed(physical, cfg.positions, threads),
            threads,
            next_slot: 0,
            cfg,
        })
    }

    /// Changes the shard-kernel worker count mid-life (`0` = available
    /// parallelism), re-warming the per-shard scratch. Determinism is
    /// unaffected — every thread count produces the same event stream —
    /// so benchmarks reuse one built simulator across thread variants.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = resolve_threads(threads);
        self.cfg.threads = threads;
        let physical = self.nodes.len();
        self.scratch
            .warm_shards(physical, self.cfg.positions, self.threads);
    }

    /// Attaches an additional observer behind the built-in recorders
    /// (delivery order: metrics, trace, then attach order).
    pub fn attach_observer(&mut self, observer: Box<dyn SimObserver>) {
        self.observers.push(observer);
    }

    /// FNV-1a digest over the complete durable per-node state:
    /// capacitor charge, RTC sync, slot flags, queues and RNG streams.
    /// Two simulators with equal digests hold bit-identical node state
    /// — the parallel-equivalence tests compare threaded runs against
    /// the serial path this way.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0100_0000_01b3;
        let mut hash = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                hash = (hash ^ u64::from(byte)).wrapping_mul(PRIME);
            }
        };
        for i in 0..self.nodes.len() {
            mix(self.nodes.cap[i].stored().as_nanojoules().to_bits());
            mix(u64::from(self.nodes.rtc[i].is_synchronized()));
            mix(u64::from(self.nodes.fifo_depth[i]));
            mix(self.nodes.direct_left[i].as_nanojoules().to_bits());
            mix(u64::from(self.nodes.awake[i]));
            mix(self.nodes.income_power[i].as_microwatts().to_bits());
            mix(self.nodes.balance_credit[i].as_nanojoules().to_bits());
            mix(self.nodes.position[i] as u64);
            let cold = &self.nodes.cold[i];
            for queue in [&cold.pending, &cold.outbox] {
                mix(queue.len() as u64);
                for pkg in queue {
                    mix(pkg.origin as u64);
                    mix(pkg.created);
                    mix(pkg.fog_remaining);
                    mix(u64::from(pkg.fog_done));
                }
            }
            mix(cold.rng.clone().next_u64());
        }
        hash
    }

    /// Advances the simulation by `slots` more slots without finishing
    /// it, cycling the slot index through the configured window
    /// (`slot % cfg.slots`).
    ///
    /// This is the steady-state driver for benchmarks and soak tests:
    /// build once, warm up, then time `advance(1)` per iteration
    /// without paying trace synthesis again. Durable node state
    /// (capacitor charge, queues, RNG streams) carries across the
    /// wrap, so the workload stays representative; a run that should
    /// produce the paper's metrics uses [`Simulator::run`], which
    /// performs exactly one pass over the window.
    pub fn advance(&mut self, slots: u64) {
        let window = self.cfg.slots.max(1);
        for _ in 0..slots {
            self.step(self.next_slot % window);
            self.next_slot += 1;
        }
    }

    /// Runs the remainder of the simulation window and returns the
    /// metrics (one pass over `cfg.slots` when no [`advance`] calls
    /// preceded it).
    ///
    /// [`advance`]: Simulator::advance
    #[must_use]
    pub fn run(mut self) -> SimResult {
        for slot in self.next_slot..self.cfg.slots {
            self.step(slot);
        }
        let Simulator {
            cfg,
            mut metrics,
            trace,
            mut observers,
            ..
        } = self;
        metrics.on_finish();
        observers.on_finish();
        let mut metrics = metrics.into_metrics();
        if let Some(mut trace) = trace {
            trace.on_finish();
            trace.merge_into(&mut metrics);
        }
        SimResult {
            config: cfg,
            metrics,
        }
    }

    /// Advances one slot through the six-phase pipeline.
    fn step(&mut self, slot: u64) {
        // Take the scratch context out so the phases can borrow the
        // simulator mutably alongside it; its vectors are cleared and
        // refilled in place, so capacity survives across all slots.
        let mut ctx = std::mem::take(&mut self.scratch);
        self.nodes.begin_slot();
        ctx.reset(&self.cfg, &self.nodes, slot);
        self.emit(&SimEvent::SlotBegan { slot });
        harvest::run(self, &mut ctx);
        wake::run(self, &mut ctx);
        balance::run(self, &mut ctx);
        compute::run(self, &mut ctx);
        transmit::run(self, &mut ctx);
        slot_end::run(self, &mut ctx);
        self.emit(&SimEvent::SlotEnded { slot });
        self.scratch = ctx;
    }

    /// Splits the simulator into phase-visible state and the event bus.
    pub(crate) fn split(&mut self) -> (SimParts<'_>, EventBus<'_>) {
        let Simulator {
            cfg,
            nodes,
            positions,
            route,
            caps,
            balancer,
            loss,
            rf,
            spendthrift,
            rng,
            metrics,
            trace,
            observers,
            scratch: _,
            threads,
            next_slot: _,
        } = self;
        (
            SimParts {
                cfg,
                nodes,
                positions,
                route,
                caps,
                balancer,
                loss,
                rf,
                spendthrift,
                rng,
                threads: *threads,
            },
            EventBus {
                metrics,
                trace: trace.as_mut(),
                extra: observers,
            },
        )
    }

    /// Emits one event outside any phase (slot boundaries).
    fn emit(&mut self, event: &SimEvent) {
        let (_parts, mut bus) = self.split();
        bus.emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(system: SystemKind) -> SimConfig {
        let mut cfg = SimConfig::paper_default(system, Scenario::ForestIndependent, 1);
        cfg.slots = 150;
        cfg
    }

    fn build(cfg: SimConfig) -> Simulator {
        Simulator::new(cfg).expect("config is valid")
    }

    #[test]
    fn runs_and_counts_are_bounded() {
        for system in SystemKind::ALL {
            let result = build(quick_cfg(system)).run();
            let m = &result.metrics;
            let ideal = result.config.ideal_packages();
            assert!(m.total_wakeups() + m.total_failures() <= ideal);
            assert!(m.total_captured() <= m.total_wakeups());
            assert!(
                m.total_processed() <= m.total_captured(),
                "{system:?}: processed {} > captured {}",
                m.total_processed(),
                m.total_captured()
            );
        }
    }

    #[test]
    fn vp_never_fog_processes() {
        let result = build(quick_cfg(SystemKind::NosVp)).run();
        assert_eq!(result.metrics.fog_processed(), 0);
    }

    #[test]
    fn neofog_mostly_fog_processes() {
        let result = build(quick_cfg(SystemKind::FiosNeoFog)).run();
        let m = &result.metrics;
        assert!(m.total_processed() > 0, "nothing delivered");
        assert!(m.fog_share() > 0.5, "fog share {}", m.fog_share());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = build(quick_cfg(SystemKind::FiosNeoFog)).run();
        let b = build(quick_cfg(SystemKind::FiosNeoFog)).run();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg2 = quick_cfg(SystemKind::FiosNeoFog);
        cfg2.seed = 99;
        let a = build(quick_cfg(SystemKind::FiosNeoFog)).run();
        let b = build(cfg2).run();
        assert_ne!(a.metrics, b.metrics);
    }

    #[test]
    fn stored_trace_recorded_when_enabled() {
        let mut cfg = quick_cfg(SystemKind::FiosNeoFog);
        cfg.trace_stored = true;
        let result = build(cfg).run();
        assert_eq!(result.metrics.nodes[0].stored_series.len(), 150);
    }

    #[test]
    fn multiplexing_reduces_per_node_wakeups() {
        let mut cfg = quick_cfg(SystemKind::FiosNeoFog);
        cfg.multiplex = 3;
        let result = build(cfg).run();
        // 30 physical nodes, each scheduled 1/3 of slots.
        assert_eq!(result.metrics.nodes.len(), 30);
        for n in &result.metrics.nodes {
            assert!(n.wakeups + n.failures <= 50);
        }
    }

    #[test]
    fn distributed_balancer_rejects_subsecond_slots() {
        let mut cfg = quick_cfg(SystemKind::FiosNeoFog);
        cfg.slot_len = Duration::from_micros(500_000);
        assert!(matches!(
            Simulator::new(cfg),
            Err(NeoFogError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn whole_second_slot_lengths_still_build() {
        for system in SystemKind::ALL {
            let cfg = quick_cfg(system);
            assert!(cfg.balancer.build(cfg.slot_len).is_ok());
        }
    }

    #[test]
    fn attached_observer_sees_every_slot_boundary() {
        struct SlotCounter(std::rc::Rc<std::cell::RefCell<(u64, u64)>>);
        impl SimObserver for SlotCounter {
            fn on_event(&mut self, event: &SimEvent) {
                match event {
                    SimEvent::SlotBegan { .. } => self.0.borrow_mut().0 += 1,
                    SimEvent::SlotEnded { .. } => self.0.borrow_mut().1 += 1,
                    _ => {}
                }
            }
        }
        let counts = std::rc::Rc::new(std::cell::RefCell::new((0, 0)));
        let mut sim = build(quick_cfg(SystemKind::FiosNeoFog));
        sim.attach_observer(Box::new(SlotCounter(counts.clone())));
        let _ = sim.run();
        assert_eq!(*counts.borrow(), (150, 150));
    }

    #[test]
    fn attaching_an_observer_never_changes_the_result() {
        struct Sink;
        impl SimObserver for Sink {
            fn on_event(&mut self, _event: &SimEvent) {}
        }
        let plain = build(quick_cfg(SystemKind::FiosNeoFog)).run();
        let mut sim = build(quick_cfg(SystemKind::FiosNeoFog));
        sim.attach_observer(Box::new(Sink));
        let observed = sim.run();
        assert_eq!(plain.metrics, observed.metrics);
    }
}

//! Shared per-slot state the phase functions operate on.
//!
//! A [`SlotCtx`] is opened at the top of every slot and threaded
//! through the six phases in order; it owns everything whose lifetime
//! is exactly one slot (energy budgets, wake flags, income powers,
//! conservation ledgers), while the durable node state lives in
//! [`NodeSim`] on the simulator.

use super::ledger::EnergyLedger;
use crate::node::NodeConfig;
use crate::sim::SimConfig;
use neofog_energy::{PowerTrace, Rtc, SuperCap};
use neofog_net::slots::SlotSchedule;
use neofog_types::{Duration, Energy, Power, SimRng};
use serde::{Deserialize, Serialize};

/// Maximum fog backlog a node admits (packages); the NV buffer sheds
/// newer samples beyond this.
pub(crate) const MAX_PENDING: usize = 8;

/// One captured data package travelling through the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Package {
    /// Index of the capturing physical node.
    pub(crate) origin: usize,
    /// Slot of capture.
    pub(crate) created: u64,
    /// Remaining fog instructions (0 = processed).
    pub(crate) fog_remaining: u64,
    /// Whether the fog task completed.
    pub(crate) fog_done: bool,
}

/// One physical node's live state (persists across slots).
pub(crate) struct NodeSim {
    pub(crate) cfg: NodeConfig,
    pub(crate) cap: SuperCap,
    pub(crate) rtc: Rtc,
    pub(crate) trace: PowerTrace,
    pub(crate) schedule: SlotSchedule,
    /// Logical chain position this node implements.
    pub(crate) position: usize,
    /// Packages awaiting fog processing (fog systems only).
    pub(crate) pending: Vec<Package>,
    /// Packages ready for transmission.
    pub(crate) outbox: Vec<Package>,
    pub(crate) rng: SimRng,
}

/// Per-slot spendable energy: a direct pool (FIOS) plus the capacitor
/// behind a discharge regulator.
pub(crate) struct SlotBudget {
    pub(crate) direct_left: Energy,
    pub(crate) direct_eff: f64,
    pub(crate) discharge_eff: f64,
}

impl SlotBudget {
    pub(crate) fn available(&self, cap: &SuperCap) -> Energy {
        self.direct_left + cap.stored() * self.discharge_eff
    }

    /// Spends `amount` (at the load), direct pool first, booking the
    /// delivery and both channels' conversion losses in the ledger.
    /// Returns false (spending nothing) if unaffordable.
    pub(crate) fn spend(
        &mut self,
        cap: &mut SuperCap,
        ledger: &mut EnergyLedger,
        amount: Energy,
    ) -> bool {
        if self.available(cap) < amount {
            return false;
        }
        let from_direct = amount.min(self.direct_left);
        self.direct_left -= from_direct;
        if self.direct_eff > 0.0 && from_direct > Energy::ZERO {
            // The direct channel is lossy at the point of use: raw
            // income `from_direct / eff` delivered only `from_direct`.
            ledger.debit_loss(from_direct / self.direct_eff - from_direct);
        }
        let rest = amount - from_direct;
        if rest > Energy::ZERO {
            let gross = rest / self.discharge_eff;
            // Floating-point slack: available() said yes.
            let drawn = cap.discharge_up_to(gross);
            debug_assert!(drawn >= gross * 0.999);
            ledger.debit_loss(drawn.saturating_sub(rest));
        }
        ledger.debit_consumed(amount);
        true
    }

    /// Returns the unspent direct pool converted back to raw income.
    pub(crate) fn leftover_income(&mut self) -> Energy {
        let left = self.direct_left;
        self.direct_left = Energy::ZERO;
        if self.direct_eff > 0.0 {
            left / self.direct_eff
        } else {
            left
        }
    }
}

/// Everything whose lifetime is exactly one slot.
pub(crate) struct SlotCtx {
    /// Slot index.
    pub(crate) slot: u64,
    /// Slot start in simulated time.
    pub(crate) t0: Duration,
    /// Slot end in simulated time.
    pub(crate) t1: Duration,
    /// Per-node spendable budgets (filled by the harvest phase).
    pub(crate) budgets: Vec<SlotBudget>,
    /// Per-node wake flags (set by the wake phase).
    pub(crate) awake: Vec<bool>,
    /// Per-node mean income power over the slot (pre-RTC).
    pub(crate) income_power: Vec<Power>,
    /// One conservation ledger per node, opened against the stored
    /// level entering the slot and settled at slot end.
    pub(crate) ledgers: Vec<EnergyLedger>,
}

impl SlotCtx {
    /// Opens the context for `slot`, with one ledger per node.
    pub(crate) fn open(cfg: &SimConfig, nodes: &[NodeSim], slot: u64) -> Self {
        let t0 = Duration::from_micros(slot * cfg.slot_len.as_micros());
        let n_phys = nodes.len();
        SlotCtx {
            slot,
            t0,
            t1: t0 + cfg.slot_len,
            budgets: Vec::with_capacity(n_phys),
            awake: vec![false; n_phys],
            income_power: vec![Power::ZERO; n_phys],
            ledgers: nodes
                .iter()
                .map(|n| EnergyLedger::open(n.cap.stored()))
                .collect(),
        }
    }
}

//! Shared per-slot state the phase functions operate on.
//!
//! A [`SlotCtx`] is a reusable scratch struct owned by the simulator:
//! it is [`reset`](SlotCtx::reset) at the top of every slot and
//! threaded through the six phases in order. It owns the per-slot
//! state that is *not* per-node-columnar (conservation ledgers,
//! per-position forwarding duty, package scratch); the per-node hot
//! state — budgets, wake flags, income powers — lives in the
//! [`NodeColumns`](super::columns::NodeColumns) arrays, reset by
//! [`begin_slot`](super::columns::NodeColumns::begin_slot) alongside
//! this context. Both clear and refill in place, so after the first
//! slot the steady-state loop performs no heap allocation here.

use super::columns::NodeColumns;
use super::ledger::EnergyLedger;
use super::shard::{pos_per_shard, ShardScratch};
use crate::balance::OffloadDecision;
use crate::node::{NodeCapabilities, NodeConfig};
use crate::sim::SimConfig;
use neofog_energy::{EnergyCurve, Rtc, SuperCap};
use neofog_net::slots::SlotSchedule;
use neofog_types::{Duration, SimRng};
use serde::{Deserialize, Serialize};

/// Maximum fog backlog a node admits (packages); the NV buffer sheds
/// newer samples beyond this.
pub(crate) const MAX_PENDING: usize = 8;

/// Initial capacity for the per-node package queues and the package
/// scratch. `pending` is hard-capped at [`MAX_PENDING`]; the outbox
/// backlog tracks it closely (admission control throttles inflow to
/// one capture per wake plus what fog processing releases), so 2× is
/// enough that steady-state slots never regrow the queues.
pub(crate) const QUEUE_RESERVE: usize = 2 * MAX_PENDING;

/// One captured data package travelling through the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Package {
    /// Index of the capturing physical node.
    pub(crate) origin: usize,
    /// Slot of capture.
    pub(crate) created: u64,
    /// Remaining fog instructions (0 = processed).
    pub(crate) fog_remaining: u64,
    /// Whether the fog task completed.
    pub(crate) fog_done: bool,
}

/// One physical node's state as a row: the construction-time shape,
/// split into the columnar layout by
/// [`NodeColumns::scatter`](super::columns::NodeColumns::scatter)
/// before the first slot runs (and reassembled by `gather` in tests —
/// the round-trip is lossless).
#[cfg_attr(test, derive(Debug, PartialEq))]
pub(crate) struct NodeSim {
    pub(crate) cfg: NodeConfig,
    pub(crate) cap: SuperCap,
    pub(crate) rtc: Rtc,
    /// Prefix-summed income curve: `energy_between` is O(1) per slot
    /// instead of walking every trace sample the slot covers.
    pub(crate) curve: EnergyCurve,
    pub(crate) schedule: SlotSchedule,
    /// Logical chain position this node implements.
    pub(crate) position: usize,
    /// Route-plan hop count from this node's position to the sink.
    pub(crate) hops_to_sink: u32,
    /// Tier-derived radio/compute capability row.
    pub(crate) caps: NodeCapabilities,
    /// Packages awaiting fog processing (fog systems only).
    pub(crate) pending: Vec<Package>,
    /// Packages ready for transmission.
    pub(crate) outbox: Vec<Package>,
    pub(crate) rng: SimRng,
}

/// The non-columnar per-slot state, with allocations that last the
/// whole run (see the module docs).
#[derive(Default)]
pub(crate) struct SlotCtx {
    /// Slot index.
    pub(crate) slot: u64,
    /// Slot start in simulated time.
    pub(crate) t0: Duration,
    /// Slot end in simulated time.
    pub(crate) t1: Duration,
    /// One conservation ledger per node, opened against the stored
    /// level entering the slot and settled at slot end.
    pub(crate) ledgers: Vec<EnergyLedger>,
    /// Transmit-phase scratch: forwarding airtime (bytes) accumulated
    /// per logical position this slot.
    pub(crate) forward_bytes: Vec<u64>,
    /// Transmit-phase scratch: bytes flowing *into* each position from
    /// its route-plan children, accumulated by the topological relay
    /// sweep.
    pub(crate) route_acc: Vec<u64>,
    /// Balance-phase scratch: offload decisions taken this slot.
    pub(crate) offload: Vec<OffloadDecision>,
    /// Per-shard scratch for the parallel sweeps: event buffers,
    /// package scratch and fold partials, one per configured worker
    /// (always at least one — the serial path uses `shards[0].pkg`).
    pub(crate) shards: Vec<ShardScratch>,
}

impl SlotCtx {
    /// A scratch context whose vectors are pre-sized for `n_phys`
    /// physical nodes, `n_pos` chain positions and `threads` shard
    /// workers, so even the first slots only fill — never grow — them.
    pub(crate) fn warmed(n_phys: usize, n_pos: usize, threads: usize) -> Self {
        let mut ctx = SlotCtx::default();
        ctx.ledgers.reserve(n_phys);
        ctx.forward_bytes.reserve(n_pos);
        ctx.route_acc.reserve(n_pos);
        ctx.offload.reserve(n_pos);
        ctx.warm_shards(n_phys, n_pos, threads);
        ctx
    }

    /// (Re)sizes the per-shard scratch for `threads` workers; called
    /// at construction and when the thread count changes mid-life
    /// (benchmark reuse via [`Simulator::set_threads`]).
    ///
    /// [`Simulator::set_threads`]: super::Simulator::set_threads
    pub(crate) fn warm_shards(&mut self, n_phys: usize, n_pos: usize, threads: usize) {
        let shards = threads.min(n_pos).max(1);
        let per = pos_per_shard(n_pos, shards);
        let multiplex = n_phys / n_pos.max(1);
        self.shards.clear();
        self.shards
            .extend((0..shards).map(|_| ShardScratch::warmed(per * multiplex.max(1))));
    }

    /// Resets the context for `slot`, opening one ledger per node.
    /// Clears and refills every per-slot vector in place so their
    /// capacity survives from slot to slot.
    pub(crate) fn reset(&mut self, cfg: &SimConfig, nodes: &NodeColumns, slot: u64) {
        let t0 = Duration::from_micros(slot * cfg.slot_len.as_micros());
        self.slot = slot;
        self.t0 = t0;
        self.t1 = t0 + cfg.slot_len;
        self.ledgers.clear();
        self.ledgers
            .extend(nodes.cap.iter().map(|c| EnergyLedger::open(c.stored())));
        self.forward_bytes.clear();
        self.route_acc.clear();
        self.offload.clear();
        for shard in &mut self.shards {
            shard.events.clear();
            shard.pkg.clear();
            shard.fold_total = 0;
        }
    }
}

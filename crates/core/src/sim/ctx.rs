//! Shared per-slot state the phase functions operate on.
//!
//! A [`SlotCtx`] is a reusable scratch struct owned by the simulator:
//! it is [`reset`](SlotCtx::reset) at the top of every slot and
//! threaded through the six phases in order. It owns everything whose
//! *lifetime* is exactly one slot (energy budgets, wake flags, income
//! powers, conservation ledgers), but its *allocations* persist for
//! the whole run — `reset` clears and refills in place, so after the
//! first slot the steady-state loop performs no heap allocation here.
//! The durable node state lives in [`NodeSim`] on the simulator.

use super::ledger::EnergyLedger;
use crate::node::NodeConfig;
use crate::sim::SimConfig;
use neofog_energy::{EnergyCurve, Rtc, SuperCap};
use neofog_net::slots::SlotSchedule;
use neofog_types::{Duration, Energy, Power, SimRng};
use serde::{Deserialize, Serialize};

/// Maximum fog backlog a node admits (packages); the NV buffer sheds
/// newer samples beyond this.
pub(crate) const MAX_PENDING: usize = 8;

/// Initial capacity for the per-node package queues and the package
/// scratch. `pending` is hard-capped at [`MAX_PENDING`]; the outbox
/// backlog tracks it closely (admission control throttles inflow to
/// one capture per wake plus what fog processing releases), so 2× is
/// enough that steady-state slots never regrow the queues.
pub(crate) const QUEUE_RESERVE: usize = 2 * MAX_PENDING;

/// One captured data package travelling through the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Package {
    /// Index of the capturing physical node.
    pub(crate) origin: usize,
    /// Slot of capture.
    pub(crate) created: u64,
    /// Remaining fog instructions (0 = processed).
    pub(crate) fog_remaining: u64,
    /// Whether the fog task completed.
    pub(crate) fog_done: bool,
}

/// One physical node's live state (persists across slots).
pub(crate) struct NodeSim {
    pub(crate) cfg: NodeConfig,
    pub(crate) cap: SuperCap,
    pub(crate) rtc: Rtc,
    /// Prefix-summed income curve: `energy_between` is O(1) per slot
    /// instead of walking every trace sample the slot covers.
    pub(crate) curve: EnergyCurve,
    pub(crate) schedule: SlotSchedule,
    /// Logical chain position this node implements.
    pub(crate) position: usize,
    /// Packages awaiting fog processing (fog systems only).
    pub(crate) pending: Vec<Package>,
    /// Packages ready for transmission.
    pub(crate) outbox: Vec<Package>,
    pub(crate) rng: SimRng,
}

/// Per-slot spendable energy: a direct pool (FIOS) plus the capacitor
/// behind a discharge regulator.
pub(crate) struct SlotBudget {
    pub(crate) direct_left: Energy,
    pub(crate) direct_eff: f64,
    pub(crate) discharge_eff: f64,
}

impl SlotBudget {
    pub(crate) fn available(&self, cap: &SuperCap) -> Energy {
        self.direct_left + cap.stored() * self.discharge_eff
    }

    /// Spends `amount` (at the load), direct pool first, booking the
    /// delivery and both channels' conversion losses in the ledger.
    /// Returns false (spending nothing) if unaffordable.
    pub(crate) fn spend(
        &mut self,
        cap: &mut SuperCap,
        ledger: &mut EnergyLedger,
        amount: Energy,
    ) -> bool {
        if self.available(cap) < amount {
            return false;
        }
        let from_direct = amount.min(self.direct_left);
        self.direct_left -= from_direct;
        if self.direct_eff > 0.0 && from_direct > Energy::ZERO {
            // The direct channel is lossy at the point of use: raw
            // income `from_direct / eff` delivered only `from_direct`.
            ledger.debit_loss(from_direct / self.direct_eff - from_direct);
        }
        let rest = amount - from_direct;
        if rest > Energy::ZERO {
            let gross = rest / self.discharge_eff;
            // Floating-point slack: available() said yes.
            let drawn = cap.discharge_up_to(gross);
            debug_assert!(drawn >= gross * 0.999);
            ledger.debit_loss(drawn.saturating_sub(rest));
        }
        ledger.debit_consumed(amount);
        true
    }

    /// Returns the unspent direct pool converted back to raw income.
    pub(crate) fn leftover_income(&mut self) -> Energy {
        let left = self.direct_left;
        self.direct_left = Energy::ZERO;
        if self.direct_eff > 0.0 {
            left / self.direct_eff
        } else {
            left
        }
    }
}

/// Everything whose lifetime is exactly one slot, with allocations
/// that last the whole run (see the module docs).
#[derive(Default)]
pub(crate) struct SlotCtx {
    /// Slot index.
    pub(crate) slot: u64,
    /// Slot start in simulated time.
    pub(crate) t0: Duration,
    /// Slot end in simulated time.
    pub(crate) t1: Duration,
    /// Per-node spendable budgets (filled by the harvest phase).
    pub(crate) budgets: Vec<SlotBudget>,
    /// Per-node wake flags (set by the wake phase).
    pub(crate) awake: Vec<bool>,
    /// Per-node mean income power over the slot (pre-RTC).
    pub(crate) income_power: Vec<Power>,
    /// One conservation ledger per node, opened against the stored
    /// level entering the slot and settled at slot end.
    pub(crate) ledgers: Vec<EnergyLedger>,
    /// Transmit-phase scratch: forwarding airtime (bytes) accumulated
    /// per logical position this slot.
    pub(crate) forward_bytes: Vec<u64>,
    /// General package scratch (transmit ordering, stale shedding);
    /// every user clears it before use.
    pub(crate) pkg_scratch: Vec<Package>,
}

impl SlotCtx {
    /// A scratch context whose vectors are pre-sized for `n_phys`
    /// physical nodes and `n_pos` chain positions, so even the first
    /// slots only fill — never grow — them.
    pub(crate) fn warmed(n_phys: usize, n_pos: usize) -> Self {
        let mut ctx = SlotCtx::default();
        ctx.budgets.reserve(n_phys);
        ctx.awake.reserve(n_phys);
        ctx.income_power.reserve(n_phys);
        ctx.ledgers.reserve(n_phys);
        ctx.forward_bytes.reserve(n_pos);
        ctx.pkg_scratch.reserve(QUEUE_RESERVE);
        ctx
    }

    /// Resets the context for `slot`, opening one ledger per node.
    /// Clears and refills every per-slot vector in place so their
    /// capacity survives from slot to slot.
    pub(crate) fn reset(&mut self, cfg: &SimConfig, nodes: &[NodeSim], slot: u64) {
        let t0 = Duration::from_micros(slot * cfg.slot_len.as_micros());
        let n_phys = nodes.len();
        self.slot = slot;
        self.t0 = t0;
        self.t1 = t0 + cfg.slot_len;
        self.budgets.clear();
        self.budgets.reserve(n_phys);
        self.awake.clear();
        self.awake.resize(n_phys, false);
        self.income_power.clear();
        self.income_power.resize(n_phys, Power::ZERO);
        self.ledgers.clear();
        self.ledgers
            .extend(nodes.iter().map(|n| EnergyLedger::open(n.cap.stored())));
        self.forward_bytes.clear();
        self.pkg_scratch.clear();
    }
}

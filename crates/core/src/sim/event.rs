//! The typed event vocabulary of the slot pipeline.
//!
//! Every observable state change in a slot — energy booked, a node
//! waking or failing, tasks migrating, packages moving — is described
//! by one [`SimEvent`] value emitted through the
//! [`SimObserver`](crate::sim::SimObserver) bus. The phase functions
//! emit events at exactly the point the change happens, so an event
//! stream is a complete, ordered record of a run: the metrics, the
//! debug energy ledger and the stored-energy trace are all pure
//! folds over it.

use crate::balance::OffloadTarget;
use neofog_types::Energy;
use serde::{Deserialize, Serialize};

/// Why a package was shed (dropped without delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The NV admission buffer already held its bounded backlog.
    BufferFull,
    /// The package sat unprocessed past the staleness horizon on a
    /// node too depleted to ship it raw (§5.1: "the sampled data are
    /// discarded").
    Stale,
    /// A volatile node powered down and its queues evaporated.
    Volatile,
}

impl ShedReason {
    /// Stable lowercase label used in the JSONL event log.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::BufferFull => "buffer_full",
            ShedReason::Stale => "stale",
            ShedReason::Volatile => "volatile",
        }
    }
}

/// What a radio energy charge paid for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RadioPurpose {
    /// Opening a transmit session (software init / NVM restore / NVRF
    /// start, depending on the system).
    Session,
    /// Shipping one data packet.
    Packet,
    /// Forwarding airtime charged to an awake relay position.
    Relay,
    /// Load-balance transfer traffic shared across awake nodes.
    Balance,
}

impl RadioPurpose {
    /// Stable lowercase label used in the JSONL event log.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RadioPurpose::Session => "session",
            RadioPurpose::Packet => "packet",
            RadioPurpose::Relay => "relay",
            RadioPurpose::Balance => "balance",
        }
    }
}

/// One observable state change inside a slot.
///
/// Node indices are physical-node indices (position-major, clone-minor
/// — the same indexing as
/// [`NetworkMetrics::nodes`](crate::metrics::NetworkMetrics::nodes)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A new RTC slot began.
    SlotBegan {
        /// Slot index.
        slot: u64,
    },
    /// A node's harvest income (post front-end, post RTC priority
    /// charge) was booked into its slot budget.
    HarvestBooked {
        /// Physical node index.
        node: usize,
        /// Income delivered to the budget.
        income: Energy,
    },
    /// A full capacitor rejected income it could not absorb.
    CapacitorOverflow {
        /// Physical node index.
        node: usize,
        /// Energy turned away.
        rejected: Energy,
    },
    /// A scheduled node paid its activation threshold and woke.
    NodeWoke {
        /// Physical node index.
        node: usize,
    },
    /// A scheduled node could not afford to wake (energy depletion —
    /// the paper's "node failure").
    WakeFailed {
        /// Physical node index.
        node: usize,
    },
    /// An awake node captured one data package.
    PackageCaptured {
        /// Physical node index.
        node: usize,
    },
    /// Packages were shed without delivery.
    PackageShed {
        /// Physical node index that held them.
        node: usize,
        /// How many were shed.
        count: u64,
        /// Why they were shed.
        reason: ShedReason,
    },
    /// The intra-chain balancer finished a round.
    TasksMigrated {
        /// Balance regions interrupted by node failure.
        interrupted: u64,
        /// Fog tasks reassigned to another node.
        moved: u64,
        /// Chain-hop transmissions the moves cost.
        hops: u64,
    },
    /// The offload balancer resolved a node's backlog deficit: keep it
    /// local, ship it one hop, or ship it to the sink (see
    /// [`OffloadBalancer`](crate::balance::OffloadBalancer)).
    OffloadDecided {
        /// Physical node index of the deciding position's awake
        /// representative.
        node: usize,
        /// Where the surplus tasks went.
        target: OffloadTarget,
        /// Tasks moved (0 when the decision was to hold).
        tasks: u64,
        /// Estimated radio front-end energy of the shipping.
        ship_energy: Energy,
    },
    /// Radio energy was charged to a node.
    RadioCharged {
        /// Physical node index.
        node: usize,
        /// Energy at the point of use.
        energy: Energy,
        /// What the charge paid for.
        purpose: RadioPurpose,
    },
    /// A fog task executed some instructions on a node.
    FogProgressed {
        /// Physical node index.
        node: usize,
        /// Instructions retired this step.
        instructions: u64,
        /// Compute energy spent.
        energy: Energy,
    },
    /// A fog task ran to completion on a node.
    FogCompleted {
        /// Physical node index (execution credit — may differ from the
        /// package's origin after balancing).
        node: usize,
    },
    /// A package was delivered end-to-end through the chain mesh.
    PackageDelivered {
        /// Physical node that captured the package.
        origin: usize,
        /// Whether it was fog-processed before delivery.
        fog_done: bool,
    },
    /// A package was lost to channel loss on its way out.
    PackageLost {
        /// Physical node that captured the package.
        origin: usize,
    },
    /// A capacitor leaked at slot end; `stored` is the level the node
    /// carries into the next slot.
    CapacitorLeaked {
        /// Physical node index.
        node: usize,
        /// Self-discharge over the slot.
        leaked: Energy,
        /// Stored level after the leak.
        stored: Energy,
    },
    /// Debug builds only: a node's per-slot conservation ledger
    /// settled. [`LedgerObserver`](crate::sim::LedgerObserver) asserts
    /// the identity `harvested + stored_before = consumed + leaked +
    /// lost + stored_after`.
    LedgerSettled {
        /// Physical node index.
        node: usize,
        /// Stored level entering the slot.
        stored_before: Energy,
        /// Income after the harvester front-end.
        harvested: Energy,
        /// Energy delivered to loads (plus the RTC's intake).
        consumed: Energy,
        /// Capacitor self-discharge.
        leaked: Energy,
        /// Conversion losses and rejected income.
        lost: Energy,
        /// Stored level leaving the slot.
        stored_after: Energy,
    },
    /// The slot ended; every per-node ledger has settled.
    SlotEnded {
        /// Slot index.
        slot: u64,
    },
}

impl SimEvent {
    /// Stable snake_case tag used in the JSONL event log.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::SlotBegan { .. } => "slot_began",
            SimEvent::HarvestBooked { .. } => "harvest_booked",
            SimEvent::CapacitorOverflow { .. } => "capacitor_overflow",
            SimEvent::NodeWoke { .. } => "node_woke",
            SimEvent::WakeFailed { .. } => "wake_failed",
            SimEvent::PackageCaptured { .. } => "package_captured",
            SimEvent::PackageShed { .. } => "package_shed",
            SimEvent::TasksMigrated { .. } => "tasks_migrated",
            SimEvent::OffloadDecided { .. } => "offload_decided",
            SimEvent::RadioCharged { .. } => "radio_charged",
            SimEvent::FogProgressed { .. } => "fog_progressed",
            SimEvent::FogCompleted { .. } => "fog_completed",
            SimEvent::PackageDelivered { .. } => "package_delivered",
            SimEvent::PackageLost { .. } => "package_lost",
            SimEvent::CapacitorLeaked { .. } => "capacitor_leaked",
            SimEvent::LedgerSettled { .. } => "ledger_settled",
            SimEvent::SlotEnded { .. } => "slot_ended",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique() {
        let kinds = [
            SimEvent::SlotBegan { slot: 0 }.kind(),
            SimEvent::HarvestBooked {
                node: 0,
                income: Energy::ZERO,
            }
            .kind(),
            SimEvent::CapacitorOverflow {
                node: 0,
                rejected: Energy::ZERO,
            }
            .kind(),
            SimEvent::NodeWoke { node: 0 }.kind(),
            SimEvent::WakeFailed { node: 0 }.kind(),
            SimEvent::PackageCaptured { node: 0 }.kind(),
            SimEvent::PackageShed {
                node: 0,
                count: 1,
                reason: ShedReason::Stale,
            }
            .kind(),
            SimEvent::TasksMigrated {
                interrupted: 0,
                moved: 0,
                hops: 0,
            }
            .kind(),
            SimEvent::OffloadDecided {
                node: 0,
                target: OffloadTarget::Cloud,
                tasks: 0,
                ship_energy: Energy::ZERO,
            }
            .kind(),
            SimEvent::RadioCharged {
                node: 0,
                energy: Energy::ZERO,
                purpose: RadioPurpose::Session,
            }
            .kind(),
            SimEvent::FogProgressed {
                node: 0,
                instructions: 0,
                energy: Energy::ZERO,
            }
            .kind(),
            SimEvent::FogCompleted { node: 0 }.kind(),
            SimEvent::PackageDelivered {
                origin: 0,
                fog_done: true,
            }
            .kind(),
            SimEvent::PackageLost { origin: 0 }.kind(),
            SimEvent::CapacitorLeaked {
                node: 0,
                leaked: Energy::ZERO,
                stored: Energy::ZERO,
            }
            .kind(),
            SimEvent::LedgerSettled {
                node: 0,
                stored_before: Energy::ZERO,
                harvested: Energy::ZERO,
                consumed: Energy::ZERO,
                leaked: Energy::ZERO,
                lost: Energy::ZERO,
                stored_after: Energy::ZERO,
            }
            .kind(),
            SimEvent::SlotEnded { slot: 0 }.kind(),
        ];
        let unique: std::collections::BTreeSet<&str> = kinds.iter().copied().collect();
        assert_eq!(unique.len(), kinds.len());
    }

    #[test]
    fn labels_are_snake_case() {
        for label in [
            ShedReason::BufferFull.label(),
            ShedReason::Stale.label(),
            ShedReason::Volatile.label(),
            RadioPurpose::Session.label(),
            RadioPurpose::Packet.label(),
            RadioPurpose::Relay.label(),
            RadioPurpose::Balance.label(),
            OffloadTarget::Local.label(),
            OffloadTarget::Neighbor.label(),
            OffloadTarget::Cloud.label(),
        ] {
            assert!(label.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}

//! Phase 4 — compute: execute fog tasks within each node's time and
//! energy budget.
//!
//! Spendthrift chooses the frequency level from the effective
//! sustainable power (income plus a damped stored-energy term); the
//! head-of-queue task runs until time, energy or the transmit reserve
//! runs out. Forward progress persists across slots on NVPs. At the
//! tail of the phase, stale pending packages are shed: a node flush
//! with energy ships them raw to the cloud, otherwise "the sampled
//! data are discarded" (§5.1).
//!
//! Both loops skip idle nodes on the FIFO-depth column alone — a node
//! with nothing pending costs one dense `u32` load, not a cold-row
//! visit. Nodes that do work are handled through a [`NodeView`]
//! row lens; the budget spends use the split-borrow free functions
//! because the head package stays borrowed across them.
//!
//! Both loops are per-node independent, so each runs as its own shard
//! sweep when `threads > 1` — execution completes fleet-wide before
//! shedding starts, exactly as the serial order has it, and the stale
//! partition uses the *shard's* package scratch so workers never share
//! a buffer.
//!
//! [`NodeView`]: super::columns::NodeView

use super::columns;
use super::ctx::{Package, SlotCtx};
use super::event::{ShedReason, SimEvent};
use super::shard::{drive, ColumnsShard, Sweep};
use super::Simulator;
use neofog_nvp::SpendthriftPolicy;
use neofog_rf::RfTimings;
use neofog_types::{Duration, Power};

/// The fog-execution sweep: runs head-of-queue tasks on every node
/// with a non-empty FIFO.
struct ExecSweep<'a> {
    slot_len: Duration,
    spendthrift: &'a SpendthriftPolicy,
    rf: &'a RfTimings,
}

impl Sweep for ExecSweep<'_> {
    fn sweep<E: FnMut(SimEvent)>(
        &self,
        shard: &mut ColumnsShard<'_>,
        _pkg: &mut Vec<Package>,
        mut emit: E,
    ) {
        let slot_len = self.slot_len;
        for local in 0..shard.len() {
            if shard.fifo_depth[local] == 0 {
                continue;
            }
            let node = shard.base + local;
            let (view, ledger) = shard.view_ledger(local);
            // Spendthrift samples both income power and the stored-energy
            // level (§2.2/§4): the effective sustainable power this slot is
            // the income plus what the capacitor could contribute, so a
            // node that accumulated for several sleeping slots (NVD4Q
            // clones) boosts its frequency when it finally activates.
            // The capacitor term is damped: the store must last beyond this
            // one slot, so Spendthrift only banks half of it on the level
            // decision.
            let effective = view.income_power
                + Power::from_milliwatts(
                    0.5 * view.available().as_nanojoules() / slot_len.as_micros() as f64,
                );
            let lvl = self.spendthrift.choose(effective);
            // The tier capability scales execution speed (gateways and
            // cloud nodes run faster silicon); sensors are 1.0, so the
            // chain goldens see an exact ×1.0 multiply.
            let (epi, throughput) = (
                lvl.energy_per_inst,
                self.spendthrift.throughput(effective) * view.caps.compute_rate,
            );
            // Keep a transmit reserve so computing never starves shipping.
            let reserve = view.cfg.radio.session_cost(self.rf)
                + view
                    .cfg
                    .radio
                    .packet_cost(self.rf, view.cfg.package.processed_bytes);
            let mut time_left = (throughput * slot_len.as_secs_f64()) as u64;
            while time_left > 0 {
                let Some(pkg) = view.pending.first_mut() else {
                    break;
                };
                let energy_afford =
                    columns::budget_available(*view.direct_left, view.discharge_eff, view.cap)
                        .saturating_sub(reserve)
                        .as_nanojoules()
                        / epi.as_nanojoules();
                let run = pkg
                    .fog_remaining
                    .min(time_left)
                    .min(energy_afford.max(0.0) as u64);
                if run == 0 {
                    break;
                }
                let cost = epi * run as f64;
                if !columns::spend_budget(
                    &mut *view.direct_left,
                    view.direct_eff,
                    view.discharge_eff,
                    &mut *view.cap,
                    ledger,
                    cost,
                ) {
                    break;
                }
                emit(SimEvent::FogProgressed {
                    node,
                    instructions: run,
                    energy: cost,
                });
                pkg.fog_remaining -= run;
                time_left -= run;
                if pkg.fog_remaining == 0 {
                    pkg.fog_done = true;
                    let finished = view.pending.remove(0);
                    view.outbox.push(finished);
                    *view.fifo_depth -= 1;
                    emit(SimEvent::FogCompleted { node });
                }
            }
        }
    }
}

/// The stale-shed sweep: drops (or ships raw) pending packages that
/// never started executing and have aged past the staleness window.
struct ShedSweep {
    slot: u64,
}

impl Sweep for ShedSweep {
    fn sweep<E: FnMut(SimEvent)>(
        &self,
        shard: &mut ColumnsShard<'_>,
        pkg: &mut Vec<Package>,
        mut emit: E,
    ) {
        let stale_after = 20;
        for local in 0..shard.len() {
            if shard.fifo_depth[local] == 0 {
                continue;
            }
            let node = shard.base + local;
            let view = shard.view(local);
            let fog_len = view.cfg.package.fog_instructions;
            // Packages with execution progress are never shed — killing
            // a half-finished head would waste the energy already sunk.
            // Partition through the shard's package scratch (retain
            // keeps order, like the drain/partition it replaces,
            // without allocating).
            let stale = &mut *pkg;
            stale.clear();
            view.pending.retain(|p| {
                let is_stale =
                    p.fog_remaining == fog_len && self.slot.saturating_sub(p.created) > stale_after;
                if is_stale {
                    stale.push(*p);
                }
                !is_stale
            });
            *view.fifo_depth = view.pending.len() as u32;
            if view.cap.fraction() > 0.6 {
                view.outbox.extend_from_slice(stale);
            } else if !stale.is_empty() {
                emit(SimEvent::PackageShed {
                    node,
                    count: stale.len() as u64,
                    reason: ShedReason::Stale,
                });
            }
        }
    }
}

pub(super) fn run(sim: &mut Simulator, ctx: &mut SlotCtx) {
    let fog_capable = sim.cfg.system.is_fog_capable();
    let (parts, mut bus) = sim.split();
    let n_pos = parts.cfg.positions;
    let multiplex = parts.cfg.multiplex as usize;

    if fog_capable {
        let exec = ExecSweep {
            slot_len: parts.cfg.slot_len,
            spendthrift: parts.spendthrift,
            rf: parts.rf,
        };
        drive(
            parts.nodes,
            &mut ctx.ledgers,
            &mut ctx.shards,
            parts.threads,
            n_pos,
            multiplex,
            &mut bus,
            &exec,
        );
    }

    // Stale pending packages: a node flush with energy ships them
    // raw to the cloud; otherwise "the sampled data are discarded"
    // (§5.1). An empty FIFO has nothing to shed and emits nothing —
    // the depth column skips the whole row.
    let shed = ShedSweep { slot: ctx.slot };
    drive(
        parts.nodes,
        &mut ctx.ledgers,
        &mut ctx.shards,
        parts.threads,
        n_pos,
        multiplex,
        &mut bus,
        &shed,
    );
}

//! Per-node, per-slot energy conservation accounting.
//!
//! Every nanojoule that moves during a slot is booked into exactly one
//! bucket of an [`EnergyLedger`]; at slot end the ledger settles into a
//! [`SimEvent::LedgerSettled`] event and the [`LedgerObserver`] asserts
//! the slot balances:
//!
//! ```text
//! harvested + stored_before = consumed + leaked + lost + stored_after
//! ```
//!
//! * `harvested` — income after the harvester front-end.
//! * `consumed` — energy delivered to loads at the point of use (wake,
//!   compute, radio) plus the RTC's intake; the RTC is treated as a
//!   terminal load because everything it banks is spent keeping time.
//! * `leaked` — capacitor self-discharge.
//! * `lost` — conversion losses (direct channel, discharge regulator,
//!   charge path) and energy a full capacitor rejects.
//!
//! In release builds the ledger is a zero-sized no-op and
//! [`EnergyLedger::settlement`] returns `None`, so the accounting is a
//! debug-build safety net rather than a runtime cost. The
//! `NF-LEDGER-001` lint keeps every debit/credit site in the phase
//! files routed through it.

use super::event::SimEvent;
use super::observe::SimObserver;
use neofog_types::Energy;

/// Debug-build slot ledger: real buckets.
#[cfg(debug_assertions)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct EnergyLedger {
    stored_before: Energy,
    harvested: Energy,
    consumed: Energy,
    leaked: Energy,
    lost: Energy,
}

#[cfg(debug_assertions)]
impl EnergyLedger {
    /// Opens a slot ledger against the capacitor's current level.
    pub(crate) fn open(stored: Energy) -> Self {
        EnergyLedger {
            stored_before: stored,
            harvested: Energy::ZERO,
            consumed: Energy::ZERO,
            leaked: Energy::ZERO,
            lost: Energy::ZERO,
        }
    }

    pub(crate) fn credit_harvest(&mut self, e: Energy) {
        self.harvested += e;
    }

    pub(crate) fn debit_consumed(&mut self, e: Energy) {
        self.consumed += e;
    }

    pub(crate) fn debit_leak(&mut self, e: Energy) {
        self.leaked += e;
    }

    pub(crate) fn debit_loss(&mut self, e: Energy) {
        self.lost += e;
    }

    /// Closes the slot: the ledger's buckets become a
    /// [`SimEvent::LedgerSettled`] for the observers to audit.
    pub(crate) fn settlement(&self, node: usize, stored_after: Energy) -> Option<SimEvent> {
        Some(SimEvent::LedgerSettled {
            node,
            stored_before: self.stored_before,
            harvested: self.harvested,
            consumed: self.consumed,
            leaked: self.leaked,
            lost: self.lost,
            stored_after,
        })
    }
}

/// Release builds: the ledger and all bookings compile away.
#[cfg(not(debug_assertions))]
#[derive(Debug, Clone, Copy)]
pub(crate) struct EnergyLedger;

#[cfg(not(debug_assertions))]
impl EnergyLedger {
    #[inline(always)]
    pub(crate) fn open(_stored: Energy) -> Self {
        EnergyLedger
    }

    #[inline(always)]
    pub(crate) fn credit_harvest(&mut self, _e: Energy) {}

    #[inline(always)]
    pub(crate) fn debit_consumed(&mut self, _e: Energy) {}

    #[inline(always)]
    pub(crate) fn debit_leak(&mut self, _e: Energy) {}

    #[inline(always)]
    pub(crate) fn debit_loss(&mut self, _e: Energy) {}

    #[inline(always)]
    pub(crate) fn settlement(&self, _node: usize, _stored_after: Energy) -> Option<SimEvent> {
        None
    }
}

/// Asserts the per-slot conservation identity on every
/// [`SimEvent::LedgerSettled`] event. Attached automatically in debug
/// builds; in release builds the settlement events never fire.
#[derive(Debug, Clone, Copy, Default)]
pub struct LedgerObserver;

impl SimObserver for LedgerObserver {
    fn on_event(&mut self, event: &SimEvent) {
        let SimEvent::LedgerSettled {
            node,
            stored_before,
            harvested,
            consumed,
            leaked,
            lost,
            stored_after,
        } = *event
        else {
            return;
        };
        let inflow = harvested.as_nanojoules() + stored_before.as_nanojoules();
        let outflow = consumed.as_nanojoules()
            + leaked.as_nanojoules()
            + lost.as_nanojoules()
            + stored_after.as_nanojoules();
        let tol = 1e-6 * inflow.abs().max(outflow.abs()).max(1.0);
        debug_assert!(
            (inflow - outflow).abs() <= tol,
            "node {} slot energy not conserved (nJ): harvested {} + before {} != consumed {} \
             + leaked {} + lost {} + after {}",
            node,
            harvested.as_nanojoules(),
            stored_before.as_nanojoules(),
            consumed.as_nanojoules(),
            leaked.as_nanojoules(),
            lost.as_nanojoules(),
            stored_after.as_nanojoules(),
        );
        // Release builds: the assertion compiles away and the bindings
        // would otherwise be unused.
        let _ = (node, inflow, outflow, tol);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_settlement_passes() {
        let mut ledger = EnergyLedger::open(Energy::from_millijoules(10.0));
        ledger.credit_harvest(Energy::from_millijoules(4.0));
        ledger.debit_consumed(Energy::from_millijoules(3.0));
        ledger.debit_leak(Energy::from_millijoules(0.5));
        ledger.debit_loss(Energy::from_millijoules(1.5));
        let mut obs = LedgerObserver;
        let settled = ledger.settlement(0, Energy::from_millijoules(9.0));
        // Debug builds settle into an event; release builds silently.
        assert_eq!(settled.is_some(), cfg!(debug_assertions));
        if let Some(ev) = settled {
            obs.on_event(&ev);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not conserved")]
    fn unbalanced_settlement_panics_in_debug() {
        let ledger = EnergyLedger::open(Energy::from_millijoules(10.0));
        let mut obs = LedgerObserver;
        if let Some(ev) = ledger.settlement(0, Energy::from_millijoules(42.0)) {
            obs.on_event(&ev);
        }
    }
}

//! Shard partitioning for the multi-core slot kernel.
//!
//! The element-wise phases (harvest, wake, the balance-credit charge,
//! compute, transmit's send scan, slot end) are linear sweeps over the
//! [`NodeColumns`] arrays with no cross-node data flow inside a slot
//! phase. This module slices those arrays into contiguous,
//! **position-aligned** shards so the sweeps can run on one scoped
//! thread per shard (`runner::fork::fork_join`) while observers still
//! see exactly the serial event sequence:
//!
//! * **Position alignment** — physical nodes are laid out
//!   position-major (position `p` owns indices
//!   `p·M .. (p+1)·M` for multiplex `M`), and two transmit-phase
//!   writes are per-*position* (`forward_bytes[pos]`, the relay-duty
//!   representative charge). Cutting shard boundaries on position
//!   multiples keeps every write shard-local, so shards share no
//!   mutable state at all.
//! * **Event splicing** — each shard records its events in a reusable
//!   per-shard buffer ([`ShardScratch`]); after the join the
//!   coordinator replays the buffers in ascending shard order. Every
//!   sweep emits in ascending node index within its shard, so the
//!   spliced stream is byte-identical to the serial sweep's — the
//!   FNV-1a event-log goldens hold for every `threads` value.
//! * **Scratch discipline** — shard scratch (event buffer, package
//!   scratch) is owned by [`SlotCtx`](super::ctx::SlotCtx) and reused
//!   across slots, preserving the steady-state zero-allocation
//!   discipline per worker; only the `thread::scope` spawns themselves
//!   allocate, a per-slot constant independent of fleet size.
//!
//! The driver [`drive`] dispatches a phase sweep either inline
//! (`threads == 1`, today's serial path — no spawn, no buffering) or
//! across shards. Phases with extra per-shard state (transmit's
//! `forward_bytes` segments) build their fork manually from
//! [`ShardIter`].

use super::columns::{NodeCold, NodeColumns, NodeView};
use super::ctx::{Package, QUEUE_RESERVE};
use super::event::SimEvent;
use super::ledger::EnergyLedger;
use super::observe::EventBus;
use crate::runner::fork::fork_join;
use neofog_energy::{Rtc, SuperCap};
use neofog_net::slots::SlotSchedule;
use neofog_types::{Energy, Power};

/// Reusable per-shard scratch, owned by the slot context and warmed
/// once; the steady-state loop only refills it.
#[derive(Default)]
pub(crate) struct ShardScratch {
    /// Events recorded by this shard's sweep, spliced into the bus in
    /// shard order after the join.
    pub(crate) events: Vec<SimEvent>,
    /// Per-shard package scratch (transmit ordering, stale shedding) —
    /// the sharded twin of the old `SlotCtx::pkg_scratch`.
    pub(crate) pkg: Vec<Package>,
    /// Transmit-phase partial: total bytes sourced in this shard's
    /// position segment, combined by the fixed-order chain reduction.
    pub(crate) fold_total: u64,
}

impl ShardScratch {
    /// A scratch pre-sized for `nodes_per_shard` nodes, so warm-up
    /// fills rather than grows the buffers.
    pub(crate) fn warmed(nodes_per_shard: usize) -> Self {
        let mut scratch = ShardScratch::default();
        // Two events per node covers the release-build worst case of
        // any single phase (harvest: booked + overflow); debug builds
        // grow once more for the ledger settlements.
        scratch.events.reserve(2 * nodes_per_shard);
        scratch.pkg.reserve(QUEUE_RESERVE);
        scratch
    }
}

/// Disjoint `&mut` slices over one contiguous, position-aligned run of
/// the columns — the view a sharded sweep works on. `base`/`pos_base`
/// translate shard-local indices back to global node indices (for
/// events) and logical positions (for per-position scratch).
pub(crate) struct ColumnsShard<'a> {
    /// Global index of the shard's first physical node.
    pub(crate) base: usize,
    /// First logical position covered by the shard.
    pub(crate) pos_base: usize,
    pub(crate) cap: &'a mut [SuperCap],
    pub(crate) rtc: &'a mut [Rtc],
    pub(crate) schedule: &'a [SlotSchedule],
    pub(crate) position: &'a [usize],
    pub(crate) hops_to_sink: &'a [u32],
    pub(crate) fifo_depth: &'a mut [u32],
    pub(crate) direct_left: &'a mut [Energy],
    pub(crate) awake: &'a mut [bool],
    pub(crate) income_power: &'a mut [Power],
    pub(crate) balance_credit: &'a mut [Energy],
    pub(crate) cold: &'a mut [NodeCold],
    /// This shard's slice of the per-node conservation ledgers.
    pub(crate) ledgers: &'a mut [EnergyLedger],
    /// Direct-channel efficiency (per-run scalar, shared).
    pub(crate) direct_eff: f64,
    /// Discharge-regulator efficiency (per-run scalar, shared).
    pub(crate) discharge_eff: f64,
}

impl ColumnsShard<'_> {
    /// Physical nodes in the shard.
    pub(crate) fn len(&self) -> usize {
        self.cold.len()
    }

    /// A row lens over shard-local node `local` — the sharded twin of
    /// [`NodeColumns::view`], with identical field wiring.
    pub(crate) fn view(&mut self, local: usize) -> NodeView<'_> {
        self.view_ledger(local).0
    }

    /// [`view`](ColumnsShard::view) plus the node's conservation
    /// ledger, split-borrowed so both stay live together.
    pub(crate) fn view_ledger(&mut self, local: usize) -> (NodeView<'_>, &mut EnergyLedger) {
        let cold = &mut self.cold[local];
        let view = NodeView {
            cfg: &cold.cfg,
            cap: &mut self.cap[local],
            pending: &mut cold.pending,
            outbox: &mut cold.outbox,
            rng: &mut cold.rng,
            fifo_depth: &mut self.fifo_depth[local],
            direct_left: &mut self.direct_left[local],
            position: self.position[local],
            hops_to_sink: self.hops_to_sink[local],
            caps: cold.caps,
            income_power: self.income_power[local],
            direct_eff: self.direct_eff,
            discharge_eff: self.discharge_eff,
        };
        (view, &mut self.ledgers[local])
    }
}

/// One full-range shard: the serial path's view over every node
/// (`base == pos_base == 0`), built without any allocation.
pub(crate) fn full<'a>(
    cols: &'a mut NodeColumns,
    ledgers: &'a mut [EnergyLedger],
) -> ColumnsShard<'a> {
    ColumnsShard {
        base: 0,
        pos_base: 0,
        cap: &mut cols.cap,
        rtc: &mut cols.rtc,
        schedule: &cols.schedule,
        position: &cols.position,
        hops_to_sink: &cols.hops_to_sink,
        fifo_depth: &mut cols.fifo_depth,
        direct_left: &mut cols.direct_left,
        awake: &mut cols.awake,
        income_power: &mut cols.income_power,
        balance_credit: &mut cols.balance_credit,
        cold: &mut cols.cold,
        ledgers,
        direct_eff: cols.direct_eff,
        discharge_eff: cols.discharge_eff,
    }
}

/// Positions per shard for `n_pos` positions on `threads` workers
/// (ceiling division; the last shard may be short).
pub(crate) fn pos_per_shard(n_pos: usize, threads: usize) -> usize {
    n_pos.div_ceil(threads.max(1)).max(1)
}

/// Iterator yielding position-aligned [`ColumnsShard`]s, carving the
/// column slices with `split_at_mut` — no allocation per shard.
pub(crate) struct ShardIter<'a> {
    base: usize,
    pos_base: usize,
    nodes_per_shard: usize,
    pos_per_shard: usize,
    direct_eff: f64,
    discharge_eff: f64,
    cap: &'a mut [SuperCap],
    rtc: &'a mut [Rtc],
    schedule: &'a [SlotSchedule],
    position: &'a [usize],
    hops_to_sink: &'a [u32],
    fifo_depth: &'a mut [u32],
    direct_left: &'a mut [Energy],
    awake: &'a mut [bool],
    income_power: &'a mut [Power],
    balance_credit: &'a mut [Energy],
    cold: &'a mut [NodeCold],
    ledgers: &'a mut [EnergyLedger],
}

impl<'a> ShardIter<'a> {
    /// Shards `cols` (and the matching ledger slice) into runs of
    /// `pos_per_shard` logical positions, `pos_per_shard × multiplex`
    /// physical nodes.
    pub(crate) fn new(
        cols: &'a mut NodeColumns,
        ledgers: &'a mut [EnergyLedger],
        pos_per_shard: usize,
        multiplex: usize,
    ) -> ShardIter<'a> {
        ShardIter {
            base: 0,
            pos_base: 0,
            nodes_per_shard: pos_per_shard * multiplex.max(1),
            pos_per_shard,
            direct_eff: cols.direct_eff,
            discharge_eff: cols.discharge_eff,
            cap: &mut cols.cap,
            rtc: &mut cols.rtc,
            schedule: &cols.schedule,
            position: &cols.position,
            hops_to_sink: &cols.hops_to_sink,
            fifo_depth: &mut cols.fifo_depth,
            direct_left: &mut cols.direct_left,
            awake: &mut cols.awake,
            income_power: &mut cols.income_power,
            balance_credit: &mut cols.balance_credit,
            cold: &mut cols.cold,
            ledgers,
        }
    }
}

/// Splits the head `take` elements off a `&mut` slice field in place.
fn take_mut<'a, T>(slot: &mut &'a mut [T], take: usize) -> &'a mut [T] {
    let (head, rest) = std::mem::take(slot).split_at_mut(take);
    *slot = rest;
    head
}

/// Splits the head `take` elements off a shared slice field in place.
fn take_ref<'a, T>(slot: &mut &'a [T], take: usize) -> &'a [T] {
    let (head, rest) = std::mem::take(slot).split_at(take);
    *slot = rest;
    head
}

impl<'a> Iterator for ShardIter<'a> {
    type Item = ColumnsShard<'a>;

    fn next(&mut self) -> Option<ColumnsShard<'a>> {
        if self.cold.is_empty() {
            return None;
        }
        let take = self.nodes_per_shard.min(self.cold.len());
        let shard = ColumnsShard {
            base: self.base,
            pos_base: self.pos_base,
            cap: take_mut(&mut self.cap, take),
            rtc: take_mut(&mut self.rtc, take),
            schedule: take_ref(&mut self.schedule, take),
            position: take_ref(&mut self.position, take),
            hops_to_sink: take_ref(&mut self.hops_to_sink, take),
            fifo_depth: take_mut(&mut self.fifo_depth, take),
            direct_left: take_mut(&mut self.direct_left, take),
            awake: take_mut(&mut self.awake, take),
            income_power: take_mut(&mut self.income_power, take),
            balance_credit: take_mut(&mut self.balance_credit, take),
            cold: take_mut(&mut self.cold, take),
            ledgers: take_mut(&mut self.ledgers, take),
            direct_eff: self.direct_eff,
            discharge_eff: self.discharge_eff,
        };
        self.base += take;
        self.pos_base += self.pos_per_shard;
        Some(shard)
    }
}

/// A phase sweep runnable on one shard: the body of the serial loop,
/// parameterized over the event sink so the serial path emits straight
/// to the bus and the sharded path records into the shard buffer.
pub(crate) trait Sweep: Sync {
    /// Sweeps one shard, emitting events in ascending node order.
    fn sweep<E: FnMut(SimEvent)>(
        &self,
        shard: &mut ColumnsShard<'_>,
        pkg: &mut Vec<Package>,
        emit: E,
    );
}

/// Runs `sweep` over the whole fleet: inline on the serial path
/// (`threads <= 1`), or forked across position-aligned shards with the
/// per-shard event buffers spliced back in shard order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive<S: Sweep>(
    cols: &mut NodeColumns,
    ledgers: &mut [EnergyLedger],
    scratches: &mut [ShardScratch],
    threads: usize,
    n_pos: usize,
    multiplex: usize,
    bus: &mut EventBus<'_>,
    sweep: &S,
) {
    let shards = threads.min(n_pos).max(1);
    if shards <= 1 {
        let mut shard = full(cols, ledgers);
        let pkg = &mut scratches[0].pkg;
        sweep.sweep(&mut shard, pkg, |e| bus.emit(&e));
        return;
    }
    let per = pos_per_shard(n_pos, shards);
    fork_join(
        ShardIter::new(cols, ledgers, per, multiplex)
            .zip(scratches.iter_mut())
            .map(|(mut shard, scratch)| {
                let ShardScratch { events, pkg, .. } = scratch;
                move || sweep.sweep(&mut shard, pkg, |e| events.push(e))
            }),
    );
    splice(scratches, bus);
}

/// Replays (and clears) the per-shard event buffers in ascending shard
/// order — the spliced stream equals the serial emission sequence.
pub(crate) fn splice(scratches: &mut [ShardScratch], bus: &mut EventBus<'_>) {
    for scratch in scratches {
        for event in &scratch.events {
            bus.emit(event);
        }
        scratch.events.clear();
    }
}

//! The work-stealing execution pool.
//!
//! Jobs live in a shared slice; workers claim the next unclaimed index
//! from one atomic counter, so there is no static chunking and no
//! straggler chunk — a slow simulation occupies exactly one worker
//! while the others keep draining the queue. Completed jobs flow back
//! to the coordinating thread over a channel, which re-sequences them
//! and folds the reducer in job-index order (see
//! [`Reduce`]'s ordering contract).

use super::progress::Progress;
use super::reduce::Reduce;
use crate::sim::{SimConfig, Simulator};
use neofog_types::{NeoFogError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};

/// How a batch is spread over worker threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads to spawn; `None` uses the machine's available
    /// parallelism (the pre-runner 16-thread cap is gone — fleet
    /// sweeps scale to whatever the host offers).
    pub workers: Option<usize>,
}

impl PoolConfig {
    /// A pool with an explicit worker count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        PoolConfig {
            workers: Some(workers.max(1)),
        }
    }

    /// Worker threads actually spawned for `jobs` jobs: the configured
    /// count (or the available parallelism), but never more threads
    /// than jobs.
    #[must_use]
    pub fn resolve(&self, jobs: usize) -> usize {
        let auto = || std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
        self.workers.unwrap_or_else(auto).clamp(1, jobs.max(1))
    }
}

/// One completion notice from a worker to the coordinator.
enum WorkerMsg<I> {
    /// A worker claimed the job at this index.
    Started(usize),
    /// The job at this index finished and was mapped to its item.
    Finished(usize, I),
    /// The job at this index failed to build its simulator.
    Failed(usize, NeoFogError),
}

/// Runs a batch of simulations on the work-stealing pool, reducing
/// each result as soon as its simulation finishes.
///
/// `reducer` receives every result through [`Reduce::map`] (on the
/// worker thread, dropping the full [`crate::sim::SimResult`]
/// immediately) and [`Reduce::fold`] (on this thread, in ascending job
/// order). `progress` observes claims and completions; pass
/// [`super::NoProgress`] to observe nothing.
///
/// # Errors
///
/// Returns the configuration error of the lowest-indexed failing job
/// ([`Simulator::new`] is the only fallible step), cancelling the rest
/// of the batch cooperatively, and [`NeoFogError::Internal`] if a
/// worker thread panics or a result goes missing.
pub fn run_batch<R: Reduce>(
    configs: &[SimConfig],
    reducer: R,
    pool: &PoolConfig,
    progress: &mut dyn Progress,
) -> Result<R::Output> {
    let total = configs.len();
    let mut reducer = reducer;
    if total == 0 {
        return Ok(reducer.finish());
    }
    let workers = pool.resolve(total);
    let next_job = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let (tx, rx) = std::sync::mpsc::channel::<WorkerMsg<R::Item>>();
    let (next_job, cancelled) = (&next_job, &cancelled);
    std::thread::scope(move |scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let tx = tx.clone();
                scope.spawn(move || worker_loop::<R>(configs, next_job, cancelled, &tx))
            })
            .collect();
        // The coordinator's receive loop ends when every worker has
        // dropped its sender clone; keeping this one would deadlock it.
        drop(tx);
        let folded = drain::<R>(&rx, &mut reducer, cancelled, progress, total);
        for handle in handles {
            if handle.join().is_err() {
                return Err(NeoFogError::internal("simulation worker thread panicked"));
            }
        }
        if folded? != total {
            return Err(NeoFogError::internal("simulation batch lost a result"));
        }
        Ok(reducer.finish())
    })
}

/// Worker body: claim → simulate → map → send, until the queue is
/// empty, the batch is cancelled, or the coordinator hung up.
fn worker_loop<R: Reduce>(
    configs: &[SimConfig],
    next_job: &AtomicUsize,
    cancelled: &AtomicBool,
    tx: &Sender<WorkerMsg<R::Item>>,
) {
    loop {
        if cancelled.load(Ordering::Relaxed) {
            return;
        }
        let index = next_job.fetch_add(1, Ordering::Relaxed);
        let Some(cfg) = configs.get(index) else {
            return;
        };
        if tx.send(WorkerMsg::Started(index)).is_err() {
            return;
        }
        let msg = match Simulator::new(cfg.clone()) {
            Ok(sim) => WorkerMsg::Finished(index, R::map(sim.run())),
            Err(error) => WorkerMsg::Failed(index, error),
        };
        if tx.send(msg).is_err() {
            return;
        }
    }
}

/// Coordinator body: re-sequences out-of-order completions and folds
/// the reducer in ascending job order. Returns how many items were
/// folded (== the batch size on success).
fn drain<R: Reduce>(
    rx: &Receiver<WorkerMsg<R::Item>>,
    reducer: &mut R,
    cancelled: &AtomicBool,
    progress: &mut dyn Progress,
    total: usize,
) -> Result<usize> {
    // Completions that arrived ahead of the next fold index. Bounded
    // in practice by the worker count: a job can only overtake jobs
    // that are still running.
    let mut ahead: BTreeMap<usize, R::Item> = BTreeMap::new();
    let mut next_fold = 0usize;
    let mut finished = 0usize;
    let mut first_error: Option<(usize, NeoFogError)> = None;
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Started(index) => progress.on_started(index, total),
            WorkerMsg::Finished(index, item) => {
                finished += 1;
                progress.on_finished(index, finished, total);
                if first_error.is_none() {
                    ahead.insert(index, item);
                    while let Some(item) = ahead.remove(&next_fold) {
                        reducer.fold(next_fold, item);
                        next_fold += 1;
                    }
                }
            }
            WorkerMsg::Failed(index, error) => {
                // Cooperative cancellation: workers stop claiming, the
                // in-flight simulations finish and are discarded. Keep
                // the lowest-indexed error so the surfaced failure does
                // not depend on which worker raced ahead.
                cancelled.store(true, Ordering::Relaxed);
                if first_error.as_ref().is_none_or(|&(i, _)| index < i) {
                    first_error = Some((index, error));
                }
                ahead.clear();
            }
        }
    }
    match first_error {
        Some((_, error)) => Err(error),
        None => Ok(next_fold),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{CollectAll, NoProgress};
    use super::*;
    use crate::node::SystemKind;
    use neofog_energy::Scenario;
    use neofog_types::Duration;

    fn quick(seed: u64, slots: u64) -> SimConfig {
        let mut cfg =
            SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, seed);
        cfg.slots = slots;
        cfg
    }

    #[test]
    fn empty_batch_finishes_the_reducer() {
        let out = run_batch(
            &[],
            CollectAll::default(),
            &PoolConfig::default(),
            &mut NoProgress,
        )
        .expect("empty batch runs");
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_never_exceeds_jobs_or_drops_to_zero() {
        assert_eq!(PoolConfig::with_workers(8).resolve(3), 3);
        assert_eq!(PoolConfig::with_workers(0).resolve(3), 1);
        assert_eq!(PoolConfig::with_workers(2).resolve(100), 2);
        assert!(PoolConfig::default().resolve(100) >= 1);
    }

    #[test]
    fn first_error_cancels_and_surfaces_lowest_index() {
        // Index 1 is invalid (sub-second slot rejects the distributed
        // balancer); the batch must error rather than lose a result.
        let mut bad = quick(2, 40);
        bad.slot_len = Duration::from_micros(500_000);
        let configs = vec![quick(1, 40), bad, quick(3, 40)];
        let err = run_batch(
            &configs,
            CollectAll::default(),
            &PoolConfig::with_workers(2),
            &mut NoProgress,
        )
        .expect_err("invalid config must fail the batch");
        assert!(matches!(err, NeoFogError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn collect_all_preserves_input_order() {
        let configs = vec![quick(5, 60), quick(6, 10), quick(7, 30)];
        let seeds: Vec<u64> = configs.iter().map(|c| c.seed).collect();
        let results = run_batch(
            &configs,
            CollectAll::default(),
            &PoolConfig::with_workers(3),
            &mut NoProgress,
        )
        .expect("batch runs");
        let got: Vec<u64> = results.iter().map(|r| r.config.seed).collect();
        assert_eq!(got, seeds);
    }
}

//! Reducer-based aggregation of batch results.

use crate::sim::SimResult;

/// Streams a batch of [`SimResult`]s into an aggregate without keeping
/// them all alive.
///
/// [`Reduce::map`] runs on the worker thread that finished the
/// simulation and compresses the full result into [`Reduce::Item`];
/// the `SimResult` — per-node metrics and any per-slot stored-energy
/// series — is dropped the moment `map` returns. Items are then folded
/// on the coordinating thread.
///
/// # Ordering
///
/// The runner guarantees [`Reduce::fold`] is called in ascending job
/// order `0, 1, 2, …` with no gaps, regardless of which workers finish
/// first (out-of-order completions are buffered). Reducers may
/// therefore depend on fold order — `CollectAll` simply pushes — and
/// aggregation stays deterministic at any worker count.
pub trait Reduce {
    /// Per-job summary shipped from the worker to the coordinator.
    /// Keep it small: batch memory is `O(jobs × size_of::<Item>())`.
    type Item: Send;
    /// The final aggregate [`Reduce::finish`] produces.
    type Output;

    /// Compresses one finished simulation into its reduced item (runs
    /// on the worker thread; the full result is dropped on return).
    fn map(result: SimResult) -> Self::Item;

    /// Folds one item into the aggregate. Called in ascending job
    /// order starting at 0, with no gaps.
    fn fold(&mut self, index: usize, item: Self::Item);

    /// Consumes the reducer into the final aggregate after the last
    /// fold.
    fn finish(self) -> Self::Output;
}

/// The order-preserving identity reducer: keeps every full
/// [`SimResult`], in input order.
///
/// This is what `experiment::run_many` folds with — callers that
/// genuinely need every result (the figure helpers read several
/// metrics per run) get the exact pre-runner behavior. Fleet-sized
/// batches should prefer a summarizing reducer instead.
#[derive(Debug, Default)]
pub struct CollectAll {
    results: Vec<SimResult>,
}

impl Reduce for CollectAll {
    type Item = SimResult;
    type Output = Vec<SimResult>;

    fn map(result: SimResult) -> SimResult {
        result
    }

    fn fold(&mut self, index: usize, item: SimResult) {
        debug_assert_eq!(index, self.results.len(), "runner folds in job order");
        self.results.push(item);
    }

    fn finish(self) -> Vec<SimResult> {
        self.results
    }
}

//! Streaming batch execution: a work-stealing job pool plus
//! reducer-based aggregation.
//!
//! The paper's evaluation runs "1000 to 5000" node simulators
//! simultaneously (§4). Before this subsystem existed, batch execution
//! lived inside `experiment::run_many`, which statically chunked the
//! job list across at most 16 threads (one slow chunk stragglers the
//! whole batch) and materialized every full [`SimResult`] — per-node
//! metrics plus the optional per-slot stored-energy series — before
//! any aggregation happened. Fleet-sized sweeps were therefore both
//! latency-bound by the unluckiest chunk and memory-bound by results
//! nobody needed in full.
//!
//! The runner splits the problem into three small, composable pieces:
//!
//! * [`pool`] — a work-stealing execution pool: workers claim jobs one
//!   at a time from a shared atomic index, so a slow simulation only
//!   occupies its own worker while the rest of the pool drains the
//!   remaining jobs. The worker count is configurable via
//!   [`PoolConfig`] (defaulting to the machine's available
//!   parallelism, uncapped).
//! * [`reduce`] — the [`Reduce`] trait: each finished [`SimResult`] is
//!   mapped to a small per-job item *on the worker thread* (dropping
//!   the full result immediately) and folded into the aggregate on the
//!   coordinating thread in job-index order. [`CollectAll`] is the
//!   identity reducer behind `experiment::run_many`; `fleet` keeps
//!   only three scalars per chain.
//! * [`progress`] — the [`Progress`] observer hook: jobs started /
//!   finished callbacks on the coordinating thread, with
//!   [`StderrTicker`] as the ready-made ticker for the long-running
//!   figure binaries. [`NoProgress`] discards everything.
//! * [`fork`] — scoped fork-join for *intra*-simulation parallelism:
//!   the sharded slot kernel runs its per-shard column sweeps through
//!   [`fork_join`], joining before the phase pipeline continues (see
//!   `sim/shard.rs` and DESIGN.md §16).
//!
//! # Determinism contract
//!
//! Simulations themselves are pure functions of their [`SimConfig`]
//! (seeded RNG, no wall clock), so parallelism can only break
//! reproducibility through aggregation order. The runner therefore
//! guarantees that [`Reduce::fold`] is invoked in ascending job order
//! `0, 1, 2, …` with no gaps, buffering out-of-order completions until
//! the next index arrives. A batch folded on one worker is
//! bit-for-bit identical to the same batch folded on sixteen — pinned
//! by the golden tests in `tests/runner_determinism.rs`.
//!
//! # Cancellation
//!
//! The first job failure (a [`Simulator::new`] configuration error)
//! cancels the batch cooperatively: a shared flag stops workers from
//! claiming further jobs, in-flight simulations run to completion and
//! are discarded, and the error with the smallest job index observed
//! is returned.
//!
//! [`SimConfig`]: crate::sim::SimConfig
//! [`SimResult`]: crate::sim::SimResult
//! [`Simulator::new`]: crate::sim::Simulator::new

pub mod fork;
pub mod pool;
pub mod progress;
pub mod reduce;

pub use fork::fork_join;
pub use pool::{run_batch, PoolConfig};
pub use progress::{NoProgress, Progress, StderrTicker};
pub use reduce::{CollectAll, Reduce};

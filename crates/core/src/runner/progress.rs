//! Progress observation for batch runs.

/// Observer of batch execution progress.
///
/// Both callbacks run on the coordinating thread (never concurrently),
/// so implementations need no synchronization. Jobs *start* in claim
/// order but may *finish* in any order; the runner's fold order (see
/// [`crate::runner::Reduce`]) is unaffected by anything an observer
/// does.
pub trait Progress {
    /// A worker claimed job `index` of `total`.
    fn on_started(&mut self, index: usize, total: usize) {
        let _ = (index, total);
    }

    /// Job `index` finished its simulation; `finished` of `total` jobs
    /// are now done (counting this one).
    fn on_finished(&mut self, index: usize, finished: usize, total: usize) {
        let _ = (index, finished, total);
    }
}

/// Discards all progress callbacks.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl Progress for NoProgress {}

/// A coarse completion ticker for the long-running figure binaries:
/// prints `label: finished/total` to stderr roughly every 5 % of the
/// batch (and always for the final job).
///
/// The cadence is count-based, not time-based: the core crate stays
/// free of wall-clock sources (`NF-DET-001`), and a fleet of uniform
/// chains ticks at an even rate anyway.
#[derive(Debug, Clone, Default)]
pub struct StderrTicker {
    label: String,
}

impl StderrTicker {
    /// A ticker whose lines are prefixed with `label`.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        StderrTicker {
            label: label.into(),
        }
    }
}

impl Progress for StderrTicker {
    fn on_finished(&mut self, _index: usize, finished: usize, total: usize) {
        let step = (total / 20).max(1);
        if finished.is_multiple_of(step) || finished == total {
            eprintln!("{}: {finished}/{total} simulations done", self.label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_callbacks_are_noops() {
        // Compiles and runs without any state: the trait's defaults
        // discard their arguments.
        NoProgress.on_started(0, 3);
        NoProgress.on_finished(0, 1, 3);
    }

    #[test]
    fn ticker_survives_tiny_batches() {
        // total < 20 must not divide by zero.
        let mut ticker = StderrTicker::new("test");
        ticker.on_finished(0, 1, 1);
    }
}

//! Scoped fork-join: the intra-simulation sibling of the
//! work-stealing pool.
//!
//! [`run_batch`](super::run_batch) parallelizes *across* simulations —
//! each worker owns a whole [`Simulator`] and results are re-sequenced
//! by job index. The sharded slot kernel needs the opposite shape:
//! one simulation, its columnar node state partitioned into contiguous
//! shards, and one closure per shard running to completion before the
//! coordinating thread continues the phase pipeline. That is a
//! fork-join, not a queue: every task must finish before the next
//! phase (or the event splice) may observe the columns, so work
//! stealing buys nothing and the join barrier is the point.
//!
//! The tasks borrow non-`'static` state (`&mut` column slices, shard
//! scratch), and the workspace forbids `unsafe`, so a persistent
//! worker pool cannot hold them across calls; [`std::thread::scope`]
//! is the sanctioned safe mechanism. Spawn cost is paid per fork —
//! a few microseconds per thread, amortized over column sweeps that
//! walk tens of thousands of nodes per shard (callers keep the serial
//! path for `threads = 1`, which never reaches this module).
//!
//! Determinism contract: tasks share no mutable state (each owns
//! disjoint `&mut` shard slices), so scheduling order is unobservable;
//! ordered output is restored by the caller splicing per-shard event
//! buffers in shard order after the join. The NF-PAR lint rules root
//! here (and at the shard sweeps), flagging interior mutability or
//! unordered iteration reachable from any forked task.
//!
//! [`Simulator`]: crate::sim::Simulator

/// Runs every task on its own scoped thread and joins them all before
/// returning.
///
/// A panicking task propagates the panic to the caller at the join
/// (the remaining tasks still run to completion first), matching the
/// behavior of a panic inside a serial sweep.
pub fn fork_join<I, F>(tasks: I)
where
    I: IntoIterator<Item = F>,
    F: FnOnce() + Send,
{
    std::thread::scope(|scope| {
        for task in tasks {
            scope.spawn(task);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_run_and_join_before_return() {
        let mut counters = [0u64; 8];
        fork_join(
            counters
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| move || *slot = i as u64 + 1),
        );
        // The join barrier guarantees every write is visible here.
        assert_eq!(counters, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn disjoint_mut_slices_are_forked_safely() {
        let mut data = vec![1u64; 1000];
        fork_join(data.chunks_mut(250).map(|chunk| {
            move || {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
            }
        }));
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn empty_task_set_is_a_no_op() {
        fork_join(std::iter::empty::<fn()>());
    }
}

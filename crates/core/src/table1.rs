//! Table 1: functionality and components of currently deployed
//! energy-harvesting WSN systems.

use serde::Serialize;

/// One deployed system of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DeployedSystem {
    /// System name.
    pub name: &'static str,
    /// Harvested energy sources.
    pub energy_source: &'static str,
    /// Sensor complement.
    pub sensors: &'static str,
    /// Network topology.
    pub topology: &'static str,
    /// What the nodes transmit.
    pub transmitted_data: &'static str,
    /// `true` when the deployment behaves as a chain mesh, the shape
    /// NEOFog's intra-chain optimizations target.
    pub chain_mesh: bool,
}

/// The five rows of Table 1.
#[must_use]
pub fn deployed_systems() -> Vec<DeployedSystem> {
    vec![
        DeployedSystem {
            name: "Bridge Health Monitor",
            energy_source: "Solar, Piezoelectric",
            sensors: "Accelerometers, piezo-sensors",
            topology: "Zigbee Chain Mesh",
            transmitted_data: "Raw sampled data",
            chain_mesh: true,
        },
        DeployedSystem {
            name: "Wearable UV Meter",
            energy_source: "Solar",
            sensors: "UV sensor",
            topology: "Star",
            transmitted_data: "Raw data",
            chain_mesh: false,
        },
        DeployedSystem {
            name: "Joint-less Railway Temp. Monitor",
            energy_source: "Solar",
            sensors: "Multiple temperature sensors",
            topology: "Zigbee Chain Mesh, GPRS",
            transmitted_data: "Raw uncompressed data",
            chain_mesh: true,
        },
        DeployedSystem {
            name: "Machine Health Monitor",
            energy_source: "Piezoelectric, thermal, RF",
            sensors: "3-axis accelerometer, vibration sensors, temperature",
            topology: "Star, bus or tree",
            transmitted_data: "Raw data",
            chain_mesh: false,
        },
        DeployedSystem {
            name: "RF Powered Camera",
            energy_source: "RF Source, WiFi",
            sensors: "Image sensor",
            topology: "Point-to-point backscatter",
            transmitted_data: "Raw image pixels",
            chain_mesh: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_five_rows() {
        assert_eq!(deployed_systems().len(), 5);
    }

    #[test]
    fn all_transmit_raw_data() {
        // The table's point: every deployed system ships *raw* data —
        // the behaviour NEOFog's buffered fog computing replaces.
        for sys in deployed_systems() {
            assert!(
                sys.transmitted_data.to_lowercase().contains("raw"),
                "{}",
                sys.name
            );
        }
    }

    #[test]
    fn chain_mesh_systems_identified() {
        let chains: Vec<&str> = deployed_systems()
            .iter()
            .filter(|s| s.chain_mesh)
            .map(|s| s.name)
            .collect();
        assert_eq!(
            chains,
            vec!["Bridge Health Monitor", "Joint-less Railway Temp. Monitor"]
        );
    }
}

//! NVD4Q: node virtualization for QoS (paper §3.3, Algorithm 2).
//!
//! Naively densifying a Zigbee deployment *hurts*: the protocol greedily
//! hops to the nearest node, inflating a 10-node chain's 9 jumps into
//! ~25 (Figure 7). NVD4Q instead keeps the *logical* topology fixed:
//! each logical node is implemented by a set of physical **clones**
//! that share the NVRF controller state (channel, routes, association
//! lists — cloneable precisely because it lives in nonvolatile
//! registers) and take turns by phase-offset time-division
//! multiplexing. Each physical node therefore activates `1/M` as often,
//! giving it `M×` longer to accumulate energy per activation — the
//! mechanism behind Figure 13's low-power QoS gains.

use neofog_net::slots::{clone_schedules, SlotSchedule};
use neofog_rf::{NvRf, RadioCost};
use neofog_types::{LogicalId, NeoFogError, NodeId, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The clones implementing one logical node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloneSet {
    /// The logical node these clones implement.
    pub logical: LogicalId,
    /// Member physical nodes, in phase order (member `k` wakes at
    /// slots ≡ k mod M).
    pub members: Vec<NodeId>,
    /// Per-member schedules.
    pub schedules: Vec<SlotSchedule>,
}

impl CloneSet {
    /// Creates a clone set over the given members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    #[must_use]
    pub fn new(logical: LogicalId, members: Vec<NodeId>) -> Self {
        assert!(!members.is_empty(), "a clone set needs at least one member");
        let schedules = clone_schedules(members.len() as u32);
        CloneSet {
            logical,
            members,
            schedules,
        }
    }

    /// The multiplexing factor `M`.
    #[must_use]
    pub fn factor(&self) -> usize {
        self.members.len()
    }

    /// The physical node on duty at an absolute slot.
    #[must_use]
    pub fn active_member(&self, slot: u64) -> NodeId {
        let k = (slot % self.members.len() as u64) as usize;
        self.members[k]
    }

    /// The schedule of a given member.
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::NotFound`] if the node is not a member.
    pub fn schedule_of(&self, node: NodeId) -> Result<SlotSchedule> {
        let idx = self
            .members
            .iter()
            .position(|&m| m == node)
            .ok_or_else(|| NeoFogError::not_found(format!("{node} in clone set")))?;
        Ok(self.schedules[idx])
    }
}

/// Manages clone sets for a network and implements Algorithm 2's join
/// protocol.
#[derive(Debug, Clone, Default)]
pub struct VirtualizationManager {
    sets: Vec<CloneSet>,
    by_member: BTreeMap<NodeId, usize>,
}

impl VirtualizationManager {
    /// Creates an empty manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds uniform clone sets: logical node `i` of `logical_count`
    /// is implemented by `factor` physical nodes with consecutive ids
    /// (`i·factor .. (i+1)·factor`). This is the Figure 12/13 sweep
    /// configuration (100 % = factor 1, 300 % = factor 3, ...).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn uniform(logical_count: u32, factor: u32) -> Self {
        assert!(factor > 0, "multiplexing factor must be positive");
        let mut mgr = Self::new();
        for l in 0..logical_count {
            let members: Vec<NodeId> = (0..factor).map(|k| NodeId::new(l * factor + k)).collect();
            mgr.add_set(CloneSet::new(LogicalId::new(l), members));
        }
        mgr
    }

    /// Registers a clone set.
    ///
    /// # Panics
    ///
    /// Panics if any member already belongs to another set.
    pub fn add_set(&mut self, set: CloneSet) {
        let idx = self.sets.len();
        for &m in &set.members {
            let prev = self.by_member.insert(m, idx);
            assert!(prev.is_none(), "node {m} already in a clone set");
        }
        self.sets.push(set);
    }

    /// All clone sets.
    #[must_use]
    pub fn sets(&self) -> &[CloneSet] {
        &self.sets
    }

    /// The clone set a physical node belongs to, if any.
    #[must_use]
    pub fn set_of(&self, node: NodeId) -> Option<&CloneSet> {
        self.by_member.get(&node).map(|&i| &self.sets[i])
    }

    /// Algorithm 2 lines 1–4, executed on `joiner`: open the NVRF,
    /// clone the nearest member's controller state, synchronize the
    /// timer, get a unique phase. Returns the radio cost of the clone
    /// operation.
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::NotFound`] if `target_set` does not
    /// exist, or an error from the NVRF clone if the source is
    /// unconfigured.
    pub fn join(
        &mut self,
        logical: LogicalId,
        joiner_id: NodeId,
        joiner_rf: &mut NvRf,
        source_rf: &NvRf,
    ) -> Result<RadioCost> {
        let idx = self
            .sets
            .iter()
            .position(|s| s.logical == logical)
            .ok_or_else(|| NeoFogError::not_found(format!("clone set {logical}")))?;
        if self.by_member.contains_key(&joiner_id) {
            return Err(NeoFogError::invalid_config(format!(
                "{joiner_id} already belongs to a clone set"
            )));
        }
        // Clone the NVRF state (channel, network epoch, association).
        let cost = joiner_rf.clone_state_from(source_rf)?;
        // Extend the set and recompute the phase partition: the clones
        // of one logical node share the interval M and occupy phases
        // 0..M uniquely.
        let set = &mut self.sets[idx];
        set.members.push(joiner_id);
        set.schedules = clone_schedules(set.members.len() as u32);
        let m = set.schedules[set.members.len() - 1];
        joiner_rf.set_schedule(m.interval(), m.phase())?;
        self.by_member.insert(joiner_id, idx);
        // Existing members' NVRFs get the new interval at their next
        // software-requested update (Algorithm 2 line 6); the manager
        // records it immediately.
        Ok(cost)
    }

    /// Total physical nodes managed.
    #[must_use]
    pub fn physical_count(&self) -> usize {
        self.by_member.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neofog_rf::{RadioModel, RfConfig};

    #[test]
    fn uniform_sets_partition_ids() {
        let mgr = VirtualizationManager::uniform(10, 3);
        assert_eq!(mgr.sets().len(), 10);
        assert_eq!(mgr.physical_count(), 30);
        let set = mgr.set_of(NodeId::new(7)).unwrap();
        assert_eq!(set.logical, LogicalId::new(2));
        assert_eq!(
            set.members,
            vec![NodeId::new(6), NodeId::new(7), NodeId::new(8)]
        );
    }

    #[test]
    fn exactly_one_clone_active_per_slot() {
        let set = CloneSet::new(
            LogicalId::new(0),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        );
        for slot in 0..12u64 {
            let active = set.active_member(slot);
            let awake: Vec<NodeId> = set
                .members
                .iter()
                .zip(&set.schedules)
                .filter(|(_, s)| s.wakes_at(slot))
                .map(|(&m, _)| m)
                .collect();
            assert_eq!(awake, vec![active], "slot {slot}");
        }
    }

    #[test]
    fn members_rotate_round_robin() {
        let set = CloneSet::new(LogicalId::new(0), vec![NodeId::new(4), NodeId::new(5)]);
        assert_eq!(set.active_member(0), NodeId::new(4));
        assert_eq!(set.active_member(1), NodeId::new(5));
        assert_eq!(set.active_member(2), NodeId::new(4));
    }

    #[test]
    fn join_clones_state_and_assigns_phase() {
        let mut mgr = VirtualizationManager::new();
        mgr.add_set(CloneSet::new(LogicalId::new(0), vec![NodeId::new(0)]));
        let mut source = NvRf::paper_default();
        source.initialize(RfConfig {
            channel: 20,
            ..RfConfig::new(5)
        });
        let mut joiner = NvRf::paper_default();
        let cost = mgr
            .join(LogicalId::new(0), NodeId::new(1), &mut joiner, &source)
            .unwrap();
        assert!(cost.time > neofog_types::Duration::ZERO);
        assert_eq!(joiner.config().unwrap().channel, 20);
        assert_eq!(joiner.config().unwrap().wake_interval_ticks, 2);
        assert_eq!(joiner.config().unwrap().phase_offset_ticks, 1);
        let set = mgr.set_of(NodeId::new(1)).unwrap();
        assert_eq!(set.factor(), 2);
    }

    #[test]
    fn join_rejects_double_membership() {
        let mut mgr = VirtualizationManager::uniform(1, 2);
        let mut src = NvRf::paper_default();
        src.initialize(RfConfig::new(1));
        let mut rf = NvRf::paper_default();
        let err = mgr
            .join(LogicalId::new(0), NodeId::new(1), &mut rf, &src)
            .unwrap_err();
        assert!(matches!(err, NeoFogError::InvalidConfig { .. }));
    }

    #[test]
    fn join_requires_configured_source() {
        let mut mgr = VirtualizationManager::uniform(1, 1);
        let src = NvRf::paper_default(); // never initialized
        let mut rf = NvRf::paper_default();
        assert!(mgr
            .join(LogicalId::new(0), NodeId::new(9), &mut rf, &src)
            .is_err());
    }

    #[test]
    fn unknown_logical_errors() {
        let mut mgr = VirtualizationManager::new();
        let mut src = NvRf::paper_default();
        src.initialize(RfConfig::new(1));
        let mut rf = NvRf::paper_default();
        assert!(mgr
            .join(LogicalId::new(3), NodeId::new(0), &mut rf, &src)
            .is_err());
    }
}

//! Plain-text renderers for experiment outputs.
//!
//! Every figure/table binary in `neofog-bench` prints through these so
//! the regenerated rows/series look alike and are easy to diff against
//! the paper.

use std::fmt::Write as _;

/// Renders a simple ASCII table with a header row.
///
/// # Examples
///
/// ```
/// use neofog_core::report::render_table;
///
/// let s = render_table(
///     &["system", "fog"],
///     &[vec!["NEOFog".to_string(), "5018".to_string()]],
/// );
/// assert!(s.contains("NEOFog"));
/// assert!(s.lines().count() >= 3);
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().take(cols).enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{:-<width$}", "", width = w + 2);
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {h:width$} ", width = widths[i]);
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().take(cols).enumerate() {
            let _ = write!(out, "| {cell:width$} ", width = widths[i]);
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Renders a numeric series as an ASCII sparkline-style bar chart, one
/// row per point, scaled to `max_width` characters.
#[must_use]
pub fn render_bars(labels: &[String], values: &[f64], max_width: usize) -> String {
    let peak = values.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    let label_w = labels.iter().map(String::len).max().unwrap_or(0);
    let mut out = String::new();
    for (label, &v) in labels.iter().zip(values) {
        let bar = ((v / peak) * max_width as f64).round() as usize;
        let _ = writeln!(out, "{label:label_w$} | {:bar$} {v:.0}", "", bar = bar);
    }
    // Replace the spaces used for the bar body with block characters.
    out.lines()
        .map(|line| {
            if let Some(pos) = line.find("| ") {
                let (head, tail) = line.split_at(pos + 2);
                let digits_at = tail.rfind(' ').map_or(0, |p| p);
                let (bar, num) = tail.split_at(digits_at);
                format!("{head}{}{num}", "#".repeat(bar.len()))
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Formats a ratio as the paper prints gains, e.g. `2.1X`.
#[must_use]
pub fn gain(value: f64) -> String {
    format!("{value:.1}X")
}

/// Formats a signed percentage with one decimal, e.g. `-55.2%`.
#[must_use]
pub fn percent(value: f64) -> String {
    format!("{:+.1}%", value * 100.0)
}

/// Downsamples a series to at most `n` points by averaging buckets —
/// used to print Figure 9's 1500-slot traces as readable curves.
#[must_use]
pub fn downsample(series: &[f32], n: usize) -> Vec<f32> {
    if series.is_empty() || n == 0 {
        return Vec::new();
    }
    let bucket = series.len().div_ceil(n);
    series
        .chunks(bucket)
        .map(|c| c.iter().sum::<f32>() / c.len() as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = render_table(
            &["a", "long header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        // All lines share a width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        assert!(s.contains("long header"));
    }

    #[test]
    fn bars_scale_to_peak() {
        let s = render_bars(&["a".into(), "b".into()], &[50.0, 100.0], 10);
        let a_bar = s.lines().next().unwrap().matches('#').count();
        let b_bar = s.lines().nth(1).unwrap().matches('#').count();
        assert_eq!(b_bar, 10);
        assert_eq!(a_bar, 5);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(gain(2.13), "2.1X");
        assert_eq!(percent(-0.552), "-55.2%");
    }

    #[test]
    fn downsample_preserves_mean() {
        let series: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let ds = downsample(&series, 10);
        assert_eq!(ds.len(), 10);
        let mean: f32 = ds.iter().sum::<f32>() / ds.len() as f32;
        assert!((mean - 49.5).abs() < 0.6);
    }

    #[test]
    fn downsample_edge_cases() {
        assert!(downsample(&[], 5).is_empty());
        assert!(downsample(&[1.0], 0).is_empty());
        assert_eq!(downsample(&[1.0, 3.0], 5), vec![1.0, 3.0]);
    }
}

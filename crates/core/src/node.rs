//! Node-level system kinds and their per-activation cost structure
//! (paper Figure 4).
//!
//! Three node designs are compared throughout the evaluation:
//!
//! * **NOS-VP** — volatile MCU, software RF, single-channel front-end.
//!   Every activation pays the VP restart, the full software RF
//!   initialization (531 ms) and a 255 ms per-transmission protocol
//!   session. Raw samples go to the cloud; there is no fog computing.
//! * **NOS-NVP** — nonvolatile processor, RF states restored from NVM
//!   "directly" so "the data transmission time reduces to 33 ms";
//!   still capacitor-bound (NOS front-end). Performs in-fog
//!   processing with the baseline tree balancer.
//! * **FIOS-NEOFog** — NVP + NVRF + dual-channel front-end. NVRF
//!   self-reinitializes in 1.74 ms and transmits in
//!   `(0.156 + 0.248·N)` ms; complex fog computation runs on the
//!   direct source-to-load channel; distributed load balancing.

use neofog_energy::FrontEnd;
use neofog_nvp::ProcessorKind;
use neofog_rf::RfTimings;
use neofog_types::{Duration, Energy, Power};
use serde::{Deserialize, Serialize};

/// The three evaluated node designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Normally-off volatile-processor node.
    NosVp,
    /// Normally-off nonvolatile-processor node (baseline NVP).
    NosNvp,
    /// Frequently-intermittently-on NEOFog node (NVP + NVRF + FIOS).
    FiosNeoFog,
}

impl SystemKind {
    /// All three systems in presentation order.
    pub const ALL: [SystemKind; 3] = [
        SystemKind::NosVp,
        SystemKind::NosNvp,
        SystemKind::FiosNeoFog,
    ];

    /// Display label used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::NosVp => "NOS-VP",
            SystemKind::NosNvp => "NOS-NVP",
            SystemKind::FiosNeoFog => "FIOS-NEOFog",
        }
    }

    /// The processor technology of this design.
    #[must_use]
    pub fn processor(self) -> ProcessorKind {
        match self {
            SystemKind::NosVp => ProcessorKind::Volatile,
            _ => ProcessorKind::Nonvolatile,
        }
    }

    /// The front-end circuit of this design (Figure 5).
    #[must_use]
    pub fn front_end(self) -> FrontEnd {
        match self {
            SystemKind::FiosNeoFog => FrontEnd::fios(),
            _ => FrontEnd::nos(),
        }
    }

    /// `true` when this design performs in-fog processing.
    #[must_use]
    pub fn is_fog_capable(self) -> bool {
        !matches!(self, SystemKind::NosVp)
    }

    /// `true` when node state (queues, RF config) survives power-down.
    #[must_use]
    pub fn retains_state(self) -> bool {
        !matches!(self, SystemKind::NosVp)
    }

    /// Per-slot radio session cost: what it takes to bring the radio
    /// up once this slot before any packet moves.
    ///
    /// * VP: 531 ms software initialization.
    /// * NOS-NVP: 33 ms NVM-restore initialization (Figure 4).
    /// * NEOFog: 1.74 ms NVRF start + 0.156 ms — the NVRF
    ///   self-reinitializes with no processor involvement.
    #[must_use]
    pub fn tx_session_cost(self, rf: &RfTimings) -> Energy {
        self.radio_control().session_cost(rf)
    }

    /// The radio-control scheme each design ships with. The VP pays
    /// 531 ms software init plus a 170 ms network rebuild (Figure 4:
    /// "Rebuild RF (channels, join route etc.)", 30 ms-1 s) because it
    /// loses association state at power-down; the NVP variants restore
    /// it from NVM or the NVRF.
    #[must_use]
    pub fn radio_control(self) -> RadioControl {
        match self {
            SystemKind::NosVp => RadioControl::Software,
            SystemKind::NosNvp => RadioControl::NvmRestore,
            SystemKind::FiosNeoFog => RadioControl::Nvrf,
        }
    }

    /// Marginal cost of transmitting one `bytes`-byte packet within an
    /// open session.
    ///
    /// * VP: the 255 ms per-transmission software protocol overhead
    ///   plus airtime.
    /// * NOS-NVP: one 33 ms NVM-driven transmission per packet plus
    ///   airtime.
    /// * NEOFog: the NVRF handling (0.216 ms/byte) plus airtime.
    #[must_use]
    pub fn per_packet_tx_cost(self, rf: &RfTimings, bytes: u32) -> Energy {
        self.radio_control().packet_cost(rf, bytes)
    }

    /// Cost of receiving one `bytes`-byte packet (airtime at RX power,
    /// identical for all designs — the transceiver is the same chip).
    #[must_use]
    pub fn rx_cost(self, rf: &RfTimings, bytes: u32) -> Energy {
        rf.on_air_energy(bytes)
    }

    /// Minimum effective energy for the node to wake, boot and sample
    /// this slot. The NVP designs commit to buffering and fog work per
    /// activation, so their threshold is higher — the evaluation's
    /// "with a higher activation threshold, NVP nodes ... only exhibit
    /// 12383 wakeups" (vs 13656 for the VP).
    #[must_use]
    pub fn wake_threshold(self) -> Energy {
        match self {
            SystemKind::NosVp => Energy::from_millijoules(0.5),
            SystemKind::NosNvp | SystemKind::FiosNeoFog => Energy::from_millijoules(2.0),
        }
    }

    /// Boot + sample energy actually drawn on a wakeup (processor
    /// restart/restore plus a sensing burst).
    #[must_use]
    pub fn wake_cost(self) -> Energy {
        let sample = Energy::from_microjoules(60.0); // sensing burst + ADC
        match self {
            // 300 us restart at MCU power, plus sensing.
            SystemKind::NosVp => {
                Power::from_milliwatts(0.209) * Duration::from_micros(300) + sample
            }
            // 32 us / 7 us restores are negligible next to sensing.
            SystemKind::NosNvp | SystemKind::FiosNeoFog => {
                Power::from_milliwatts(0.209) * Duration::from_micros(32) + sample
            }
        }
    }
}

/// How the node's radio is (re)initialized — the axis the NVRF ablates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioControl {
    /// Host-software initialization: 531 ms init + 170 ms network
    /// rebuild per session, 255 ms protocol per packet.
    Software,
    /// NVP restoring RF state from NVM: 33 ms per session and packet.
    NvmRestore,
    /// The NVRF controller: 1.9 ms self-reinitialized sessions,
    /// 0.248 ms/byte packets.
    Nvrf,
}

impl RadioControl {
    /// Per-slot session cost for this control scheme.
    #[must_use]
    pub fn session_cost(self, rf: &RfTimings) -> Energy {
        match self {
            RadioControl::Software => {
                rf.active_power * (rf.software_init + Duration::from_millis(170))
            }
            RadioControl::NvmRestore => rf.active_power * Duration::from_millis(33),
            RadioControl::Nvrf => rf.active_power * (rf.nvrf_start + rf.nvrf_tx_fixed),
        }
    }

    /// Marginal per-packet cost within an open session.
    #[must_use]
    pub fn packet_cost(self, rf: &RfTimings, bytes: u32) -> Energy {
        let air = rf.on_air_energy(bytes);
        match self {
            RadioControl::Software => rf.active_power * rf.software_tx_fixed + air,
            RadioControl::NvmRestore => rf.active_power * Duration::from_millis(33) + air,
            RadioControl::Nvrf => {
                rf.active_power * Duration::from_micros(u64::from(bytes) * rf.nvrf_tx_per_byte_us)
                    + air
            }
        }
    }
}

/// What one "data package" of the evaluation is: a burst of sensor
/// samples that either travels raw to the cloud or is reduced in the
/// fog first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackageSpec {
    /// Bytes of the raw package (cloud path).
    pub raw_bytes: u32,
    /// Bytes after in-fog processing + compression.
    pub processed_bytes: u32,
    /// NVP instructions of the in-fog processing task.
    pub fog_instructions: u64,
}

impl PackageSpec {
    /// The evaluation default: a 64-byte raw burst reduced to 8 bytes
    /// by a 6 M-instruction offloaded kernel (≈15 mJ / 72 s at the
    /// 1 MHz base operating point, so a node needs several slots or a
    /// Spendthrift frequency boost per package — the contention that
    /// makes load balancing and the fog-vs-cloud trade interesting).
    #[must_use]
    pub fn paper_default() -> Self {
        PackageSpec {
            raw_bytes: 64,
            processed_bytes: 8,
            fog_instructions: 6_000_000,
        }
    }

    /// The heavier forest/bridge kernel (volumetric-map reconstruction
    /// and the three structural-strength models respectively): 12 M
    /// instructions per package, so even a 4x-boosted NVP needs three
    /// slots per package.
    #[must_use]
    pub fn heavy() -> Self {
        PackageSpec {
            fog_instructions: 12_000_000,
            ..Self::paper_default()
        }
    }

    /// Compression/reduction ratio of the fog path.
    #[must_use]
    pub fn reduction_ratio(&self) -> f64 {
        f64::from(self.processed_bytes) / f64::from(self.raw_bytes)
    }
}

/// Per-node platform capabilities, in the spirit of FogLite's
/// `NODES_CONFIG` rows: how fast the node computes relative to the
/// paper's sensor MCU, its radio front-end power envelope and its link
/// rates. One row is derived per topology tier (see
/// [`TierCapabilities`]) and carried on every node's cold state.
///
/// The radio fields feed the Kryszkiewicz et al. offload energy model
/// (arXiv:2104.12913): shipping a task's data costs the front-end
/// `max_power × transfer_time + idle_power × base_latency`, where the
/// transfer time is rate-dependent — see
/// [`NodeCapabilities::ship_energy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCapabilities {
    /// Execution-speed multiplier on the Spendthrift throughput
    /// (1.0 = the paper's sensor node).
    pub compute_rate: f64,
    /// Radio front-end idle (listening/settling) power.
    pub idle_power: Power,
    /// Radio front-end transmit power at full rate.
    pub max_power: Power,
    /// Uplink rate toward the sink, in Mbit/s.
    pub uplink_mbps: f64,
    /// Downlink rate from the sink, in Mbit/s.
    pub downlink_mbps: f64,
    /// Fixed per-transfer latency (association, settling).
    pub base_latency: Duration,
}

impl NodeCapabilities {
    /// Front-end energy to ship `bytes` one hop up the node's uplink,
    /// per the Kryszkiewicz model: transmit power for the
    /// rate-dependent transfer time, plus idle power over the fixed
    /// latency while the front-end waits on the link.
    #[must_use]
    pub fn ship_energy(&self, bytes: u32) -> Energy {
        let bits = f64::from(bytes) * 8.0;
        let transfer_secs = bits / (self.uplink_mbps.max(1e-9) * 1e6);
        let tx = Energy::from_nanojoules(self.max_power.as_watts() * transfer_secs * 1e9);
        tx + self.idle_power * self.base_latency
    }
}

/// The capability table of a topology: one [`NodeCapabilities`] row
/// per [`NodeTier`](neofog_net::NodeTier). Chains are all-sensor, so
/// the sensor row is the only one the paper's goldens ever exercise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierCapabilities {
    /// Harvesting sensor nodes (the paper's node; `compute_rate` 1.0).
    pub sensor: NodeCapabilities,
    /// Mains-assisted gateways.
    pub gateway: NodeCapabilities,
    /// The cloud endpoint.
    pub cloud: NodeCapabilities,
}

impl TierCapabilities {
    /// FogLite-inspired defaults: sensors at the paper's operating
    /// point on a slow LPWAN-class uplink, gateways 2× faster on a
    /// broadband link, the cloud 8× faster behind a WAN round-trip.
    #[must_use]
    pub fn paper_default() -> Self {
        TierCapabilities {
            sensor: NodeCapabilities {
                compute_rate: 1.0,
                idle_power: Power::from_milliwatts(4.0),
                max_power: Power::from_milliwatts(89.1),
                uplink_mbps: 0.25,
                downlink_mbps: 0.25,
                base_latency: Duration::from_millis(2),
            },
            gateway: NodeCapabilities {
                compute_rate: 2.0,
                idle_power: Power::from_milliwatts(12.0),
                max_power: Power::from_milliwatts(180.0),
                uplink_mbps: 8.0,
                downlink_mbps: 8.0,
                base_latency: Duration::from_millis(5),
            },
            cloud: NodeCapabilities {
                compute_rate: 8.0,
                idle_power: Power::from_milliwatts(50.0),
                max_power: Power::from_milliwatts(500.0),
                uplink_mbps: 100.0,
                downlink_mbps: 100.0,
                base_latency: Duration::from_millis(20),
            },
        }
    }

    /// The capability row of a tier.
    #[must_use]
    pub fn for_tier(&self, tier: neofog_net::NodeTier) -> NodeCapabilities {
        match tier {
            neofog_net::NodeTier::Sensor => self.sensor,
            neofog_net::NodeTier::Gateway => self.gateway,
            neofog_net::NodeTier::Cloud => self.cloud,
        }
    }
}

/// Full configuration of one simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Which system design the node implements.
    pub system: SystemKind,
    /// Radio-control scheme (defaults to the system's; override for
    /// ablation studies).
    pub radio: RadioControl,
    /// Front-end circuit (defaults to the system's; override for
    /// ablation studies).
    pub front_end: FrontEnd,
    /// Main super-capacitor capacity.
    pub cap_capacity: Energy,
    /// Main super-capacitor leakage.
    pub cap_leak: Power,
    /// Initial charge fraction in `[0, 1]`.
    pub initial_charge: f64,
    /// The package/fog-task geometry.
    pub package: PackageSpec,
    /// Harvester conversion efficiency applied to the ambient trace.
    pub harvester_efficiency: f64,
}

impl NodeConfig {
    /// Evaluation defaults for a system kind.
    #[must_use]
    pub fn paper_default(system: SystemKind) -> Self {
        NodeConfig {
            system,
            radio: system.radio_control(),
            front_end: system.front_end(),
            cap_capacity: Energy::from_millijoules(200.0),
            cap_leak: Power::from_microwatts(5.0),
            initial_charge: 0.5,
            package: PackageSpec::paper_default(),
            harvester_efficiency: 0.85,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rf() -> RfTimings {
        RfTimings::paper_default()
    }

    #[test]
    fn session_costs_order_vp_gg_nvp_gg_neofog() {
        let vp = SystemKind::NosVp.tx_session_cost(&rf());
        let nvp = SystemKind::NosNvp.tx_session_cost(&rf());
        let neo = SystemKind::FiosNeoFog.tx_session_cost(&rf());
        assert!(vp > nvp * 10.0);
        assert!(nvp > neo * 10.0);
        // Absolute anchors: (531+170) ms & 33 ms at 89.1 mW.
        assert!((vp.as_millijoules() - 62.4591).abs() < 1e-9);
        assert!((nvp.as_millijoules() - 2.9403).abs() < 1e-9);
    }

    #[test]
    fn per_packet_costs_follow_the_formulas() {
        let neo = SystemKind::FiosNeoFog.per_packet_tx_cost(&rf(), 8);
        // 8 bytes * (0.216 + 0.032) ms * 89.1 mW = 176.8 uJ.
        assert!((neo.as_microjoules() - 176.7744).abs() < 1e-6);
        let vp = SystemKind::NosVp.per_packet_tx_cost(&rf(), 64);
        assert!(vp.as_millijoules() > 22.0);
    }

    #[test]
    fn nvp_threshold_exceeds_vp() {
        assert!(SystemKind::NosNvp.wake_threshold() > SystemKind::NosVp.wake_threshold());
        assert_eq!(
            SystemKind::NosNvp.wake_threshold(),
            SystemKind::FiosNeoFog.wake_threshold()
        );
    }

    #[test]
    fn only_vp_is_volatile_and_fogless() {
        assert!(!SystemKind::NosVp.is_fog_capable());
        assert!(!SystemKind::NosVp.retains_state());
        for s in [SystemKind::NosNvp, SystemKind::FiosNeoFog] {
            assert!(s.is_fog_capable());
            assert!(s.retains_state());
        }
    }

    #[test]
    fn front_ends_match_figure5() {
        assert!(!SystemKind::NosVp.front_end().has_direct_channel());
        assert!(!SystemKind::NosNvp.front_end().has_direct_channel());
        assert!(SystemKind::FiosNeoFog.front_end().has_direct_channel());
    }

    #[test]
    fn package_reduction_is_8x() {
        let p = PackageSpec::paper_default();
        assert!((p.reduction_ratio() - 0.125).abs() < 1e-12);
        // The fog task at the base operating point costs ~15 mJ.
        let e = p.fog_instructions as f64 * 2.508e-6; // mJ
        assert!((e - 15.048).abs() < 1e-9);
    }

    #[test]
    fn ship_energy_follows_the_front_end_model() {
        let caps = TierCapabilities::paper_default().sensor;
        // 64 bytes = 512 bits over 0.25 Mbit/s = 2.048 ms at 89.1 mW,
        // plus 2 ms idle at 4 mW.
        let e = caps.ship_energy(64);
        let expected_uj = 89.1 * 2.048 + 4.0 * 2.0;
        assert!((e.as_microjoules() - expected_uj).abs() < 1e-6);
        // Faster uplinks ship the same bytes cheaper.
        let cloud = TierCapabilities::paper_default().cloud;
        let scaled = NodeCapabilities {
            uplink_mbps: cloud.uplink_mbps,
            ..caps
        };
        assert!(scaled.ship_energy(64) < e);
    }

    #[test]
    fn tier_lookup_matches_fields() {
        let t = TierCapabilities::paper_default();
        assert_eq!(t.for_tier(neofog_net::NodeTier::Sensor), t.sensor);
        assert_eq!(t.for_tier(neofog_net::NodeTier::Gateway), t.gateway);
        assert_eq!(t.for_tier(neofog_net::NodeTier::Cloud), t.cloud);
        assert!((t.sensor.compute_rate - 1.0).abs() < f64::EPSILON);
        assert!(t.cloud.compute_rate > t.gateway.compute_rate);
    }

    #[test]
    fn wake_cost_below_threshold() {
        for s in SystemKind::ALL {
            assert!(s.wake_cost() < s.wake_threshold());
        }
    }
}

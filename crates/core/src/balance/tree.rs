//! The baseline up-down multi-level tree balancer (Figure 6(c)).
//!
//! A conventional WSN load balancer: the chain is recursively bisected;
//! the node at the middle of each segment acts as that segment's
//! coordinator, gathering load information *up* the tree and pushing a
//! proportional redistribution *down*. Its two weaknesses — exactly the
//! ones the paper's distributed scheme removes — are modelled
//! faithfully:
//!
//! 1. If a coordinator lacks the energy to run its balancing step, its
//!    whole segment goes unbalanced this round ("an up-down binary
//!    scheduling that is only partly achieved (left 12 tasks are all
//!    missed) when the assigned node 4 running parts of the load
//!    balance is low on stored energy").
//! 2. Redistribution is proportional to raw capacity and ignores the
//!    per-node Spendthrift efficiency, and tasks may travel many hops.

use super::{BalanceReport, ChainBalanceInput, FogTask, LoadBalancer};
use neofog_types::{Energy, SimRng};

/// Baseline hierarchical balancer.
#[derive(Debug, Clone, Copy)]
pub struct TreeBalancer {
    /// Energy a coordinator must hold to run its step.
    coordination_cost: Energy,
}

impl TreeBalancer {
    /// Creates a balancer with the default coordination cost (one RF
    /// exchange plus bookkeeping, ~1 mJ).
    #[must_use]
    pub fn new() -> Self {
        TreeBalancer {
            coordination_cost: Energy::from_millijoules(1.0),
        }
    }

    /// Overrides the coordination cost.
    #[must_use]
    pub fn with_coordination_cost(mut self, cost: Energy) -> Self {
        self.coordination_cost = cost;
        self
    }

    fn balance_segment(
        &self,
        chain: &mut ChainBalanceInput,
        lo: usize,
        hi: usize,
        report: &mut BalanceReport,
    ) {
        if hi - lo <= 1 {
            return;
        }
        let mid = (lo + hi) / 2;
        let coordinator_ok = {
            let c = &chain.nodes[mid];
            c.alive && c.spare_energy >= self.coordination_cost
        };
        if coordinator_ok {
            self.redistribute(chain, lo, hi, report);
        } else {
            report.interrupted_regions += 1;
        }
        self.balance_segment(chain, lo, mid, report);
        self.balance_segment(chain, mid, hi, report);
    }

    /// Proportional redistribution within `[lo, hi)`: pool every task,
    /// then refill nodes up to their affordable capacity in chain
    /// order; the remainder round-robins.
    fn redistribute(
        &self,
        chain: &mut ChainBalanceInput,
        lo: usize,
        hi: usize,
        report: &mut BalanceReport,
    ) {
        // Pool tasks with their origin index for hop accounting.
        let mut pool: Vec<(usize, FogTask)> = Vec::new();
        for (idx, node) in chain.nodes[lo..hi].iter_mut().enumerate() {
            if node.alive {
                for t in node.tasks.drain(..) {
                    pool.push((lo + idx, t));
                }
            }
        }
        // Largest tasks first gives the proportional fill a fighting
        // chance of packing.
        pool.sort_by_key(|(_, task)| std::cmp::Reverse(task.instructions));
        let mut remaining: Vec<u64> = chain.nodes[lo..hi]
            .iter()
            .map(|n| {
                if n.alive {
                    n.affordable_instructions()
                } else {
                    0
                }
            })
            .collect();
        let mut leftovers: Vec<(usize, FogTask)> = Vec::new();
        for (origin, task) in pool {
            // First node (by capacity left) that can take it.
            let target = (0..remaining.len())
                .filter(|&i| remaining[i] >= task.instructions)
                .max_by_key(|&i| remaining[i]);
            match target {
                Some(i) => {
                    remaining[i] -= task.instructions;
                    let dest = lo + i;
                    if dest != origin {
                        report.tasks_moved += 1;
                        report.instructions_moved += task.instructions;
                        report.transfer_hops += dest.abs_diff(origin) as u64;
                    }
                    chain.nodes[dest].tasks.push(task);
                }
                None => leftovers.push((origin, task)),
            }
        }
        // Unplaceable tasks return to their origins.
        for (origin, task) in leftovers {
            chain.nodes[origin].tasks.push(task);
        }
    }
}

impl Default for TreeBalancer {
    fn default() -> Self {
        Self::new()
    }
}

impl LoadBalancer for TreeBalancer {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn balance(&self, chain: &mut ChainBalanceInput, _rng: &mut SimRng) -> BalanceReport {
        let mut report = BalanceReport::default();
        let n = chain.nodes.len();
        self.balance_segment(chain, 0, n, &mut report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::test_util::{chain, completable};

    #[test]
    fn moves_tasks_from_starved_to_rich() {
        // Node 0 has tasks but no energy; node 2 has energy, no tasks.
        let mut input = chain(&[0.1, 5.0, 10.0], &[4, 0, 0], 100_000);
        let before = completable(&input);
        let report = TreeBalancer::new().balance(&mut input, &mut SimRng::seed_from(1));
        let after = completable(&input);
        assert!(after > before, "balancing should increase completable work");
        assert!(report.tasks_moved > 0);
    }

    #[test]
    fn dead_coordinator_blocks_its_region() {
        // 4 nodes: coordinator of [0,4) is node 2; kill it.
        let mut input = chain(&[0.1, 20.0, 0.0, 20.0], &[6, 0, 0, 0], 100_000);
        input.nodes[2].alive = false;
        let report = TreeBalancer::new().balance(&mut input, &mut SimRng::seed_from(1));
        assert!(report.interrupted_regions > 0);
    }

    #[test]
    fn respects_capacity() {
        let mut input = chain(&[1.0, 1.0], &[10, 10], 1_000_000);
        TreeBalancer::new().balance(&mut input, &mut SimRng::seed_from(1));
        // ~1 mJ affords ~398 k instructions; no node should be loaded
        // beyond roughly one task over capacity (tasks are indivisible
        // and unplaceable ones return home).
        for n in &input.nodes {
            assert!(n.tasks.len() <= 10 + 10);
        }
        // Task count conserved.
        let total: usize = input.nodes.iter().map(|n| n.tasks.len()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn task_conservation_under_randomized_chains() {
        let mut rng = SimRng::seed_from(42);
        for _ in 0..50 {
            let energies: Vec<f64> = (0..8).map(|_| rng.uniform(0.0, 20.0)).collect();
            let tasks: Vec<usize> = (0..8).map(|_| rng.index(6)).collect();
            let mut input = chain(&energies, &tasks, 200_000);
            let before: u64 = input
                .nodes
                .iter()
                .map(super::super::NodeBalanceState::queued_instructions)
                .sum();
            TreeBalancer::new().balance(&mut input, &mut SimRng::seed_from(7));
            let after: u64 = input
                .nodes
                .iter()
                .map(super::super::NodeBalanceState::queued_instructions)
                .sum();
            assert_eq!(before, after, "instructions must be conserved");
        }
    }

    #[test]
    fn hops_reflect_distance() {
        // Task must travel from node 0 to node 3 (coordinators at 1
        // and 2 are healthy enough to run the protocol but poor enough
        // that node 3 wins the capacity race).
        let mut input = chain(&[0.0, 2.0, 2.0, 50.0], &[1, 0, 0, 0], 100_000);
        input.nodes[0].alive = true; // alive but no energy
        let report = TreeBalancer::new().balance(&mut input, &mut SimRng::seed_from(1));
        assert_eq!(report.tasks_moved, 1);
        assert_eq!(report.transfer_hops, 3);
    }
}

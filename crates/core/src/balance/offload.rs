//! The offload balancer: compute-here vs. ship-to-neighbour vs.
//! ship-to-cloud, priced by the radio front-end.
//!
//! The chain balancers (tree, distributed) shift tasks between
//! adjacent chain neighbours; this balancer instead walks the route
//! plan of an arbitrary topology and answers the Kryszkiewicz et al.
//! question (arXiv:2104.12913) for every overloaded node: is it
//! cheaper to burn the deficit's compute energy locally over future
//! slots, to ship the raw data one hop to the next relay, or to ship
//! it all the way to the sink? Shipping is priced by the front-end
//! model on each node's [`NodeCapabilities`] row — transmit power over
//! the rate-dependent transfer time plus idle power over the link
//! latency — and remote computation on a mains-powered tier (gateway,
//! cloud) costs the harvesting fleet nothing.
//!
//! Tasks only ever move to *alive* balance states (positions with an
//! awake representative): the simulator rebuilds the pending queues
//! from the post-balance task lists, so a task parked on a dead state
//! would silently lose its package.

use super::{BalanceReport, ChainBalanceInput, LoadBalancer, RouteContext};
use neofog_net::NO_HOP;
use neofog_types::{Energy, SimRng};
use serde::{Deserialize, Serialize};

/// Where an offload decision sends a node's surplus tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OffloadTarget {
    /// Keep the tasks; local compute (over future slots) is cheapest.
    Local,
    /// Ship raw data one hop to the next relay toward the sink.
    Neighbor,
    /// Ship raw data the whole route to the sink position.
    Cloud,
}

impl OffloadTarget {
    /// Stable lowercase label used in the JSONL event log.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OffloadTarget::Local => "local",
            OffloadTarget::Neighbor => "neighbor",
            OffloadTarget::Cloud => "cloud",
        }
    }
}

/// One resolved offload choice, reported back to the simulator so it
/// can emit a typed event against the deciding node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadDecision {
    /// Logical position that had the deficit.
    pub position: usize,
    /// Where its surplus tasks went.
    pub target: OffloadTarget,
    /// Tasks moved (0 for a [`OffloadTarget::Local`] decision).
    pub tasks: u64,
    /// Radio front-end energy the shipping is estimated to cost.
    pub ship_energy: Energy,
}

/// The topology-aware offload balancer (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct OffloadBalancer;

impl OffloadBalancer {
    /// Creates the balancer.
    #[must_use]
    pub fn new() -> Self {
        OffloadBalancer
    }
}

/// Estimated front-end energy to ship one raw package from `pos` to
/// `target`, `hops` hops away, using the shipping node's own uplink
/// for every hop (a deliberate simplification: relay uplinks along the
/// route are at least as fast in every built-in capability table).
fn ship_cost(route: &RouteContext<'_>, pos: usize, hops: u32) -> Energy {
    route.caps[pos].ship_energy(route.raw_bytes) * f64::from(hops)
}

/// Remote-compute energy for `instructions` on the state at `target`:
/// free on mains-powered tiers, the state's own efficiency otherwise.
fn remote_compute(
    chain: &ChainBalanceInput,
    route: &RouteContext<'_>,
    target: usize,
    instructions: u64,
) -> Energy {
    if route.tier[target].is_mains_powered() {
        Energy::ZERO
    } else {
        let eff = chain.nodes[target].efficiency.max(f64::MIN_POSITIVE);
        Energy::from_nanojoules(instructions as f64 / eff)
    }
}

impl LoadBalancer for OffloadBalancer {
    fn name(&self) -> &'static str {
        "offload"
    }

    /// Without a route plan there is nothing to price against: the
    /// plain chain entry point is a no-op. The simulator always calls
    /// [`LoadBalancer::balance_routed`].
    fn balance(&self, _chain: &mut ChainBalanceInput, _rng: &mut SimRng) -> BalanceReport {
        BalanceReport::default()
    }

    fn balance_routed(
        &self,
        chain: &mut ChainBalanceInput,
        route: &RouteContext<'_>,
        _rng: &mut SimRng,
        decisions: &mut Vec<OffloadDecision>,
    ) -> BalanceReport {
        let mut report = BalanceReport::default();
        let n = chain.nodes.len();
        for pos in 0..n {
            if !chain.nodes[pos].alive || chain.nodes[pos].tasks.is_empty() {
                continue;
            }
            let surplus = chain.nodes[pos].surplus();
            if surplus >= 0 {
                continue;
            }
            let deficit = surplus.unsigned_abs();
            let own_eff = chain.nodes[pos].efficiency.max(f64::MIN_POSITIVE);
            let local = Energy::from_nanojoules(deficit as f64 / own_eff);
            // Candidate sink route: every topology puts the sink at
            // position 0; only worth considering when it is alive and
            // not this node itself.
            let sink_hops = route.hops_to_sink[pos];
            let cloud = (pos != 0 && chain.nodes[0].alive).then(|| {
                ship_cost(route, pos, sink_hops) + remote_compute(chain, route, 0, deficit)
            });
            // Candidate next relay (distinct from the sink route when
            // more than one hop out).
            let nh = route.next_hop[pos];
            let neighbor = (nh != NO_HOP && nh != 0)
                .then_some(nh as usize)
                .filter(|&t| chain.nodes[t].alive)
                .map(|t| {
                    (
                        t,
                        ship_cost(route, pos, 1) + remote_compute(chain, route, t, deficit),
                    )
                });
            // Cheapest beneficial target, ties to the fewer-hop option.
            let mut target = OffloadTarget::Local;
            let mut best = local;
            let mut dest = pos;
            let mut dest_hops = 0u32;
            if let Some((t, cost)) = neighbor {
                if cost < best {
                    (target, best, dest, dest_hops) = (OffloadTarget::Neighbor, cost, t, 1);
                }
            }
            if let Some(cost) = cloud {
                if cost < best {
                    (target, dest, dest_hops) = (OffloadTarget::Cloud, 0, sink_hops);
                }
            }
            let mut moved = 0u64;
            let mut moved_inst = 0u64;
            let mut ship_energy = Energy::ZERO;
            if target != OffloadTarget::Local {
                let per_task = ship_cost(route, pos, dest_hops);
                let mains_dest = route.tier[dest].is_mains_powered();
                // Move whole tasks off the back of the queue until the
                // node is back within its affordable budget (or a
                // battery-powered destination runs out of surplus).
                while chain.nodes[pos].surplus() < 0 {
                    if !mains_dest {
                        let room = chain.nodes[dest].surplus();
                        let next_inst = match chain.nodes[pos].tasks.last() {
                            Some(t) => t.instructions,
                            None => break,
                        };
                        if room < next_inst as i64 {
                            break;
                        }
                    }
                    let Some(task) = chain.nodes[pos].tasks.pop() else {
                        break;
                    };
                    moved += 1;
                    moved_inst += task.instructions;
                    ship_energy += per_task;
                    chain.nodes[dest].tasks.push(task);
                }
                report.tasks_moved += moved;
                report.instructions_moved += moved_inst;
                report.transfer_hops += moved * u64::from(dest_hops);
                if moved == 0 {
                    // Beneficial on paper but the destination had no
                    // room: record the hold as a local decision.
                    target = OffloadTarget::Local;
                }
            }
            decisions.push(OffloadDecision {
                position: pos,
                target,
                tasks: moved,
                ship_energy,
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::test_util::chain;
    use crate::node::TierCapabilities;
    use neofog_net::{NodeTier, TopologySpec};

    fn route_over<'a>(
        plan_hops: &'a [u32],
        plan_next: &'a [u32],
        tier: &'a [NodeTier],
        caps: &'a [crate::node::NodeCapabilities],
    ) -> RouteContext<'a> {
        RouteContext {
            hops_to_sink: plan_hops,
            next_hop: plan_next,
            tier,
            caps,
            raw_bytes: 64,
        }
    }

    /// A 4-node chain where node 3 is starved and node 0 (the sink,
    /// mains-powered gateway here) is rich: the whole backlog should
    /// ship to the sink, because remote compute there is free.
    #[test]
    fn starved_node_ships_to_mains_sink() {
        let mut input = chain(&[50.0, 10.0, 10.0, 0.1], &[0, 0, 0, 4], 1_000_000);
        let plan = TopologySpec::Chain.build(4).expect("chain");
        let tier = [
            NodeTier::Gateway,
            NodeTier::Sensor,
            NodeTier::Sensor,
            NodeTier::Sensor,
        ];
        let caps = [TierCapabilities::paper_default().sensor; 4];
        let route = route_over(plan.hops_slice(), plan.next_hop_slice(), &tier, &caps);
        let mut rng = SimRng::seed_from(1);
        let mut decisions = Vec::new();
        let report = OffloadBalancer.balance_routed(&mut input, &route, &mut rng, &mut decisions);
        assert!(report.tasks_moved > 0, "nothing moved");
        assert_eq!(report.transfer_hops, report.tasks_moved * 3);
        let d = decisions
            .iter()
            .find(|d| d.position == 3)
            .expect("node 3 decided");
        assert_eq!(d.target, OffloadTarget::Cloud);
        assert!(d.ship_energy > Energy::ZERO);
        assert_eq!(input.nodes[0].tasks.len(), report.tasks_moved as usize);
    }

    /// When every node is a battery sensor and the backlog's compute
    /// energy dwarfs shipping, tasks flow to a neighbour with surplus.
    #[test]
    fn neighbor_with_surplus_absorbs_tasks() {
        // Node 2 starved, node 1 (its next hop) rich and at a far more
        // efficient operating point; sink dead so the cloud route is
        // unavailable. With uniform efficiency shipping between
        // sensors is never beneficial — the gain must pay the radio.
        let mut input = chain(&[0.0, 80.0, 0.05], &[0, 0, 3], 2_000_000);
        input.nodes[1].efficiency *= 4.0;
        let plan = TopologySpec::Chain.build(3).expect("chain");
        let tier = [NodeTier::Sensor; 3];
        let caps = [TierCapabilities::paper_default().sensor; 3];
        let route = route_over(plan.hops_slice(), plan.next_hop_slice(), &tier, &caps);
        let mut rng = SimRng::seed_from(1);
        let mut decisions = Vec::new();
        let report = OffloadBalancer.balance_routed(&mut input, &route, &mut rng, &mut decisions);
        assert!(report.tasks_moved > 0);
        let d = decisions.iter().find(|d| d.position == 2).expect("decided");
        assert_eq!(d.target, OffloadTarget::Neighbor);
        assert_eq!(
            input.nodes[1].tasks.len(),
            report.tasks_moved as usize,
            "tasks landed on the neighbour"
        );
    }

    /// A node that can afford its queue makes no decision at all, and
    /// the plain chain entry point is a no-op.
    #[test]
    fn content_nodes_are_left_alone() {
        let mut input = chain(&[50.0, 50.0], &[1, 1], 1_000);
        let plan = TopologySpec::Chain.build(2).expect("chain");
        let tier = [NodeTier::Sensor; 2];
        let caps = [TierCapabilities::paper_default().sensor; 2];
        let route = route_over(plan.hops_slice(), plan.next_hop_slice(), &tier, &caps);
        let mut rng = SimRng::seed_from(1);
        let mut decisions = Vec::new();
        let report = OffloadBalancer.balance_routed(&mut input, &route, &mut rng, &mut decisions);
        assert_eq!(report, BalanceReport::default());
        assert!(decisions.is_empty());
        let plain = OffloadBalancer.balance(&mut input, &mut rng);
        assert_eq!(plain, BalanceReport::default());
    }

    /// Tasks never move to a dead state — the simulator would lose
    /// their packages when rebuilding the queues.
    #[test]
    fn dead_targets_are_never_shipped_to() {
        // Sink and neighbour both dead: the starved node must hold.
        let mut input = chain(&[0.0, 0.0, 0.05], &[0, 0, 4], 2_000_000);
        let plan = TopologySpec::Chain.build(3).expect("chain");
        let tier = [NodeTier::Gateway, NodeTier::Sensor, NodeTier::Sensor];
        let caps = [TierCapabilities::paper_default().sensor; 3];
        let route = route_over(plan.hops_slice(), plan.next_hop_slice(), &tier, &caps);
        let mut rng = SimRng::seed_from(1);
        let mut decisions = Vec::new();
        let report = OffloadBalancer.balance_routed(&mut input, &route, &mut rng, &mut decisions);
        assert_eq!(report.tasks_moved, 0);
        assert_eq!(input.nodes[2].tasks.len(), 4);
        let d = decisions.iter().find(|d| d.position == 2).expect("decided");
        assert_eq!(d.target, OffloadTarget::Local);
    }
}

//! Algorithm 1: the distributed load-balancing dynamic program.
//!
//! Given `n` surplus tasks and, for each task `k`, the time `a[k]` it
//! would take on the best-efficiency node to the *left* and `b[k]` on
//! the best node to the *right*, choose a side for every task so the
//! *makespan* — `max(total left time, total right time)` — is minimal,
//! subject to the left-time budget `MAXTIME` (the load-balance call
//! interval).
//!
//! The recurrence is the paper's equation (3):
//!
//! ```text
//! OPT(i, k) = min( OPT(i − a[k], k − 1),        // task k on the left
//!                  OPT(i, k − 1) + b[k] )       // task k on the right
//! ```
//!
//! where `OPT(i, k)` is the least right-side time needed to place the
//! first `k` tasks with at most `i` left-side time. Complexity is
//! `O(n · MAXTIME)` — "task number × load balance call interval".

use serde::{Deserialize, Serialize};

/// Which neighbour a task is assigned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The left (sink-ward) neighbour.
    Left,
    /// The right neighbour.
    Right,
}

/// The output of [`partition_tasks`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Per-task side, in input order.
    pub sides: Vec<Side>,
    /// Total time consumed on the left node.
    pub left_time: u64,
    /// Total time consumed on the right node.
    pub right_time: u64,
}

impl Assignment {
    /// The makespan of this assignment.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.left_time.max(self.right_time)
    }
}

const INF: u64 = u64::MAX / 4;

/// Runs Algorithm 1.
///
/// * `a[k]` — time of task `k` on the left side.
/// * `b[k]` — time of task `k` on the right side.
/// * `max_time` — the left-time budget (`MAXTIME`, the load-balance
///   call interval). Tasks that cannot fit on the left within the
///   budget go right.
///
/// Returns the optimal assignment (minimum makespan among assignments
/// whose left time does not exceed `max_time`; such an assignment
/// always exists because "all right" is feasible).
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
#[must_use]
pub fn partition_tasks(a: &[u64], b: &[u64], max_time: u64) -> Assignment {
    assert_eq!(a.len(), b.len(), "per-side time arrays must pair up");
    let n = a.len();
    if n == 0 {
        return Assignment {
            sides: Vec::new(),
            left_time: 0,
            right_time: 0,
        };
    }
    // The useful left budget never exceeds sum(a); cap by MAXTIME.
    // (Saturating: infeasible sides are encoded as huge times.)
    let sum_a: u64 = a.iter().fold(0u64, |acc, &x| acc.saturating_add(x));
    let cap = sum_a.min(max_time) as usize;

    // p[i][k] = least right time placing tasks 1..=k with left ≤ i.
    // Row-major Vec<Vec> keeps the build step readable; sizes are
    // bounded by MAXTIME which callers choose modestly.
    let width = cap + 1;
    let mut p = vec![vec![INF; n + 1]; width];
    for row in &mut p {
        row[0] = 0;
    }
    for k in 1..=n {
        let (ak, bk) = (a[k - 1], b[k - 1]);
        for i in 0..width {
            // Task k to the right.
            let right = p[i][k - 1].saturating_add(bk);
            // Task k to the left (consumes ak of the budget).
            let left = if (i as u64) >= ak {
                p[i - ak as usize][k - 1]
            } else {
                INF
            };
            p[i][k] = right.min(left);
        }
    }

    // Find the budget i minimizing the makespan max(i, p[i][n]).
    // (The paper's "find the minimum time" step.)
    let mut best_i = 0usize;
    let mut best_makespan = INF;
    for (i, row) in p.iter().enumerate() {
        let m = (i as u64).max(row[n]);
        if m < best_makespan {
            best_makespan = m;
            best_i = i;
        }
    }

    // Backtrack the assignment (the paper's "generate the assignment
    // output" step).
    let mut sides = vec![Side::Right; n];
    let mut i = best_i;
    let mut left_time = 0u64;
    let mut right_time = 0u64;
    for k in (1..=n).rev() {
        let (ak, bk) = (a[k - 1], b[k - 1]);
        let via_right = p[i][k - 1].saturating_add(bk);
        let via_left = if (i as u64) >= ak {
            p[i - ak as usize][k - 1]
        } else {
            INF
        };
        // The budget guard must be explicit: when BOTH sides are
        // infeasible (INF times), via_left can still compare smaller
        // than a saturated via_right.
        if (i as u64) >= ak && via_left < via_right {
            sides[k - 1] = Side::Left;
            left_time += ak;
            i -= ak as usize;
        } else {
            sides[k - 1] = Side::Right;
            right_time += bk;
        }
    }

    Assignment {
        sides,
        left_time,
        right_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive optimum for small n.
    fn brute_force(a: &[u64], b: &[u64], max_time: u64) -> u64 {
        let n = a.len();
        let mut best = u64::MAX;
        for mask in 0..(1u32 << n) {
            let mut l = 0;
            let mut r = 0;
            for k in 0..n {
                if mask & (1 << k) != 0 {
                    l += a[k];
                } else {
                    r += b[k];
                }
            }
            if l <= max_time {
                best = best.min(l.max(r));
            }
        }
        best
    }

    #[test]
    fn trivial_cases() {
        let asn = partition_tasks(&[], &[], 100);
        assert!(asn.sides.is_empty());
        assert_eq!(asn.makespan(), 0);

        let asn = partition_tasks(&[5], &[100], 100);
        assert_eq!(asn.sides, vec![Side::Left]);
        assert_eq!(asn.makespan(), 5);

        // Left too expensive for the budget → forced right.
        let asn = partition_tasks(&[50], &[3], 10);
        assert_eq!(asn.sides, vec![Side::Right]);
        assert_eq!(asn.makespan(), 3);
    }

    #[test]
    fn balances_identical_tasks() {
        // 4 tasks, each 10 on either side → 2/2 split, makespan 20.
        let a = [10, 10, 10, 10];
        let b = [10, 10, 10, 10];
        let asn = partition_tasks(&a, &b, 1000);
        assert_eq!(asn.makespan(), 20);
        let lefts = asn.sides.iter().filter(|s| **s == Side::Left).count();
        assert_eq!(lefts, 2);
    }

    #[test]
    fn prefers_the_faster_side_per_task() {
        // Task 0 is fast left, task 1 fast right.
        let asn = partition_tasks(&[1, 100], &[100, 1], 1000);
        assert_eq!(asn.sides, vec![Side::Left, Side::Right]);
        assert_eq!(asn.makespan(), 1);
    }

    #[test]
    fn matches_brute_force_on_many_instances() {
        // Deterministic pseudo-random instances, n ≤ 10.
        let mut x = 0x1234_5678u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for trial in 0..200 {
            let n = (next() % 9 + 1) as usize;
            let a: Vec<u64> = (0..n).map(|_| next() % 20 + 1).collect();
            let b: Vec<u64> = (0..n).map(|_| next() % 20 + 1).collect();
            let max_time = next() % 60 + 5;
            let asn = partition_tasks(&a, &b, max_time);
            assert!(asn.left_time <= max_time, "trial {trial}: budget violated");
            let expect = brute_force(&a, &b, max_time);
            assert_eq!(
                asn.makespan(),
                expect,
                "trial {trial}: a={a:?} b={b:?} max={max_time}"
            );
        }
    }

    #[test]
    fn assignment_times_are_consistent_with_sides() {
        let a = [3, 7, 2, 9, 4];
        let b = [5, 2, 8, 3, 6];
        let asn = partition_tasks(&a, &b, 100);
        let l: u64 = asn
            .sides
            .iter()
            .zip(&a)
            .filter(|(s, _)| **s == Side::Left)
            .map(|(_, &t)| t)
            .sum();
        let r: u64 = asn
            .sides
            .iter()
            .zip(&b)
            .filter(|(s, _)| **s == Side::Right)
            .map(|(_, &t)| t)
            .sum();
        assert_eq!(l, asn.left_time);
        assert_eq!(r, asn.right_time);
    }

    #[test]
    fn tight_budget_pushes_everything_right() {
        let a = [10, 10, 10];
        let b = [4, 4, 4];
        let asn = partition_tasks(&a, &b, 0);
        assert!(asn.sides.iter().all(|s| *s == Side::Right));
        assert_eq!(asn.makespan(), 12);
    }

    #[test]
    fn paper_example_two_left_two_right() {
        // Figure 6(d) narration: "two tasks from node 4 are assigned to
        // node 3, and another two to node 5" — four equal tasks split
        // evenly between equally capable neighbours.
        let asn = partition_tasks(&[7, 7, 7, 7], &[7, 7, 7, 7], 14);
        let lefts = asn.sides.iter().filter(|s| **s == Side::Left).count();
        assert_eq!(lefts, 2);
        assert_eq!(asn.makespan(), 14);
    }

    #[test]
    fn zero_cost_tasks_are_harmless() {
        let asn = partition_tasks(&[0, 5], &[0, 5], 10);
        assert_eq!(asn.makespan(), 5);
    }
}

//! The no-op balancer (the "VP w/o Load Balance" baseline).

use super::{BalanceReport, ChainBalanceInput, LoadBalancer};
use neofog_types::SimRng;

/// Leaves every node's tasks untouched — Figure 6(b): "absent load
/// balancing, efficiency is very low".
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBalancer;

impl LoadBalancer for NoBalancer {
    fn name(&self) -> &'static str {
        "none"
    }

    fn balance(&self, _chain: &mut ChainBalanceInput, _rng: &mut SimRng) -> BalanceReport {
        BalanceReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::test_util::chain;

    #[test]
    fn moves_nothing() {
        let mut input = chain(&[0.0, 10.0, 0.0], &[5, 0, 5], 1000);
        let before = input.clone();
        let report = NoBalancer.balance(&mut input, &mut SimRng::seed_from(1));
        assert_eq!(input, before);
        assert_eq!(report, BalanceReport::default());
        assert_eq!(NoBalancer.name(), "none");
    }
}

//! The paper's distributed load balancer (§3.2, Algorithm 1).
//!
//! Bottom-up and pairwise: each node that cannot afford its queued fog
//! tasks shares state with its immediate chain neighbours, builds the
//! per-task time arrays `a` (left) and `b` (right), and calls the
//! Algorithm 1 dynamic program to ship surplus tasks to whichever side
//! finishes them soonest. Over-assigned receivers trigger "a second
//! call" that pushes overflow further outward (the paper's node 8 →
//! node 10 example), which we realize as repeated passes over the
//! chain. If a node cannot even afford the balancing exchange, no
//! balancing happens in its region this period — "this failure affects
//! performance, but not functionality".

use super::dp::{partition_tasks, Side};
use super::{BalanceReport, ChainBalanceInput, LoadBalancer};
use neofog_types::{Energy, SimRng};

/// Time quantum of the DP tables, in microseconds (0.1 s).
const TIME_UNIT_US: u64 = 100_000;

/// The NEOFog distributed balancer.
#[derive(Debug, Clone, Copy)]
pub struct DistributedBalancer {
    /// The load-balance call interval (`MAXTIME`), in time units.
    max_time_units: u64,
    /// Energy a node must hold to participate in the exchange.
    exchange_cost: Energy,
    /// Outward-propagation passes (each pass is one "call" round).
    passes: usize,
}

impl DistributedBalancer {
    /// Creates the balancer with a `MAXTIME` equal to the given call
    /// interval in seconds.
    #[must_use]
    pub fn new(call_interval_secs: u64) -> Self {
        DistributedBalancer {
            max_time_units: call_interval_secs * 1_000_000 / TIME_UNIT_US,
            exchange_cost: Energy::from_microjoules(30.0),
            passes: 3,
        }
    }

    /// Overrides the state-exchange cost.
    #[must_use]
    pub fn with_exchange_cost(mut self, cost: Energy) -> Self {
        self.exchange_cost = cost;
        self
    }

    /// Overrides the number of propagation passes.
    ///
    /// # Panics
    ///
    /// Panics if `passes` is zero.
    #[must_use]
    pub fn with_passes(mut self, passes: usize) -> Self {
        assert!(passes > 0, "at least one pass required");
        self.passes = passes;
        self
    }

    /// Time (in DP units, rounded up) for `instructions` on a node
    /// with the given throughput; a huge value when the side cannot
    /// take work.
    fn time_units(instructions: u64, throughput: f64, capacity: u64) -> u64 {
        if throughput <= 0.0 || capacity < instructions {
            // Effectively infinite: the DP budget will exclude it.
            return u64::MAX / 8;
        }
        let secs = instructions as f64 / throughput;
        ((secs * 1_000_000.0) / TIME_UNIT_US as f64).ceil() as u64
    }

    fn balance_node(&self, chain: &mut ChainBalanceInput, idx: usize, report: &mut BalanceReport) {
        let node = &chain.nodes[idx];
        if !node.alive {
            return;
        }
        // Interruption: a node too weak to run the exchange leaves its
        // region unbalanced this period.
        if node.spare_energy < self.exchange_cost {
            if !node.tasks.is_empty() {
                report.interrupted_regions += 1;
            }
            return;
        }
        let surplus_deficit = node.surplus();
        if surplus_deficit >= 0 {
            return; // the node can handle its own queue
        }
        // Peel surplus tasks off the back of the queue until the rest
        // fits the node's affordable budget.
        let afford = node.affordable_instructions();
        let mut kept_sum: u64 = 0;
        let mut keep = 0usize;
        for t in &node.tasks {
            if kept_sum + t.instructions <= afford {
                kept_sum += t.instructions;
                keep += 1;
            } else {
                break;
            }
        }
        let surplus: Vec<super::FogTask> = chain.nodes[idx].tasks.split_off(keep);
        if surplus.is_empty() {
            return;
        }

        // Neighbour capabilities (alive, with spare capacity beyond
        // their own queues).
        let side_state = |i: Option<usize>| -> (f64, u64) {
            match i {
                Some(j) => {
                    let n = &chain.nodes[j];
                    if n.alive && n.spare_energy >= self.exchange_cost {
                        let cap = n
                            .affordable_instructions()
                            .saturating_sub(n.queued_instructions());
                        (n.throughput, cap)
                    } else {
                        (0.0, 0)
                    }
                }
                None => (0.0, 0),
            }
        };
        let left_idx = idx.checked_sub(1);
        let right_idx = if idx + 1 < chain.nodes.len() {
            Some(idx + 1)
        } else {
            None
        };
        let (lt, lcap) = side_state(left_idx);
        let (rt, rcap) = side_state(right_idx);
        if lcap == 0 && rcap == 0 {
            // Nowhere to go; tasks stay queued.
            chain.nodes[idx].tasks.extend(surplus);
            return;
        }

        let a: Vec<u64> = surplus
            .iter()
            .map(|t| Self::time_units(t.instructions, lt, lcap))
            .collect();
        let b: Vec<u64> = surplus
            .iter()
            .map(|t| Self::time_units(t.instructions, rt, rcap))
            .collect();
        let assignment = partition_tasks(&a, &b, self.max_time_units);

        // Per the paper, a receiver may end up over-assigned ("the
        // assigned tasks require more energy than one node has already
        // stored"); the next pass's "second call" then pushes the
        // overflow further outward. Only per-task feasibility is
        // enforced here (via the time arrays).
        report.transfer_hops += 2; // the state exchange itself
        for (task, side) in surplus.into_iter().zip(assignment.sides) {
            let dest = match side {
                Side::Left if lcap >= task.instructions => left_idx,
                Side::Right if rcap >= task.instructions => right_idx,
                _ => None,
            };
            match dest {
                Some(j) => {
                    chain.nodes[j].tasks.push(task);
                    report.tasks_moved += 1;
                    report.instructions_moved += task.instructions;
                    report.transfer_hops += 1;
                }
                None => chain.nodes[idx].tasks.push(task),
            }
        }
    }
}

impl LoadBalancer for DistributedBalancer {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn balance(&self, chain: &mut ChainBalanceInput, _rng: &mut SimRng) -> BalanceReport {
        let mut report = BalanceReport::default();
        for _ in 0..self.passes {
            let moved_before = report.tasks_moved;
            for idx in 0..chain.nodes.len() {
                self.balance_node(chain, idx, &mut report);
            }
            if report.tasks_moved == moved_before {
                break; // converged
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::test_util::{chain, completable};
    use crate::balance::NodeBalanceState;

    fn rng() -> SimRng {
        SimRng::seed_from(9)
    }

    #[test]
    fn offloads_deficit_to_both_neighbors() {
        // Middle node has 4 tasks, no energy; neighbours each afford 2.
        // 100k-instruction tasks cost ~250 uJ each.
        let mut input = chain(&[0.52, 0.05, 0.52], &[0, 4, 0], 100_000);
        let report = DistributedBalancer::new(60).balance(&mut input, &mut rng());
        assert_eq!(report.tasks_moved, 4);
        assert_eq!(input.nodes[0].tasks.len(), 2);
        assert_eq!(input.nodes[2].tasks.len(), 2);
        assert!(input.nodes[1].tasks.is_empty());
    }

    #[test]
    fn second_pass_propagates_overload_outward() {
        // Paper's example: node 8 over-assigned, overflow reaches node
        // 10. Here: node 1 starves, node 2 can take 1 task, node 3 has
        // plenty — overflow must travel 1 → 2 → 3 across passes.
        let mut input = chain(&[0.0, 0.05, 0.26, 5.0], &[0, 3, 0, 0], 100_000);
        let report = DistributedBalancer::new(600).balance(&mut input, &mut rng());
        assert!(report.tasks_moved >= 3, "moved {}", report.tasks_moved);
        assert!(
            !input.nodes[3].tasks.is_empty(),
            "overflow should reach node 3: {:?}",
            input
                .nodes
                .iter()
                .map(|n| n.tasks.len())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn improves_completable_work_under_imbalance() {
        let mut input = chain(
            &[10.0, 0.0, 12.0, 5.0, 0.0, 18.0, 6.0, 3.0, 5.0, 9.0],
            &[1, 3, 1, 1, 3, 0, 1, 4, 1, 0],
            400_000,
        );
        let before = completable(&input);
        DistributedBalancer::new(60).balance(&mut input, &mut rng());
        let after = completable(&input);
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn starved_node_interrupts_instead_of_balancing() {
        // The deficit node cannot even afford the exchange.
        let mut input = chain(&[5.0, 0.02, 5.0], &[0, 3, 0], 100_000);
        let report = DistributedBalancer::new(60).balance(&mut input, &mut rng());
        assert_eq!(report.tasks_moved, 0);
        assert!(report.interrupted_regions > 0);
        assert_eq!(input.nodes[1].tasks.len(), 3, "tasks stay put");
    }

    #[test]
    fn dead_neighbors_are_skipped() {
        let mut input = chain(&[10.0, 0.01, 10.0], &[0, 2, 0], 100_000);
        input.nodes[0].alive = false;
        input.nodes[2].alive = false;
        let report = DistributedBalancer::new(60).balance(&mut input, &mut rng());
        assert_eq!(report.tasks_moved, 0);
        assert_eq!(input.nodes[1].tasks.len(), 2);
    }

    #[test]
    fn prefers_side_with_capacity() {
        // Left neighbour is rich, right is broke.
        let mut input = chain(&[2.0, 0.05, 0.0], &[0, 2, 0], 100_000);
        DistributedBalancer::new(60).balance(&mut input, &mut rng());
        assert_eq!(input.nodes[0].tasks.len(), 2);
        assert!(input.nodes[2].tasks.is_empty());
    }

    #[test]
    fn conserves_instructions() {
        let mut rng_outer = SimRng::seed_from(31);
        for _ in 0..40 {
            let energies: Vec<f64> = (0..10).map(|_| rng_outer.uniform(0.0, 4.0)).collect();
            let tasks: Vec<usize> = (0..10).map(|_| rng_outer.index(5)).collect();
            let mut input = chain(&energies, &tasks, 300_000);
            let before: u64 = input
                .nodes
                .iter()
                .map(super::super::NodeBalanceState::queued_instructions)
                .sum();
            DistributedBalancer::new(60).balance(&mut input, &mut SimRng::seed_from(4));
            let after: u64 = input
                .nodes
                .iter()
                .map(super::super::NodeBalanceState::queued_instructions)
                .sum();
            assert_eq!(before, after);
        }
    }

    #[test]
    fn efficiency_matters_through_throughput() {
        // Right neighbour is 4x faster: identical capacities, the DP
        // should favour it to minimize makespan.
        let mk = |throughput: f64, energy_mj: f64, tasks: usize| NodeBalanceState {
            node: neofog_types::NodeId::new(0),
            spare_energy: neofog_types::Energy::from_millijoules(energy_mj),
            efficiency: 1.0 / 2.508,
            throughput,
            tasks: (0..tasks)
                .map(|k| crate::balance::FogTask::new(100_000, k as u64))
                .collect(),
            alive: true,
        };
        let mut input = ChainBalanceInput {
            nodes: vec![
                mk(83_333.0, 2.0, 0),
                mk(83_333.0, 0.05, 4),
                mk(4.0 * 83_333.0, 2.0, 0),
            ],
        };
        DistributedBalancer::new(60).balance(&mut input, &mut rng());
        assert!(
            input.nodes[2].tasks.len() > input.nodes[0].tasks.len(),
            "fast side should take more: {:?}",
            input
                .nodes
                .iter()
                .map(|n| n.tasks.len())
                .collect::<Vec<_>>()
        );
    }
}

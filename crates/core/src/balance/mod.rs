//! Intra-chain load balancing (paper §3.2).
//!
//! Three strategies, matching Figure 6 and the evaluation's three
//! systems:
//!
//! * [`NoBalancer`] — every node keeps its own tasks (NOS-VP).
//! * [`TreeBalancer`] — the "baseline up-down multi-level tree" scheme:
//!   a coordinator node per region redistributes evenly, but if the
//!   coordinator is low on energy the whole region goes unbalanced
//!   (Figure 6(c): "left 12 tasks are all missed").
//! * [`DistributedBalancer`] — the paper's bottom-up pairwise scheme:
//!   each overloaded node shares state with its immediate chain
//!   neighbours and calls Algorithm 1 ([`dp::partition_tasks`]) to
//!   split surplus tasks left/right by *time on the most efficient
//!   side*, with a second round when a target is over-assigned.

pub mod distributed;
pub mod dp;
pub mod none;
pub mod offload;
pub mod tree;

pub use distributed::DistributedBalancer;
pub use dp::{partition_tasks, Assignment, Side};
pub use none::NoBalancer;
pub use offload::{OffloadBalancer, OffloadDecision, OffloadTarget};
pub use tree::TreeBalancer;

use crate::node::NodeCapabilities;
use neofog_net::NodeTier;
use neofog_types::{Energy, NodeId, SimRng};
use serde::{Deserialize, Serialize};

/// One task queued for in-fog execution.
///
/// The `tag` travels with the task so the simulator can keep the task
/// paired with the data package it processes when balancers move it
/// between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FogTask {
    /// Remaining NVP instructions.
    pub instructions: u64,
    /// Opaque owner-assigned identity (package index).
    pub tag: u64,
}

impl FogTask {
    /// Creates a task.
    #[must_use]
    pub fn new(instructions: u64, tag: u64) -> Self {
        FogTask { instructions, tag }
    }
}

/// What one node shares with its neighbours before balancing: "the
/// available energy as well as NVP configuration (frequency and
/// resource state for the Spendthrift policy) are shared with other
/// nearby nodes in the local network chain".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeBalanceState {
    /// Which node this is.
    pub node: NodeId,
    /// Energy available for fog tasks beyond the node's own needs.
    pub spare_energy: Energy,
    /// Computational efficiency: instructions per nanojoule at the
    /// node's current Spendthrift operating point.
    pub efficiency: f64,
    /// Execution speed: instructions per second at the current
    /// operating point (determines *time*, the quantity Algorithm 1
    /// minimizes).
    pub throughput: f64,
    /// Fog tasks currently queued on this node.
    pub tasks: Vec<FogTask>,
    /// `false` when the node cannot participate this round (red).
    pub alive: bool,
}

impl NodeBalanceState {
    /// Instructions this node can afford with its spare energy.
    #[must_use]
    pub fn affordable_instructions(&self) -> u64 {
        (self.spare_energy.max_zero().as_nanojoules() * self.efficiency) as u64
    }

    /// Instructions currently queued.
    #[must_use]
    pub fn queued_instructions(&self) -> u64 {
        self.tasks.iter().map(|t| t.instructions).sum()
    }

    /// Surplus capacity (positive) or deficit (negative), in
    /// instructions.
    #[must_use]
    pub fn surplus(&self) -> i64 {
        self.affordable_instructions() as i64 - self.queued_instructions() as i64
    }
}

/// The chain snapshot a balancer operates on, in chain order
/// (sink end first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainBalanceInput {
    /// Per-node state in chain order.
    pub nodes: Vec<NodeBalanceState>,
}

/// What a balancing round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BalanceReport {
    /// Tasks moved between nodes.
    pub tasks_moved: u64,
    /// Instructions moved between nodes.
    pub instructions_moved: u64,
    /// Hop transmissions spent on state exchange and task transfer.
    pub transfer_hops: u64,
    /// Regions whose balancing was interrupted (coordinator death or
    /// mid-round power failure): "no load balance will take place at
    /// that region".
    pub interrupted_regions: u64,
}

/// The immutable routing and capability context a topology-aware
/// balancer prices decisions against: per-position route-plan slices
/// (indexed like [`ChainBalanceInput::nodes`]) plus the package
/// geometry. Built by the simulator's balance phase from its
/// [`RoutePlan`](neofog_net::RoutePlan) every round; balancers only
/// read it.
#[derive(Debug, Clone, Copy)]
pub struct RouteContext<'a> {
    /// Hop count from each position to the sink.
    pub hops_to_sink: &'a [u32],
    /// Next hop of each position ([`neofog_net::NO_HOP`] at the sink).
    pub next_hop: &'a [u32],
    /// Tier of each position.
    pub tier: &'a [NodeTier],
    /// Capability row of each position.
    pub caps: &'a [NodeCapabilities],
    /// Raw (unprocessed) package size — what an offloaded task ships.
    pub raw_bytes: u32,
}

/// A chain-level load-balancing strategy.
pub trait LoadBalancer: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Redistributes tasks in place and reports what moved.
    fn balance(&self, chain: &mut ChainBalanceInput, rng: &mut SimRng) -> BalanceReport;

    /// Topology-aware entry point: redistributes tasks with the route
    /// plan and per-position capabilities in view, appending any
    /// offload decisions taken. The default ignores the routing
    /// context and defers to [`LoadBalancer::balance`] — the chain
    /// balancers behave (and log) exactly as before — while
    /// [`OffloadBalancer`] overrides it with the front-end-priced
    /// compute-here / ship-to-neighbour / ship-to-cloud choice.
    fn balance_routed(
        &self,
        chain: &mut ChainBalanceInput,
        route: &RouteContext<'_>,
        rng: &mut SimRng,
        decisions: &mut Vec<OffloadDecision>,
    ) -> BalanceReport {
        let _ = (route, decisions);
        self.balance(chain, rng)
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Builds a chain where node `i` has `energies[i]` spare mJ and
    /// `tasks[i]` queued tasks of `task_inst` instructions each, with
    /// uniform efficiency/throughput.
    pub fn chain(energies: &[f64], tasks: &[usize], task_inst: u64) -> ChainBalanceInput {
        assert_eq!(energies.len(), tasks.len());
        let nodes = energies
            .iter()
            .zip(tasks)
            .enumerate()
            .map(|(i, (&e, &t))| NodeBalanceState {
                node: NodeId::new(i as u32),
                spare_energy: Energy::from_millijoules(e),
                efficiency: 1.0 / 2.508,
                throughput: 1_000_000.0 / 12.0,
                tasks: (0..t).map(|k| FogTask::new(task_inst, k as u64)).collect(),
                alive: e > 0.0,
            })
            .collect();
        ChainBalanceInput { nodes }
    }

    /// Total instructions completable after balancing: each node
    /// executes min(queued, affordable).
    pub fn completable(chain: &ChainBalanceInput) -> u64 {
        chain
            .nodes
            .iter()
            .map(|n| n.queued_instructions().min(n.affordable_instructions()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surplus_math() {
        let n = NodeBalanceState {
            node: NodeId::new(0),
            spare_energy: Energy::from_nanojoules(2.508 * 100.0),
            efficiency: 1.0 / 2.508,
            throughput: 83_333.0,
            tasks: vec![FogTask::new(40, 0), FogTask::new(40, 1)],
            alive: true,
        };
        assert_eq!(n.affordable_instructions(), 100);
        assert_eq!(n.queued_instructions(), 80);
        assert_eq!(n.surplus(), 20);
    }

    #[test]
    fn deficit_is_negative() {
        let n = NodeBalanceState {
            node: NodeId::new(0),
            spare_energy: Energy::ZERO,
            efficiency: 1.0,
            throughput: 1.0,
            tasks: vec![FogTask::new(10, 0)],
            alive: true,
        };
        assert_eq!(n.surplus(), -10);
    }
}

//! Activation timelines (paper Figure 1 and Figure 4).
//!
//! Reconstructs the per-phase timing of one node activation under each
//! system design, using the measured constants from the substrates.

use crate::node::SystemKind;
use neofog_rf::RfTimings;
use neofog_types::Duration;
use serde::Serialize;

/// One phase of an activation timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TimelinePhase {
    /// Phase name as it appears in Figure 4.
    pub name: &'static str,
    /// Phase duration.
    pub duration: Duration,
    /// Whether this phase can run on intermittent (direct-channel)
    /// power rather than stored energy — the dashed boxes of Figure 4.
    pub on_intermittent_power: bool,
}

/// An activation timeline for one system design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Timeline {
    /// The system design.
    pub system: SystemKind,
    /// Phases in execution order.
    pub phases: Vec<TimelinePhase>,
}

impl Timeline {
    /// Builds the Figure 4 timeline of a system (data transmission of
    /// `payload` bytes).
    #[must_use]
    pub fn figure4(system: SystemKind, payload: u32) -> Self {
        let rf = RfTimings::paper_default();
        let phases = match system {
            SystemKind::NosVp => vec![
                TimelinePhase {
                    name: "VP restart init.",
                    duration: Duration::from_micros(300),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Sensors sampling",
                    duration: Duration::from_millis(1),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Control & basic computing",
                    duration: Duration::from_millis(2),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Software RF initialization",
                    duration: Duration::from_millis(15),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Rebuild RF (channels, join route)",
                    duration: Duration::from_millis(100),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Transmitting",
                    duration: rf.software_tx_time(payload),
                    on_intermittent_power: false,
                },
            ],
            SystemKind::NosNvp => vec![
                TimelinePhase {
                    name: "NVP restore",
                    duration: Duration::from_micros(32),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Sensors sampling",
                    duration: Duration::from_millis(1),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Control & basic computing",
                    duration: Duration::from_millis(2),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Read NVM to initialize RF + transmit",
                    duration: Duration::from_millis(33),
                    on_intermittent_power: false,
                },
            ],
            SystemKind::FiosNeoFog => vec![
                TimelinePhase {
                    name: "NVP restore",
                    duration: Duration::from_micros(7),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Sensors sampling",
                    duration: Duration::from_millis(1),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Complex fog computing moved from cloud",
                    duration: Duration::from_secs(30),
                    on_intermittent_power: true,
                },
                TimelinePhase {
                    name: "Compression",
                    duration: Duration::from_secs(2),
                    on_intermittent_power: true,
                },
                TimelinePhase {
                    name: "NVRF restore",
                    duration: Duration::from_micros(2),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "RF init.",
                    duration: Duration::from_micros(1_200),
                    on_intermittent_power: false,
                },
                TimelinePhase {
                    name: "Transmitting",
                    duration: rf.nvrf_tx_time(payload),
                    on_intermittent_power: false,
                },
            ],
        };
        Timeline { system, phases }
    }

    /// Total activation latency.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Latency of the phases that must run from stored energy.
    #[must_use]
    pub fn stored_energy_time(&self) -> Duration {
        self.phases
            .iter()
            .filter(|p| !p.on_intermittent_power)
            .map(|p| p.duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_startup_dwarfs_nvp() {
        let vp = Timeline::figure4(SystemKind::NosVp, 8);
        let nvp = Timeline::figure4(SystemKind::NosNvp, 8);
        // VP: 15-100 ms software init + rebuild; NVP: 33 ms session.
        assert!(vp.total() > nvp.total() * 10);
    }

    #[test]
    fn neofog_stored_energy_window_is_tiny() {
        let neo = Timeline::figure4(SystemKind::FiosNeoFog, 8);
        // Fog computing runs on intermittent power; the capacitor only
        // needs to cover milliseconds of radio work.
        assert!(neo.stored_energy_time() < Duration::from_millis(10));
        assert!(neo.total() > Duration::from_secs(30));
    }

    #[test]
    fn figure1_restore_constants() {
        let neo = Timeline::figure4(SystemKind::FiosNeoFog, 8);
        assert_eq!(neo.phases[0].duration, Duration::from_micros(7));
        let nvp = Timeline::figure4(SystemKind::NosNvp, 8);
        assert_eq!(nvp.phases[0].duration, Duration::from_micros(32));
        let vp = Timeline::figure4(SystemKind::NosVp, 8);
        assert_eq!(vp.phases[0].duration, Duration::from_micros(300));
    }
}

//! Property tests: Algorithm 1 optimality and balancer conservation.

use neofog_core::balance::{
    partition_tasks, ChainBalanceInput, DistributedBalancer, FogTask, LoadBalancer,
    NodeBalanceState, Side, TreeBalancer,
};
use neofog_types::{Energy, NodeId, SimRng};
use proptest::prelude::*;

fn brute_force(a: &[u64], b: &[u64], max_time: u64) -> u64 {
    let n = a.len();
    let mut best = u64::MAX;
    for mask in 0..(1u32 << n) {
        let mut l = 0u64;
        let mut r = 0u64;
        for k in 0..n {
            if mask & (1 << k) != 0 {
                l += a[k];
            } else {
                r += b[k];
            }
        }
        if l <= max_time {
            best = best.min(l.max(r));
        }
    }
    best
}

fn arbitrary_chain() -> impl Strategy<Value = ChainBalanceInput> {
    prop::collection::vec((0.0..10.0f64, 0usize..5, any::<bool>()), 2..10).prop_map(|specs| {
        let nodes = specs
            .into_iter()
            .enumerate()
            .map(|(i, (energy_mj, tasks, alive))| NodeBalanceState {
                node: NodeId::new(i as u32),
                spare_energy: Energy::from_millijoules(energy_mj),
                efficiency: 1.0 / 2.508,
                throughput: 83_333.0,
                tasks: (0..tasks)
                    .map(|k| FogTask::new(200_000, k as u64))
                    .collect(),
                alive,
            })
            .collect();
        ChainBalanceInput { nodes }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dp_matches_brute_force(
        tasks in prop::collection::vec((1u64..30, 1u64..30), 1..10),
        max_time in 1u64..120,
    ) {
        let a: Vec<u64> = tasks.iter().map(|t| t.0).collect();
        let b: Vec<u64> = tasks.iter().map(|t| t.1).collect();
        let asn = partition_tasks(&a, &b, max_time);
        prop_assert!(asn.left_time <= max_time);
        prop_assert_eq!(asn.makespan(), brute_force(&a, &b, max_time));
    }

    #[test]
    fn dp_times_are_consistent(
        tasks in prop::collection::vec((1u64..50, 1u64..50), 1..12),
        max_time in 1u64..200,
    ) {
        let a: Vec<u64> = tasks.iter().map(|t| t.0).collect();
        let b: Vec<u64> = tasks.iter().map(|t| t.1).collect();
        let asn = partition_tasks(&a, &b, max_time);
        let l: u64 = asn.sides.iter().zip(&a).filter(|(s, _)| **s == Side::Left).map(|(_, &x)| x).sum();
        let r: u64 = asn.sides.iter().zip(&b).filter(|(s, _)| **s == Side::Right).map(|(_, &x)| x).sum();
        prop_assert_eq!(l, asn.left_time);
        prop_assert_eq!(r, asn.right_time);
    }

    #[test]
    fn balancers_conserve_tasks(chain in arbitrary_chain(), seed in any::<u64>()) {
        for balancer in [
            &DistributedBalancer::new(60) as &dyn LoadBalancer,
            &TreeBalancer::new(),
        ] {
            let mut c = chain.clone();
            let before: u64 = c.nodes.iter().map(neofog_core::NodeBalanceState::queued_instructions).sum();
            let count_before: usize = c.nodes.iter().map(|n| n.tasks.len()).sum();
            balancer.balance(&mut c, &mut SimRng::seed_from(seed));
            let after: u64 = c.nodes.iter().map(neofog_core::NodeBalanceState::queued_instructions).sum();
            let count_after: usize = c.nodes.iter().map(|n| n.tasks.len()).sum();
            prop_assert_eq!(before, after, "{} lost instructions", balancer.name());
            prop_assert_eq!(count_before, count_after, "{} lost tasks", balancer.name());
        }
    }

    #[test]
    fn distributed_never_worsens_completable_work(chain in arbitrary_chain()) {
        let completable = |c: &ChainBalanceInput| -> u64 {
            c.nodes
                .iter()
                .map(|n| n.queued_instructions().min(n.affordable_instructions()))
                .sum()
        };
        let mut c = chain.clone();
        let before = completable(&c);
        DistributedBalancer::new(60).balance(&mut c, &mut SimRng::seed_from(1));
        // Over-assignment is allowed transiently, but a single round
        // must not reduce what the chain can complete by more than one
        // task's worth of slack.
        prop_assert!(completable(&c) + 200_000 >= before);
    }

    #[test]
    fn dead_nodes_never_receive_tasks(chain in arbitrary_chain()) {
        let mut c = chain.clone();
        DistributedBalancer::new(60).balance(&mut c, &mut SimRng::seed_from(2));
        for (i, node) in c.nodes.iter().enumerate() {
            if !node.alive {
                prop_assert_eq!(
                    node.tasks.len(),
                    chain.nodes[i].tasks.len(),
                    "dead node gained/lost tasks"
                );
            }
        }
    }
}

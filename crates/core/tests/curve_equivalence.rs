//! Golden equivalence for the EnergyCurve / shared-base-plan refactor.
//!
//! Every `SystemKind` × all four `Scenario`s at seeds {1, 99} (200
//! slots), plus NVD4Q multiplex-3 rows for the dependent scenarios.
//! Counters are pinned exactly; independent-scenario harvested energy
//! is additionally pinned to the pre-refactor value within float
//! tolerance (the prefix-summed curve reassociates the income sum by
//! a few ULPs).
//!
//! Two golden classes:
//!
//! * **Independent scenarios** (`ForestIndependent`, `MountainSunny`)
//!   pin the values captured from the *pre-refactor* simulator
//!   verbatim — proving the curve representation, the plan-derived RNG
//!   streams, and the scratch slot context changed nothing observable.
//! * **Dependent scenarios** (`BridgeDependent`, `MountainRainy`) pin
//!   *post-fix* values (pre-fix values in comments): the old
//!   `node_trace` re-forked the base stream per call, so every
//!   physical node got a different "shared" base. The plan synthesizes
//!   the base once, which intentionally changes these runs.

use neofog_core::sim::{SimConfig, Simulator};
use neofog_core::SystemKind;
use neofog_energy::Scenario;

struct Golden {
    system: SystemKind,
    scenario: Scenario,
    seed: u64,
    multiplex: u32,
    wakeups: u64,
    failures: u64,
    captured: u64,
    fog: u64,
    cloud: u64,
    dropped: u64,
}

const G: &[Golden] = &[
    // ---- Independent: pre-refactor values, preserved bit-for-bit ----
    golden(
        SystemKind::NosVp,
        Scenario::ForestIndependent,
        1,
        1,
        2000,
        0,
        2000,
        0,
        335,
        1665,
    ),
    golden(
        SystemKind::NosVp,
        Scenario::ForestIndependent,
        99,
        1,
        2000,
        0,
        2000,
        0,
        325,
        1675,
    ),
    golden(
        SystemKind::NosVp,
        Scenario::MountainSunny,
        1,
        1,
        2000,
        0,
        2000,
        0,
        590,
        1410,
    ),
    golden(
        SystemKind::NosVp,
        Scenario::MountainSunny,
        99,
        1,
        2000,
        0,
        2000,
        0,
        584,
        1416,
    ),
    golden(
        SystemKind::NosNvp,
        Scenario::ForestIndependent,
        1,
        1,
        1992,
        8,
        1992,
        329,
        0,
        1583,
    ),
    golden(
        SystemKind::NosNvp,
        Scenario::ForestIndependent,
        99,
        1,
        1987,
        13,
        1987,
        313,
        0,
        1594,
    ),
    golden(
        SystemKind::NosNvp,
        Scenario::MountainSunny,
        1,
        1,
        2000,
        0,
        2000,
        550,
        0,
        1265,
    ),
    golden(
        SystemKind::NosNvp,
        Scenario::MountainSunny,
        99,
        1,
        2000,
        0,
        2000,
        546,
        0,
        1251,
    ),
    golden(
        SystemKind::FiosNeoFog,
        Scenario::ForestIndependent,
        1,
        1,
        2000,
        0,
        2000,
        628,
        0,
        1293,
    ),
    golden(
        SystemKind::FiosNeoFog,
        Scenario::ForestIndependent,
        99,
        1,
        2000,
        0,
        2000,
        638,
        1,
        1283,
    ),
    golden(
        SystemKind::FiosNeoFog,
        Scenario::MountainSunny,
        1,
        1,
        2000,
        0,
        2000,
        1279,
        0,
        651,
    ),
    golden(
        SystemKind::FiosNeoFog,
        Scenario::MountainSunny,
        99,
        1,
        2000,
        0,
        2000,
        1291,
        0,
        637,
    ),
    // ---- Dependent: post-fix values (pre-fix in comments) ----
    // was: cloud 266, dropped 1734
    golden(
        SystemKind::NosVp,
        Scenario::BridgeDependent,
        1,
        1,
        2000,
        0,
        2000,
        0,
        301,
        1699,
    ),
    // was: cloud 289, dropped 1711
    golden(
        SystemKind::NosVp,
        Scenario::BridgeDependent,
        99,
        1,
        2000,
        0,
        2000,
        0,
        306,
        1694,
    ),
    // was: captured 1085, dropped 1036
    golden(
        SystemKind::NosVp,
        Scenario::MountainRainy,
        1,
        1,
        2000,
        0,
        1078,
        0,
        49,
        1029,
    ),
    // was: captured 1118, cloud 51
    golden(
        SystemKind::NosVp,
        Scenario::MountainRainy,
        99,
        1,
        2000,
        0,
        1119,
        0,
        52,
        1067,
    ),
    // was: fog 245, dropped 1596
    golden(
        SystemKind::NosNvp,
        Scenario::BridgeDependent,
        1,
        1,
        2000,
        0,
        2000,
        281,
        0,
        1640,
    ),
    // was: fog 289, dropped 1632
    golden(
        SystemKind::NosNvp,
        Scenario::BridgeDependent,
        99,
        1,
        2000,
        0,
        2000,
        321,
        0,
        1598,
    ),
    // was: 1938 wakeups, 62 failures, 1054 captured, 148 fog, 834 dropped
    golden(
        SystemKind::NosNvp,
        Scenario::MountainRainy,
        1,
        1,
        1961,
        39,
        1071,
        163,
        0,
        837,
    ),
    // was: 1961 wakeups, 39 failures, 1073 captured, 839 dropped
    golden(
        SystemKind::NosNvp,
        Scenario::MountainRainy,
        99,
        1,
        1974,
        26,
        1098,
        164,
        0,
        859,
    ),
    // was: fog 619, dropped 1304
    golden(
        SystemKind::FiosNeoFog,
        Scenario::BridgeDependent,
        1,
        1,
        2000,
        0,
        2000,
        627,
        0,
        1294,
    ),
    // was: fog 630, dropped 1291
    golden(
        SystemKind::FiosNeoFog,
        Scenario::BridgeDependent,
        99,
        1,
        2000,
        0,
        2000,
        638,
        0,
        1282,
    ),
    // was: 1990 wakeups, 10 failures, 1083 captured, 357 fog, 654 dropped
    golden(
        SystemKind::FiosNeoFog,
        Scenario::MountainRainy,
        1,
        1,
        1993,
        7,
        1073,
        369,
        0,
        629,
    ),
    // was: 1999 wakeups, 1 failure, 1130 captured, 340 fog, 716 dropped
    golden(
        SystemKind::FiosNeoFog,
        Scenario::MountainRainy,
        99,
        1,
        2000,
        0,
        1101,
        364,
        0,
        664,
    ),
    // ---- Dependent, NVD4Q multiplex 3 (30 physical nodes) ----
    // was: fog 1819, dropped 78
    golden(
        SystemKind::FiosNeoFog,
        Scenario::BridgeDependent,
        1,
        3,
        2000,
        0,
        2000,
        1847,
        0,
        73,
    ),
    // was: fog 1885, dropped 61
    golden(
        SystemKind::FiosNeoFog,
        Scenario::BridgeDependent,
        99,
        3,
        2000,
        0,
        2000,
        1888,
        0,
        68,
    ),
    // was: captured 1067, fog 806, dropped 187
    golden(
        SystemKind::FiosNeoFog,
        Scenario::MountainRainy,
        1,
        3,
        1990,
        10,
        1084,
        802,
        0,
        194,
    ),
    // was: 1995 wakeups, 5 failures, 1071 captured, 815 fog, 191 dropped
    golden(
        SystemKind::FiosNeoFog,
        Scenario::MountainRainy,
        99,
        3,
        1999,
        1,
        1082,
        820,
        0,
        194,
    ),
];

#[allow(clippy::too_many_arguments)]
const fn golden(
    system: SystemKind,
    scenario: Scenario,
    seed: u64,
    multiplex: u32,
    wakeups: u64,
    failures: u64,
    captured: u64,
    fog: u64,
    cloud: u64,
    dropped: u64,
) -> Golden {
    Golden {
        system,
        scenario,
        seed,
        multiplex,
        wakeups,
        failures,
        captured,
        fog,
        cloud,
        dropped,
    }
}

/// Pre-refactor total harvested energy (nJ) for the independent rows:
/// the curve path must reproduce these to well under one nanojoule on
/// ~1e11 nJ totals (the prefix sum only reassociates additions).
const HARVESTED_NJ: &[(Scenario, u64, f64)] = &[
    (Scenario::ForestIndependent, 1, 57_701_368_877.198),
    (Scenario::ForestIndependent, 99, 55_596_251_924.750),
    (Scenario::MountainSunny, 1, 104_030_149_297.697),
    (Scenario::MountainSunny, 99, 100_609_338_781.804),
];

fn run(g: &Golden) -> neofog_core::NetworkMetrics {
    let mut cfg = SimConfig::paper_default(g.system, g.scenario, g.seed);
    cfg.slots = 200;
    cfg.multiplex = g.multiplex;
    Simulator::new(cfg).expect("valid config").run().metrics
}

#[test]
fn counters_match_goldens_for_every_system_and_scenario() {
    for g in G {
        let m = run(g);
        let label = format!(
            "{:?}/{:?}/seed{}/x{}",
            g.system, g.scenario, g.seed, g.multiplex
        );
        assert_eq!(m.total_wakeups(), g.wakeups, "{label} wakeups");
        assert_eq!(m.total_failures(), g.failures, "{label} failures");
        assert_eq!(m.total_captured(), g.captured, "{label} captured");
        assert_eq!(m.fog_processed(), g.fog, "{label} fog");
        assert_eq!(m.cloud_processed(), g.cloud, "{label} cloud");
        assert_eq!(m.total_dropped(), g.dropped, "{label} dropped");
    }
}

#[test]
fn independent_harvest_totals_survive_the_curve_swap() {
    for &(scenario, seed, expected_nj) in HARVESTED_NJ {
        // Harvest totals depend only on the traces, not the system;
        // NosVp is the cheapest to run.
        let g = golden(SystemKind::NosVp, scenario, seed, 1, 0, 0, 0, 0, 0, 0);
        let m = run(&g);
        let harvested: f64 = m.nodes.iter().map(|n| n.harvested.as_nanojoules()).sum();
        assert!(
            (harvested - expected_nj).abs() < 1.0,
            "{scenario:?}/seed{seed}: {harvested} vs pre-refactor {expected_nj}"
        );
    }
}

#[test]
fn dependent_runs_share_identical_harvest_across_clones_of_one_position() {
    // Sanity on the fix itself at the system level: with the shared
    // base, two *separately built* simulators over overlapping node
    // counts agree on common nodes, so a 1-chain and a widened run
    // harvest identically per node prefix. We proxy this via repeat
    // determinism at multiplex 3.
    let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::BridgeDependent, 5);
    cfg.slots = 100;
    cfg.multiplex = 3;
    let a = Simulator::new(cfg.clone()).expect("valid").run().metrics;
    let b = Simulator::new(cfg).expect("valid").run().metrics;
    assert_eq!(a, b);
}

//! Event-log goldens for the struct-of-arrays slot kernel.
//!
//! The columnar refactor (`NodeColumns`) rewrote every phase's
//! iteration substrate; these pins assert the refactor is invisible at
//! the event level: the JSONL event log of a paper-default run is
//! **bit-identical** to the log the array-of-structs pipeline wrote,
//! for every [`SystemKind`]. The hashes were captured from the
//! pre-refactor pipeline at the same configuration as the
//! `sim_events.rs` goldens (forest scenario, seed 1, 150 slots).
//!
//! `ledger_settled` events exist only in debug builds (the release
//! ledger is a no-op), so the hash is taken over the log with those
//! lines stripped — the pins then hold in both profiles.

use neofog_core::sim::{SimConfig, Simulator};
use neofog_core::SystemKind;
use neofog_energy::Scenario;

fn quick(system: SystemKind) -> SimConfig {
    let mut cfg = SimConfig::paper_default(system, Scenario::ForestIndependent, 1);
    cfg.slots = 150;
    cfg
}

/// FNV-1a 64-bit, the same hash the xtask model cache uses: stable,
/// dependency-free, and sensitive to any byte-level drift.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The event log of one run at `threads` workers, with the debug-only
/// `ledger_settled` lines stripped so debug and release hash
/// identically.
fn event_log_fingerprint(system: SystemKind, threads: usize) -> (u64, usize) {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "neofog-columns-golden-{}-{}-t{threads}.jsonl",
        std::process::id(),
        system.label()
    ));
    let mut cfg = quick(system);
    cfg.threads = threads;
    cfg.events_path = Some(path.display().to_string());
    let _ = Simulator::new(cfg).expect("valid config").run();
    let text = std::fs::read_to_string(&path).expect("event log written");
    std::fs::remove_file(&path).ok();
    let mut filtered = String::with_capacity(text.len());
    let mut lines = 0usize;
    for line in text.lines() {
        if line.contains("\"kind\":\"ledger_settled\"") {
            continue;
        }
        filtered.push_str(line);
        filtered.push('\n');
        lines += 1;
    }
    (fnv1a(filtered.as_bytes()), lines)
}

/// `(system, fnv1a-64 of the filtered log, filtered line count)`,
/// captured from the pre-refactor array-of-structs pipeline.
const LOG_PINS: &[(SystemKind, u64, usize)] = &[
    (SystemKind::NosVp, 0xf080_1bd0_c038_2f50, 10604),
    (SystemKind::NosNvp, 0x861d_7c4d_11db_1150, 13676),
    (SystemKind::FiosNeoFog, 0xaff3_042f_1251_b353, 12857),
];

#[test]
fn event_logs_match_pre_refactor_pins() {
    for &(system, pin_hash, pin_lines) in LOG_PINS {
        let (hash, lines) = event_log_fingerprint(system, 1);
        assert_eq!(
            (hash, lines),
            (pin_hash, pin_lines),
            "{}: event log drifted from the pre-refactor pin \
             (got hash {hash:#018x}, {lines} lines)",
            system.label()
        );
    }
}

/// The sharded kernel's headline contract: the SAME pre-refactor pins
/// hold with the parallel sweeps on — multi-core execution is
/// invisible at the event level, not merely self-consistent.
#[test]
fn threaded_event_logs_match_the_serial_pins() {
    for &(system, pin_hash, pin_lines) in LOG_PINS {
        for threads in [3, 8] {
            let (hash, lines) = event_log_fingerprint(system, threads);
            assert_eq!(
                (hash, lines),
                (pin_hash, pin_lines),
                "{}: threaded (t={threads}) event log drifted from the serial pin \
                 (got hash {hash:#018x}, {lines} lines)",
                system.label()
            );
        }
    }
}

//! Determinism goldens for the non-chain topologies.
//!
//! The chain goldens live in `columns_goldens.rs` and pin the exact
//! pre-topology-layer event logs; this file covers the new shapes. No
//! external pin exists for a mesh or a tier graph, so the contract is
//! run-twice reproducibility: the same `(topology, seed, balancer)`
//! must write a byte-identical event log every time, and the offload
//! balancer must actually resolve decisions on mains-tiered graphs.

use neofog_core::sim::{BalancerKind, SimConfig, Simulator};
use neofog_core::SystemKind;
use neofog_energy::Scenario;
use neofog_net::TopologySpec;

fn routed(topology: TopologySpec, tag: &str, run: usize) -> (String, u64) {
    routed_threaded(topology, tag, run, 1)
}

fn routed_threaded(topology: TopologySpec, tag: &str, run: usize, threads: usize) -> (String, u64) {
    let path = std::env::temp_dir().join(format!(
        "neofog-topology-golden-{}-{tag}-{run}-t{threads}.jsonl",
        std::process::id()
    ));
    let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 9);
    cfg.positions = 12;
    cfg.slots = 80;
    cfg.topology = topology;
    cfg.balancer = BalancerKind::Offload;
    cfg.threads = threads;
    cfg.events_path = Some(path.display().to_string());
    let result = Simulator::new(cfg).expect("valid config").run();
    let text = std::fs::read_to_string(&path).expect("event log written");
    std::fs::remove_file(&path).ok();
    (text, result.metrics.offload_decisions)
}

#[test]
fn mesh_event_log_is_run_twice_identical() {
    let topo = TopologySpec::ErdosRenyi {
        edge_prob: 0.3,
        seed: 7,
    };
    let (a, decisions) = routed(topo, "mesh", 0);
    let (b, _) = routed(topo, "mesh", 1);
    assert_eq!(a, b, "mesh event logs diverged between identical runs");
    assert!(!a.is_empty());
    assert!(
        decisions > 0,
        "offload balancer resolved no decisions on the mesh"
    );
    assert!(
        a.contains("\"kind\":\"offload_decided\""),
        "no offload_decided events in the mesh log"
    );
}

#[test]
fn tiered_event_log_is_run_twice_identical() {
    let topo = TopologySpec::Tiered { gateways: 2 };
    let (a, decisions) = routed(topo, "tiered", 0);
    let (b, _) = routed(topo, "tiered", 1);
    assert_eq!(a, b, "tiered event logs diverged between identical runs");
    assert!(
        decisions > 0,
        "offload balancer resolved no decisions on the tier graph"
    );
    assert!(a.contains("\"kind\":\"offload_decided\""));
}

/// The non-chain topologies exercise the sharded kernel's serial
/// route fold (chains take the segmented suffix-sum instead): the
/// threaded log must still be byte-identical to the serial one.
#[test]
fn threaded_mesh_and_tiered_logs_match_serial() {
    for (topo, tag) in [
        (
            TopologySpec::ErdosRenyi {
                edge_prob: 0.3,
                seed: 7,
            },
            "mesh-par",
        ),
        (TopologySpec::Tiered { gateways: 2 }, "tiered-par"),
    ] {
        let (serial, _) = routed_threaded(topo, tag, 0, 1);
        for threads in [3, 8] {
            let (threaded, _) = routed_threaded(topo, tag, 1, threads);
            assert_eq!(
                serial, threaded,
                "{tag}: threaded (t={threads}) log diverged from serial"
            );
        }
    }
}

#[test]
fn distinct_seeds_give_distinct_meshes() {
    // Sanity that the mesh golden is not vacuous: a different graph
    // seed actually changes the log.
    let (a, _) = routed(
        TopologySpec::ErdosRenyi {
            edge_prob: 0.3,
            seed: 7,
        },
        "seed7",
        0,
    );
    let (b, _) = routed(
        TopologySpec::ErdosRenyi {
            edge_prob: 0.3,
            seed: 8,
        },
        "seed8",
        0,
    );
    assert_ne!(a, b, "graph seed had no effect on the event log");
}

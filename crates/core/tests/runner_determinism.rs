//! Golden tests for the runner's determinism contract: a batch folded
//! on the work-stealing pool must be bit-identical to the same batch
//! run serially, at every worker count, because the coordinator folds
//! strictly in job-index order.

use neofog_core::experiment::{
    ablation_with, figure10_11_with, figure9_with, multiplex_sweep_with, run_many, run_many_with,
};
use neofog_core::fleet::{run_fleet, run_fleet_with, FleetReducer};
use neofog_core::runner::{NoProgress, PoolConfig, Progress, Reduce};
use neofog_core::sim::SimConfig;
use neofog_core::SystemKind;
use neofog_energy::Scenario;

fn quick(seed: u64, slots: u64) -> SimConfig {
    let mut cfg =
        SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, seed);
    cfg.slots = slots;
    cfg
}

#[test]
fn parallel_matches_serial_across_worker_counts() {
    let configs: Vec<SimConfig> = (0..6).map(|k| quick(k, 60)).collect();
    let serial =
        run_many_with(&configs, &PoolConfig::with_workers(1), &mut NoProgress).expect("serial");
    for workers in [2, 8] {
        let parallel = run_many_with(
            &configs,
            &PoolConfig::with_workers(workers),
            &mut NoProgress,
        )
        .expect("parallel");
        assert_eq!(serial, parallel, "workers={workers} diverged from serial");
    }
    assert_eq!(serial, run_many(&configs).expect("default pool"));
}

#[test]
fn mixed_duration_batch_preserves_input_order() {
    // Heterogeneous slot counts: later (short) jobs finish long before
    // earlier (long) ones, so out-of-order completion is guaranteed
    // with more than one worker — results must still come back in
    // input order.
    let slots = [240u64, 30, 150, 60, 10, 200];
    let configs: Vec<SimConfig> = slots
        .iter()
        .enumerate()
        .map(|(k, &s)| quick(k as u64, s))
        .collect();
    let results = run_many_with(&configs, &PoolConfig::with_workers(3), &mut NoProgress)
        .expect("mixed batch runs");
    let got: Vec<u64> = results.iter().map(|r| r.config.slots).collect();
    assert_eq!(got, slots);
    let serial =
        run_many_with(&configs, &PoolConfig::with_workers(1), &mut NoProgress).expect("serial");
    assert_eq!(serial, results);
}

#[test]
fn fleet_with_one_chain_is_degenerate() {
    let fleet = run_fleet(&quick(3, 40), 1).expect("one-chain fleet runs");
    assert_eq!(fleet.chains, 1);
    for stat in [&fleet.fog, &fleet.total, &fleet.captured] {
        assert_eq!(stat.mean, stat.min);
        assert_eq!(stat.min, stat.p10);
        assert_eq!(stat.p10, stat.p50);
        assert_eq!(stat.p50, stat.p90);
        assert_eq!(stat.p90, stat.max);
        assert_eq!(stat.std_dev, 0.0);
    }
}

#[test]
fn fleet_reducer_item_is_24_bytes() {
    // The acceptance criterion for streaming aggregation: what crosses
    // from a worker to the fold is three u64 counters, nothing more.
    assert_eq!(
        std::mem::size_of::<<FleetReducer as Reduce>::Item>(),
        24,
        "ChainSummary grew past three u64 counters"
    );
}

#[test]
fn fleet_identical_across_worker_counts() {
    let base = quick(11, 50);
    let one =
        run_fleet_with(&base, 12, &PoolConfig::with_workers(1), &mut NoProgress).expect("1 worker");
    let eight = run_fleet_with(&base, 12, &PoolConfig::with_workers(8), &mut NoProgress)
        .expect("8 workers");
    assert_eq!(one, eight);
    assert_eq!(one, run_fleet(&base, 12).expect("default pool"));
}

#[test]
fn figure_helpers_identical_across_worker_counts() {
    let w1 = PoolConfig::with_workers(1);
    let w8 = PoolConfig::with_workers(8);

    let fig9_serial = figure9_with(1, None, &w1, &mut NoProgress).expect("figure9 serial");
    let fig9_parallel = figure9_with(1, None, &w8, &mut NoProgress).expect("figure9 parallel");
    assert_eq!(fig9_serial, fig9_parallel);

    let sweep_serial = multiplex_sweep_with(
        Scenario::MountainRainy,
        &[1, 2],
        3,
        None,
        &w1,
        &mut NoProgress,
    )
    .expect("sweep serial");
    let sweep_parallel = multiplex_sweep_with(
        Scenario::MountainRainy,
        &[1, 2],
        3,
        None,
        &w8,
        &mut NoProgress,
    )
    .expect("sweep parallel");
    assert_eq!(sweep_serial, sweep_parallel);

    let fig10_serial = figure10_11_with(
        Scenario::ForestIndependent,
        &[1],
        None,
        &w1,
        &mut NoProgress,
    )
    .expect("fig10 serial");
    let fig10_parallel = figure10_11_with(
        Scenario::ForestIndependent,
        &[1],
        None,
        &w8,
        &mut NoProgress,
    )
    .expect("fig10 parallel");
    assert_eq!(fig10_serial, fig10_parallel);

    let ablation_serial = ablation_with(Scenario::MountainRainy, 2, None, &w1, &mut NoProgress)
        .expect("ablation serial");
    let ablation_parallel = ablation_with(Scenario::MountainRainy, 2, None, &w8, &mut NoProgress)
        .expect("ablation parallel");
    assert_eq!(ablation_serial, ablation_parallel);
}

#[test]
fn error_cancels_whole_batch() {
    // Index 2 rejects at Simulator::new (sub-second slots are invalid
    // for the distributed balancer); the batch must surface the error.
    let mut bad = quick(2, 40);
    bad.slot_len = neofog_types::Duration::from_micros(250_000);
    let configs = vec![quick(0, 40), quick(1, 40), bad, quick(3, 40)];
    let err = run_many_with(&configs, &PoolConfig::with_workers(2), &mut NoProgress)
        .expect_err("invalid config fails the batch");
    assert!(
        matches!(err, neofog_types::NeoFogError::InvalidConfig { .. }),
        "{err}"
    );
}

/// Counts callbacks and checks the `finished` counter is monotone.
#[derive(Default)]
struct CountingProgress {
    started: usize,
    finished: usize,
    last_finished: usize,
}

impl Progress for CountingProgress {
    fn on_started(&mut self, _index: usize, _total: usize) {
        self.started += 1;
    }

    fn on_finished(&mut self, _index: usize, finished: usize, total: usize) {
        assert!(finished > self.last_finished, "finished count not monotone");
        assert!(finished <= total);
        self.last_finished = finished;
        self.finished += 1;
    }
}

#[test]
fn progress_observer_sees_every_job() {
    let configs: Vec<SimConfig> = (0..7).map(|k| quick(k, 30)).collect();
    let mut progress = CountingProgress::default();
    run_many_with(&configs, &PoolConfig::with_workers(3), &mut progress).expect("batch runs");
    assert_eq!(progress.started, configs.len());
    assert_eq!(progress.finished, configs.len());
}

//! Steady-state allocation discipline for the slot loop.
//!
//! The scratch [`SlotCtx`] retains its vectors across slots, so after
//! a short warm-up (first slots grow the scratch and the per-node
//! queues to their working capacity) the phase pipeline must perform
//! **zero heap allocations per slot**. A counting global allocator
//! snapshots the allocation counter at slot boundaries through the
//! event bus and asserts the steady-state window allocates nothing.
//!
//! Scope: the balance phase is excluded (`BalancerKind::None`) — the
//! tree and distributed balancers still build their per-slot task
//! views on the heap, which DESIGN.md §11 records as a known,
//! fog-only caveat.

use neofog_alloc_probe::{allocation_count, CountingAlloc};
use neofog_core::sim::{BalancerKind, SimConfig, SimEvent, SimObserver, Simulator};
use neofog_core::SystemKind;
use neofog_energy::Scenario;
use std::cell::Cell;
use std::rc::Rc;

// The counting allocator lives in `neofog-alloc-probe` — the one crate
// allowed to hold unsafe code (the workspace forbids it everywhere
// else). It counts every allocation and reallocation; frees don't
// matter for the discipline, growth is what it forbids.
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Records the allocation counter at the start of `from_slot` and at
/// every later slot boundary, without allocating itself.
struct SlotAllocProbe {
    from_slot: u64,
    at_warmup: Rc<Cell<u64>>,
    at_last: Rc<Cell<u64>>,
}

impl SimObserver for SlotAllocProbe {
    fn on_event(&mut self, event: &SimEvent) {
        if let SimEvent::SlotBegan { slot } = event {
            let count = allocation_count();
            if *slot == self.from_slot {
                self.at_warmup.set(count);
            } else if *slot > self.from_slot {
                self.at_last.set(count);
            }
        }
    }
}

fn steady_state_allocs(mut cfg: SimConfig, warmup_slots: u64) -> u64 {
    let at_warmup = Rc::new(Cell::new(0));
    let at_last = Rc::new(Cell::new(0));
    cfg.balancer = BalancerKind::None;
    let mut sim = Simulator::new(cfg).expect("valid config");
    sim.attach_observer(Box::new(SlotAllocProbe {
        from_slot: warmup_slots,
        at_warmup: at_warmup.clone(),
        at_last: at_last.clone(),
    }));
    let _ = sim.run();
    // Window: everything between the start of slot `warmup_slots` and
    // the start of the final slot (the probe never sees the last
    // slot's own work, which is fine — it is identical to its
    // predecessors).
    at_last.get().saturating_sub(at_warmup.get())
}

#[test]
fn slot_loop_is_allocation_free_after_warmup() {
    // Both front-end families, both trace recipes: the volatile NOS
    // baseline and the full FIOS fog system (balance excluded — see
    // the module docs), in an ample and a scarce energy regime.
    let cases = [
        (SystemKind::NosVp, Scenario::ForestIndependent),
        (SystemKind::FiosNeoFog, Scenario::ForestIndependent),
        (SystemKind::FiosNeoFog, Scenario::MountainRainy),
    ];
    for (system, scenario) in cases {
        let mut cfg = SimConfig::paper_default(system, scenario, 1);
        cfg.slots = 300;
        // The first slots grow the scratch vectors and per-node queues
        // to working capacity; 16 slots is comfortably past that.
        let allocs = steady_state_allocs(cfg, 16);
        assert_eq!(
            allocs, 0,
            "{system:?}/{scenario:?}: steady-state slots allocated {allocs} times"
        );
    }
}

#[test]
fn multiplexed_slot_loop_is_allocation_free_after_warmup() {
    let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::BridgeDependent, 1);
    cfg.slots = 300;
    cfg.multiplex = 3;
    let allocs = steady_state_allocs(cfg, 16);
    assert_eq!(allocs, 0, "multiplex-3 steady state allocated {allocs}");
}

#[test]
fn wide_chain_columnar_sweeps_are_allocation_free_after_warmup() {
    // A 1000-position chain: the columnar sweeps (harvest, wake,
    // compute skip, transmit relay fold, slot end) each walk
    // thousand-element columns, and `begin_slot`'s in-place fills plus
    // the transmit suffix-sum must not regrow anything. The trace
    // resolution is coarsened to the slot length so the per-node
    // curves stay small at this width.
    let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 1);
    cfg.positions = 1_000;
    cfg.slots = 60;
    cfg.trace_dt = cfg.slot_len;
    let allocs = steady_state_allocs(cfg, 16);
    assert_eq!(allocs, 0, "wide-chain steady state allocated {allocs}");
}

#[test]
fn mesh_slot_loop_is_allocation_free_after_warmup() {
    // A routed mesh: the transmit relay fold walks the topological
    // sweep order instead of the chain's reverse suffix-sum, and the
    // route accumulator (`SlotCtx::route_acc`) is resized once during
    // warm-up. Steady state must stay allocation-free on the general
    // path too (balance excluded, as everywhere in this file).
    let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 1);
    cfg.positions = 200;
    cfg.slots = 120;
    cfg.topology = neofog_net::TopologySpec::ErdosRenyi {
        edge_prob: 0.05,
        seed: 7,
    };
    let allocs = steady_state_allocs(cfg, 16);
    assert_eq!(allocs, 0, "mesh steady state allocated {allocs}");
}

#[test]
fn tiered_slot_loop_is_allocation_free_after_warmup() {
    let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 1);
    cfg.positions = 120;
    cfg.slots = 120;
    cfg.topology = neofog_net::TopologySpec::Tiered { gateways: 4 };
    let allocs = steady_state_allocs(cfg, 16);
    assert_eq!(allocs, 0, "tiered steady state allocated {allocs}");
}

#[test]
fn threaded_slot_loop_allocations_are_constant_in_fleet_size() {
    // The sharded kernel spawns scoped threads per parallel round, and
    // `std::thread::scope` allocates per spawn — a fixed per-slot cost
    // the global counter sees regardless of which worker allocated.
    // The discipline for the threaded path is therefore: once shard
    // scratch is warm, steady-state allocations are a constant of the
    // thread count alone — growing the fleet 8× must not add a single
    // allocation (no per-node or per-event heap traffic on any worker).
    let allocs_at = |positions: usize| {
        let mut cfg =
            SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 1);
        cfg.positions = positions;
        cfg.slots = 60;
        cfg.trace_dt = cfg.slot_len;
        cfg.threads = 4;
        steady_state_allocs(cfg, 16)
    };
    let small = allocs_at(250);
    let large = allocs_at(2_000);
    assert_eq!(
        small, large,
        "threaded steady-state allocations scale with fleet size \
         (250 positions: {small}, 2000 positions: {large})"
    );
}

//! The sharded slot kernel's contract: for ANY thread count, a
//! threaded `advance()` produces a byte-identical event log and
//! identical durable column state to the serial path.
//!
//! The shard layer (see `sim/shard.rs`) argues this analytically —
//! position-aligned shards share no mutable state, per-shard event
//! buffers splice back in node order, and the chain relay fold is an
//! exact `u64` suffix-sum decomposition. This file checks the claim
//! empirically: a fixed matrix of topology × multiplex × thread-count
//! cases, plus a proptest sweeping random fleets, topologies and shard
//! counts 1..=16.

use neofog_core::sim::{BalancerKind, SimConfig, Simulator};
use neofog_core::SystemKind;
use neofog_energy::Scenario;
use neofog_net::TopologySpec;
use proptest::prelude::*;

/// Runs `cfg` for `slots` slots at `threads` workers, returning the
/// state digest and the full event-log bytes.
fn run_threaded(mut cfg: SimConfig, slots: u64, threads: usize, tag: &str) -> (u64, String) {
    let path = std::env::temp_dir().join(format!(
        "neofog-par-equiv-{}-{tag}-t{threads}.jsonl",
        std::process::id()
    ));
    cfg.threads = threads;
    cfg.events_path = Some(path.display().to_string());
    let mut sim = Simulator::new(cfg).expect("valid config");
    sim.advance(slots);
    let digest = sim.state_digest();
    // The JSONL observer buffers; dropping the simulator flushes it.
    drop(sim);
    let text = std::fs::read_to_string(&path).expect("event log written");
    std::fs::remove_file(&path).ok();
    (digest, text)
}

fn base_cfg(system: SystemKind, positions: usize, multiplex: u32, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(system, Scenario::ForestIndependent, seed);
    cfg.positions = positions;
    cfg.multiplex = multiplex;
    cfg.slots = 40;
    cfg
}

/// Asserts serial ≡ threaded for one configuration across a spread of
/// thread counts (including more threads than positions).
fn assert_equivalent(cfg: &SimConfig, slots: u64, tag: &str, threads: &[usize]) {
    let (serial_digest, serial_log) = run_threaded(cfg.clone(), slots, 1, tag);
    for &t in threads {
        let (digest, log) = run_threaded(cfg.clone(), slots, t, tag);
        assert_eq!(
            serial_log,
            log,
            "{tag}: event log diverged at threads={t} (serial={} vs {} bytes)",
            serial_log.len(),
            log.len()
        );
        assert_eq!(
            serial_digest, digest,
            "{tag}: column state diverged at threads={t}"
        );
    }
}

#[test]
fn chain_threaded_matches_serial_across_systems() {
    for system in SystemKind::ALL {
        let cfg = base_cfg(system, 10, 1, 1);
        assert_equivalent(&cfg, 40, &format!("chain-{system:?}"), &[2, 3, 8, 16]);
    }
}

#[test]
fn multiplexed_chain_threaded_matches_serial() {
    // Position-aligned shard boundaries with 3 clones per position.
    let cfg = base_cfg(SystemKind::FiosNeoFog, 12, 3, 5);
    assert_equivalent(&cfg, 40, "chain-multiplex", &[2, 5, 12, 16]);
}

#[test]
fn mesh_threaded_matches_serial() {
    let mut cfg = base_cfg(SystemKind::FiosNeoFog, 12, 1, 7);
    cfg.topology = TopologySpec::ErdosRenyi {
        edge_prob: 0.3,
        seed: 7,
    };
    cfg.balancer = BalancerKind::Offload;
    assert_equivalent(&cfg, 40, "mesh", &[2, 4, 16]);
}

#[test]
fn tiered_threaded_matches_serial() {
    let mut cfg = base_cfg(SystemKind::FiosNeoFog, 12, 1, 9);
    cfg.topology = TopologySpec::Tiered { gateways: 2 };
    cfg.balancer = BalancerKind::Offload;
    assert_equivalent(&cfg, 40, "tiered", &[2, 4, 16]);
}

/// Miri-sized shard check: a fleet small enough for the interpreter,
/// driven through the real fork/splice machinery at three threads.
/// No event-log file — miri's isolation has no temp dir — so the
/// assertion rides on the durable-column digest alone; the byte-exact
/// event-stream half of the contract is pinned by the tests above.
/// CI's nightly miri job runs exactly this test by name.
#[test]
fn sharded_drive_small_fleet_threads3_matches_serial() {
    let mut cfg = base_cfg(SystemKind::FiosNeoFog, 6, 1, 11);
    cfg.slots = 8;
    let mut serial = Simulator::new(cfg.clone()).expect("valid config");
    serial.advance(8);
    let mut threaded_cfg = cfg;
    threaded_cfg.threads = 3;
    let mut threaded = Simulator::new(threaded_cfg).expect("valid config");
    threaded.advance(8);
    assert_eq!(
        serial.state_digest(),
        threaded.state_digest(),
        "column state diverged between serial and threads=3"
    );
}

#[test]
fn threads_zero_resolves_and_matches_serial() {
    let cfg = base_cfg(SystemKind::FiosNeoFog, 10, 1, 3);
    assert_equivalent(&cfg, 40, "threads-zero", &[0]);
}

#[test]
fn set_threads_mid_run_keeps_the_stream() {
    // Flip thread counts between advances: the log must match an
    // all-serial run slot for slot.
    let tag = "midrun";
    let cfg = base_cfg(SystemKind::FiosNeoFog, 10, 1, 4);
    let (_, serial_log) = run_threaded(cfg.clone(), 30, 1, tag);
    let path = std::env::temp_dir().join(format!(
        "neofog-par-equiv-{}-{tag}-mixed.jsonl",
        std::process::id()
    ));
    let mut mixed = cfg;
    mixed.events_path = Some(path.display().to_string());
    let mut sim = Simulator::new(mixed).expect("valid config");
    sim.advance(10);
    sim.set_threads(4);
    sim.advance(10);
    sim.set_threads(2);
    sim.advance(10);
    drop(sim);
    let mixed_log = std::fs::read_to_string(&path).expect("event log written");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        serial_log, mixed_log,
        "thread-count flips changed the stream"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random fleets, topologies and shard counts: threaded advance()
    /// is indistinguishable from serial.
    #[test]
    fn random_fleet_threaded_matches_serial(
        positions in 2usize..14,
        multiplex in 1u32..4,
        threads in 1usize..17,
        topo_pick in 0u8..3,
        seed in 0u64..1000,
    ) {
        let mut cfg = base_cfg(SystemKind::FiosNeoFog, positions, multiplex, seed);
        cfg.slots = 24;
        match topo_pick {
            0 => {}
            1 => {
                cfg.topology = TopologySpec::ErdosRenyi { edge_prob: 0.4, seed };
                cfg.balancer = BalancerKind::Offload;
            }
            _ => {
                if positions >= 4 {
                    cfg.topology = TopologySpec::Tiered { gateways: 2 };
                    cfg.balancer = BalancerKind::Offload;
                }
            }
        }
        let tag = format!("prop-{positions}-{multiplex}-{threads}-{topo_pick}-{seed}");
        let (serial_digest, serial_log) = run_threaded(cfg.clone(), 24, 1, &tag);
        let (digest, log) = run_threaded(cfg, 24, threads, &tag);
        prop_assert_eq!(serial_log, log, "event log diverged");
        prop_assert_eq!(serial_digest, digest, "column state diverged");
    }
}

//! Behavior-preservation tests for the phase-pipeline refactor.
//!
//! The simulator was split from one monolithic loop into six phase
//! functions feeding a typed event bus; these tests pin the observable
//! behavior to the pre-refactor implementation. The golden values were
//! captured from the monolithic simulator at the paper-default
//! configuration (forest scenario, seed 1, 150 slots) and are
//! identical in debug and release builds.

use neofog_core::sim::{SimConfig, Simulator};
use neofog_core::SystemKind;
use neofog_energy::Scenario;

fn quick(system: SystemKind) -> SimConfig {
    let mut cfg = SimConfig::paper_default(system, Scenario::ForestIndependent, 1);
    cfg.slots = 150;
    cfg
}

struct Golden {
    system: SystemKind,
    wakeups: u64,
    failures: u64,
    captured: u64,
    fog: u64,
    cloud: u64,
    dropped: u64,
    tasks: u64,
    balance: (u64, u64, u64),
    harvested_bits: u64,
    rejected_bits: u64,
    radio_bits: u64,
    compute_bits: u64,
}

/// Captured from the pre-refactor monolithic `sim.rs` at commit
/// 99568a6 by summing per-node energies in nanojoules and taking
/// `f64::to_bits` — bit-exact equality means the refactor preserved
/// the floating-point accumulation order, not just the totals.
///
/// `harvested_bits` and `rejected_bits` were re-captured when harvest
/// moved to the prefix-summed `EnergyCurve`: the prefix difference
/// reassociates the per-slot income sum, shifting those two fields by
/// a few ULPs (≤ 1e-13 relative). All counters and the radio/compute
/// energy bits — whose accumulation paths were untouched — are
/// bit-identical to the original capture.
const GOLDENS: &[Golden] = &[
    Golden {
        system: SystemKind::NosVp,
        wakeups: 1500,
        failures: 0,
        captured: 1500,
        fog: 0,
        cloud: 252,
        dropped: 1248,
        tasks: 0,
        balance: (0, 0, 0),
        harvested_bits: 0x42242f6acb210bec,
        rejected_bits: 0xbe50000000000000,
        radio_bits: 0x42153c17537ffffa,
        compute_bits: 0x0,
    },
    Golden {
        system: SystemKind::NosNvp,
        wakeups: 1492,
        failures: 8,
        captured: 1492,
        fog: 244,
        cloud: 0,
        dropped: 1169,
        tasks: 252,
        balance: (116, 626, 2101),
        harvested_bits: 0x42242f6acb210bec,
        rejected_bits: 0xbe50000000000000,
        radio_bits: 0x41ff8f359a9999a5,
        compute_bits: 0x420c46bd8134007f,
    },
    Golden {
        system: SystemKind::FiosNeoFog,
        wakeups: 1500,
        failures: 0,
        captured: 1500,
        fog: 472,
        cloud: 0,
        dropped: 955,
        tasks: 496,
        balance: (0, 0, 10),
        harvested_bits: 0x42242f6acb210bec,
        rejected_bits: 0x420295ed1382ede6,
        radio_bits: 0x41b143533ffffffd,
        compute_bits: 0x4218478d345c6829,
    },
];

#[test]
fn metrics_observer_reproduces_pre_refactor_results() {
    for g in GOLDENS {
        let result = Simulator::new(quick(g.system)).expect("valid config").run();
        let m = &result.metrics;
        let label = g.system.label();
        assert_eq!(m.total_wakeups(), g.wakeups, "{label} wakeups");
        assert_eq!(m.total_failures(), g.failures, "{label} failures");
        assert_eq!(m.total_captured(), g.captured, "{label} captured");
        assert_eq!(m.fog_processed(), g.fog, "{label} fog");
        assert_eq!(m.cloud_processed(), g.cloud, "{label} cloud");
        assert_eq!(m.total_dropped(), g.dropped, "{label} dropped");
        let tasks: u64 = m.nodes.iter().map(|n| n.tasks_executed).sum();
        assert_eq!(tasks, g.tasks, "{label} tasks");
        assert_eq!(
            (
                m.balance_interruptions,
                m.balance_tasks_moved,
                m.balance_transfer_hops
            ),
            g.balance,
            "{label} balance counters"
        );
        let bits = |f: fn(&neofog_core::NodeMetrics) -> f64| -> u64 {
            m.nodes.iter().map(f).sum::<f64>().to_bits()
        };
        assert_eq!(
            bits(|n| n.harvested.as_nanojoules()),
            g.harvested_bits,
            "{label} harvested bits"
        );
        assert_eq!(
            bits(|n| n.rejected.as_nanojoules()),
            g.rejected_bits,
            "{label} rejected bits"
        );
        assert_eq!(
            bits(|n| n.radio_energy.as_nanojoules()),
            g.radio_bits,
            "{label} radio bits"
        );
        assert_eq!(
            bits(|n| n.compute_energy.as_nanojoules()),
            g.compute_bits,
            "{label} compute bits"
        );
    }
}

#[test]
fn event_log_is_byte_identical_across_runs() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let paths = [
        dir.join(format!("neofog-events-{pid}-a.jsonl")),
        dir.join(format!("neofog-events-{pid}-b.jsonl")),
    ];
    let mut logs = Vec::new();
    for path in &paths {
        let mut cfg = quick(SystemKind::FiosNeoFog);
        cfg.events_path = Some(path.display().to_string());
        let _ = Simulator::new(cfg).expect("valid config").run();
        let bytes = std::fs::read(path).expect("event log written");
        std::fs::remove_file(path).ok();
        logs.push(bytes);
    }
    assert!(!logs[0].is_empty(), "event log must not be empty");
    assert_eq!(logs[0], logs[1], "same config + seed must log identically");
    let text = String::from_utf8(logs.pop().expect("two logs")).expect("utf-8 JSONL");
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
        assert!(line.contains("\"slot\":"), "line missing slot: {line}");
        assert!(line.contains("\"kind\":\""), "line missing kind: {line}");
    }
    assert!(
        text.lines().count() > 300,
        "150 slots should log >300 events"
    );
}

#[test]
fn event_log_brackets_every_slot() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("neofog-events-{}-c.jsonl", std::process::id()));
    let mut cfg = quick(SystemKind::NosVp);
    cfg.slots = 25;
    cfg.events_path = Some(path.display().to_string());
    let _ = Simulator::new(cfg).expect("valid config").run();
    let text = std::fs::read_to_string(&path).expect("event log written");
    std::fs::remove_file(&path).ok();
    let begins = text
        .lines()
        .filter(|l| l.contains("\"kind\":\"slot_began\""))
        .count();
    let ends = text
        .lines()
        .filter(|l| l.contains("\"kind\":\"slot_ended\""))
        .count();
    assert_eq!(begins, 25, "one slot_began per slot");
    assert_eq!(ends, 25, "one slot_ended per slot");
}

//! Fleet-scale smoke tests for the columnar slot kernel.
//!
//! Both tests are `#[ignore]`d: they build chains of 10⁵–10⁶ physical
//! nodes and belong to the nightly CI job, run in release mode:
//!
//! ```text
//! cargo test --release -p neofog-core --test million_node -- --ignored
//! ```
//!
//! The configuration mirrors the `slot_kernel` bench: the trace
//! resolution is coarsened to the slot length (per-node curve storage
//! scales with `slots × slot_len / trace_dt`, which is what makes a
//! 10⁶-node chain's curves fit in memory) and the balancer is `None`
//! (its per-slot task views are the one known slot-loop allocator,
//! DESIGN.md §11).

use neofog_alloc_probe::{allocation_count, CountingAlloc};
use neofog_core::sim::{BalancerKind, SimConfig, SimEvent, SimObserver, Simulator};
use neofog_core::SystemKind;
use neofog_energy::Scenario;
use std::cell::Cell;
use std::rc::Rc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Slot window the steady-state driver cycles through.
const WINDOW_SLOTS: u64 = 32;

fn chain_cfg(nodes: usize) -> SimConfig {
    let mut cfg = SimConfig::paper_default(SystemKind::FiosNeoFog, Scenario::ForestIndependent, 1);
    cfg.positions = nodes;
    cfg.slots = WINDOW_SLOTS;
    cfg.trace_dt = cfg.slot_len;
    cfg.balancer = BalancerKind::None;
    cfg
}

/// Counts wakes and deliveries without allocating.
struct Progress {
    woke: Rc<Cell<u64>>,
    delivered: Rc<Cell<u64>>,
}

impl SimObserver for Progress {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::NodeWoke { .. } => self.woke.set(self.woke.get() + 1),
            SimEvent::PackageDelivered { .. } => self.delivered.set(self.delivered.get() + 1),
            _ => {}
        }
    }
}

/// A 10⁵-node chain reaches an allocation-free steady state: after two
/// windows of warm-up (queue growth across the wrap), a further window
/// of slots performs zero heap allocations.
#[test]
#[ignore = "fleet-scale: run in release mode via the nightly job"]
fn hundred_thousand_node_chain_is_allocation_free_in_steady_state() {
    let mut sim = Simulator::new(chain_cfg(100_000)).expect("valid config");
    sim.advance(2 * WINDOW_SLOTS);
    let at_warmup = allocation_count();
    sim.advance(WINDOW_SLOTS);
    let allocs = allocation_count().saturating_sub(at_warmup);
    assert_eq!(
        allocs, 0,
        "10^5-node steady-state window allocated {allocs} times"
    );
}

/// A 10⁶-node chain builds and advances a few hundred slots, making
/// real progress (nodes wake, packages arrive at the sink edge).
#[test]
#[ignore = "fleet-scale: run in release mode via the nightly job"]
fn million_node_chain_advances_hundreds_of_slots() {
    let woke = Rc::new(Cell::new(0));
    let delivered = Rc::new(Cell::new(0));
    let mut sim = Simulator::new(chain_cfg(1_000_000)).expect("valid config");
    sim.attach_observer(Box::new(Progress {
        woke: woke.clone(),
        delivered: delivered.clone(),
    }));
    sim.advance(200);
    assert!(woke.get() > 0, "no node ever woke");
    assert!(delivered.get() > 0, "nothing reached the sink edge");
}

/// The threads-variant of the 10⁶-node smoke: the sharded kernel
/// (all available cores) advances the same fleet and — because the
/// parallel sweeps are deterministic — wakes and delivers *exactly*
/// as many packages as the serial run above would in the same window.
#[test]
#[ignore = "fleet-scale: run in release mode via the nightly job"]
fn million_node_chain_advances_threaded() {
    let count = |threads: usize, slots: u64| {
        let woke = Rc::new(Cell::new(0));
        let delivered = Rc::new(Cell::new(0));
        let mut cfg = chain_cfg(1_000_000);
        cfg.threads = threads;
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.attach_observer(Box::new(Progress {
            woke: woke.clone(),
            delivered: delivered.clone(),
        }));
        sim.advance(slots);
        (woke.get(), delivered.get())
    };
    // A short serial window pins the expected counts; the threaded run
    // (0 = all cores) covers the same window and must match exactly.
    let (serial_woke, serial_delivered) = count(1, 2 * WINDOW_SLOTS);
    let (woke, delivered) = count(0, 2 * WINDOW_SLOTS);
    assert!(woke > 0, "no node ever woke under the sharded kernel");
    assert_eq!(
        (woke, delivered),
        (serial_woke, serial_delivered),
        "threaded progress diverged from serial"
    );
}

//! Shared primitive types for the NEOFog workspace.
//!
//! This crate defines the vocabulary every other NEOFog crate speaks:
//!
//! * [`units`] — strongly typed physical quantities ([`Energy`],
//!   [`Power`], [`Duration`], [`SimTime`]) with checked, dimensionally
//!   consistent arithmetic. Internally energy is tracked in nanojoules,
//!   power in milliwatts and time in microseconds, because at those
//!   scales every constant measured in the NEOFog paper (ASPLOS'18) is
//!   exactly representable: `1 mW × 1 µs = 1 nJ`.
//! * [`id`] — newtype identifiers for nodes, chains, logical
//!   (virtualized) nodes, tasks and packets.
//! * [`error`] — the [`NeoFogError`] error type used across the
//!   workspace.
//! * [`rng`] — a small, deterministic, dependency-free PRNG
//!   ([`rng::SimRng`]) so that every simulation is reproducible from a
//!   seed.
//!
//! # Examples
//!
//! ```
//! use neofog_types::{Power, Duration, Energy};
//!
//! // The paper's Zigbee radio draws 89.1 mW while transmitting and one
//! // byte takes 32 µs at 250 kbps, i.e. 2851.2 nJ per byte.
//! let tx = Power::from_milliwatts(89.1) * Duration::from_micros(32);
//! assert!((tx.as_nanojoules() - 2851.2).abs() < 1e-9);
//! ```

pub mod error;
pub mod id;
pub mod rng;
pub mod units;

pub use error::NeoFogError;
pub use id::{ChainId, LogicalId, NodeId, PacketId, TaskId};
pub use rng::SimRng;
pub use units::{Duration, Energy, Power, SimTime};

/// Convenience alias for results returned throughout the workspace.
pub type Result<T> = std::result::Result<T, NeoFogError>;

//! Strongly typed physical quantities.
//!
//! The NEOFog paper reports every timing constant in milliseconds with at
//! most three decimal places and every power in milliwatts, so the
//! microsecond / milliwatt / nanojoule triple is closed under the
//! arithmetic the simulator performs: `mW × µs = nJ` exactly.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An amount of energy, stored in nanojoules.
///
/// `Energy` is a simple `f64` newtype: cheap to copy, totally ordered in
/// practice (construction from NaN is rejected by [`Energy::from_nanojoules`]
/// in debug builds) and closed under addition/subtraction and scalar
/// multiplication.
///
/// # Examples
///
/// ```
/// use neofog_types::Energy;
///
/// let per_inst = Energy::from_nanojoules(2.508);
/// let task = per_inst * 545.0; // Bridge-health naive task (Table 2)
/// assert!((task.as_nanojoules() - 1366.86).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from nanojoules.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `nj` is NaN.
    #[must_use]
    pub fn from_nanojoules(nj: f64) -> Self {
        debug_assert!(!nj.is_nan(), "energy must not be NaN");
        Energy(nj)
    }

    /// Creates an energy from microjoules.
    #[must_use]
    pub fn from_microjoules(uj: f64) -> Self {
        Self::from_nanojoules(uj * 1e3)
    }

    /// Creates an energy from millijoules.
    #[must_use]
    pub fn from_millijoules(mj: f64) -> Self {
        Self::from_nanojoules(mj * 1e6)
    }

    /// Creates an energy from joules.
    #[must_use]
    pub fn from_joules(j: f64) -> Self {
        Self::from_nanojoules(j * 1e9)
    }

    /// Returns the energy in nanojoules.
    #[must_use]
    pub fn as_nanojoules(self) -> f64 {
        self.0
    }

    /// Returns the energy in microjoules.
    #[must_use]
    pub fn as_microjoules(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the energy in millijoules.
    #[must_use]
    pub fn as_millijoules(self) -> f64 {
        self.0 * 1e-6
    }

    /// Returns the energy in joules.
    #[must_use]
    pub fn as_joules(self) -> f64 {
        self.0 * 1e-9
    }

    /// Returns `true` if this energy is negative.
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }

    /// Clamps negative values to zero.
    #[must_use]
    pub fn max_zero(self) -> Self {
        Energy(self.0.max(0.0))
    }

    /// Returns the smaller of two energies.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Energy(self.0.min(other.0))
    }

    /// Returns the larger of two energies.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Energy(self.0.max(other.0))
    }

    /// Saturating subtraction: never goes below zero.
    #[must_use]
    pub fn saturating_sub(self, other: Self) -> Self {
        Energy((self.0 - other.0).max(0.0))
    }

    /// How long this energy can sustain the given power draw.
    ///
    /// Returns [`Duration::MAX`] when `power` is zero or negative.
    #[must_use]
    pub fn sustains(self, power: Power) -> Duration {
        if power.as_milliwatts() <= 0.0 {
            return Duration::MAX;
        }
        let us = (self.0 / power.as_milliwatts()).max(0.0);
        if us >= Duration::MAX.as_micros() as f64 {
            Duration::MAX
        } else {
            Duration::from_micros(us.floor() as u64)
        }
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nj = self.0.abs();
        if nj >= 1e9 {
            write!(f, "{:.3} J", self.as_joules())
        } else if nj >= 1e6 {
            write!(f, "{:.3} mJ", self.as_millijoules())
        } else if nj >= 1e3 {
            write!(f, "{:.3} uJ", self.as_microjoules())
        } else {
            write!(f, "{:.3} nJ", self.0)
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    /// Dimensionless ratio of two energies.
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

/// A power draw or income, stored in milliwatts.
///
/// # Examples
///
/// ```
/// use neofog_types::{Power, Duration};
///
/// let nvp = Power::from_milliwatts(0.209); // NVP core @ 1 MHz
/// let e = nvp * Duration::from_millis(10);
/// assert!((e.as_microjoules() - 2.09).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from milliwatts.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `mw` is NaN.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        debug_assert!(!mw.is_nan(), "power must not be NaN");
        Power(mw)
    }

    /// Creates a power from microwatts.
    #[must_use]
    pub fn from_microwatts(uw: f64) -> Self {
        Self::from_milliwatts(uw * 1e-3)
    }

    /// Creates a power from watts.
    #[must_use]
    pub fn from_watts(w: f64) -> Self {
        Self::from_milliwatts(w * 1e3)
    }

    /// Returns the power in milliwatts.
    #[must_use]
    pub fn as_milliwatts(self) -> f64 {
        self.0
    }

    /// Returns the power in microwatts.
    #[must_use]
    pub fn as_microwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the power in watts.
    #[must_use]
    pub fn as_watts(self) -> f64 {
        self.0 * 1e-3
    }

    /// Clamps negative values to zero.
    #[must_use]
    pub fn max_zero(self) -> Self {
        Power(self.0.max(0.0))
    }

    /// Returns the smaller of two powers.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Power(self.0.min(other.0))
    }

    /// Returns the larger of two powers.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Power(self.0.max(other.0))
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mw = self.0.abs();
        if mw >= 1e3 {
            write!(f, "{:.3} W", self.as_watts())
        } else if mw >= 1.0 {
            write!(f, "{:.3} mW", self.0)
        } else {
            write!(f, "{:.3} uW", self.as_microwatts())
        }
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl SubAssign for Power {
    fn sub_assign(&mut self, rhs: Power) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Mul<Power> for f64 {
    type Output = Power;
    fn mul(self, rhs: Power) -> Power {
        Power(self * rhs.0)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Power {
        Power(self.0 / rhs)
    }
}

impl Div<Power> for Power {
    /// Dimensionless ratio of two powers.
    type Output = f64;
    fn div(self, rhs: Power) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<Duration> for Power {
    type Output = Energy;
    /// Integrates a constant power over a duration: `mW × µs = nJ`.
    fn mul(self, rhs: Duration) -> Energy {
        Energy(self.0 * rhs.as_micros() as f64)
    }
}

impl Mul<Power> for Duration {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

/// A span of simulated time, stored in whole microseconds.
///
/// Every timing constant in the paper (531 ms RF init, 1.74 ms NVRF
/// start, 0.032 ms/byte on air, ...) is an exact number of microseconds,
/// so `u64` microseconds lose nothing.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// The maximum representable duration.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Creates a duration from whole minutes.
    #[must_use]
    pub const fn from_mins(m: u64) -> Self {
        Duration(m * 60_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    #[must_use]
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "duration must be finite and non-negative"
        );
        Duration((ms * 1_000.0).round() as u64)
    }

    /// Returns the duration in whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration in fractional minutes.
    #[must_use]
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000_000.0
    }

    /// Returns `true` for the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Duration(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Duration(self.0.max(other.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60_000_000 {
            write!(f, "{:.2} min", self.as_mins_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else {
            write!(f, "{} us", self.0)
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics in debug builds on underflow, like integer subtraction.
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<Duration> for u64 {
    type Output = Duration;
    fn mul(self, rhs: Duration) -> Duration {
        rhs * self
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    /// Dimensionless ratio (truncating) of two durations.
    type Output = u64;
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

/// An absolute point on the simulation clock, in microseconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const START: SimTime = SimTime(0);

    /// Creates a time stamp from microseconds since the epoch.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Duration {
        debug_assert!(earlier.0 <= self.0, "`earlier` must not be after `self`");
        Duration(self.0 - earlier.0)
    }

    /// Saturating elapsed time since another instant (zero if `earlier`
    /// is actually later).
    #[must_use]
    pub const fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_duration_is_energy() {
        let e = Power::from_milliwatts(89.1) * Duration::from_micros(32);
        assert!((e.as_nanojoules() - 2851.2).abs() < 1e-9);
    }

    #[test]
    fn energy_unit_conversions_round_trip() {
        let e = Energy::from_millijoules(81.7);
        assert!((e.as_nanojoules() - 81.7e6).abs() < 1e-3);
        assert!((e.as_microjoules() - 81.7e3).abs() < 1e-6);
        assert!((e.as_joules() - 81.7e-3).abs() < 1e-12);
    }

    #[test]
    fn energy_saturating_sub_clamps() {
        let a = Energy::from_nanojoules(5.0);
        let b = Energy::from_nanojoules(7.0);
        assert_eq!(a.saturating_sub(b), Energy::ZERO);
        assert_eq!(b.saturating_sub(a), Energy::from_nanojoules(2.0));
    }

    #[test]
    fn energy_sustains_power() {
        let e = Energy::from_microjoules(1.0); // 1000 nJ
        let p = Power::from_milliwatts(2.0);
        assert_eq!(e.sustains(p), Duration::from_micros(500));
        assert_eq!(e.sustains(Power::ZERO), Duration::MAX);
    }

    #[test]
    fn duration_conversions_are_exact() {
        assert_eq!(Duration::from_millis_f64(1.74).as_micros(), 1740);
        assert_eq!(Duration::from_millis_f64(0.032).as_micros(), 32);
        assert_eq!(Duration::from_millis(531).as_micros(), 531_000);
        assert_eq!(Duration::from_mins(5).as_micros(), 300_000_000);
    }

    #[test]
    fn duration_ordering_and_arithmetic() {
        let a = Duration::from_millis(3);
        let b = Duration::from_millis(5);
        assert!(a < b);
        assert_eq!(a + b, Duration::from_millis(8));
        assert_eq!(b - a, Duration::from_millis(2));
        assert_eq!(b.saturating_sub(a + b), Duration::ZERO);
        assert_eq!(b / a, 1);
        assert_eq!((b * 4) / 2, Duration::from_millis(10));
    }

    #[test]
    fn simtime_advances() {
        let t0 = SimTime::START;
        let t1 = t0 + Duration::from_secs(2);
        assert_eq!(t1.since(t0), Duration::from_secs(2));
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
    }

    #[test]
    fn display_picks_sane_scales() {
        assert_eq!(format!("{}", Energy::from_nanojoules(42.0)), "42.000 nJ");
        assert_eq!(format!("{}", Energy::from_millijoules(1.5)), "1.500 mJ");
        assert_eq!(format!("{}", Power::from_milliwatts(89.1)), "89.100 mW");
        assert_eq!(format!("{}", Power::from_microwatts(209.0)), "209.000 uW");
        assert_eq!(format!("{}", Duration::from_millis(531)), "531.000 ms");
        assert_eq!(format!("{}", Duration::from_mins(15)), "15.00 min");
    }

    #[test]
    fn sums_work() {
        let total: Energy = (0..4).map(|i| Energy::from_nanojoules(f64::from(i))).sum();
        assert_eq!(total, Energy::from_nanojoules(6.0));
        let d: Duration = (1..=3).map(Duration::from_micros).sum();
        assert_eq!(d, Duration::from_micros(6));
    }
}

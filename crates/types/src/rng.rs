//! A small deterministic PRNG for reproducible simulations.
//!
//! The system simulator spawns thousands of node models, each of which
//! needs an independent stream of randomness (power variance, packet
//! loss, trace segment shuffling). [`SimRng`] is an xoshiro256++ engine
//! seeded through SplitMix64, the standard recipe; it is *not*
//! cryptographically secure and must never be used for secrets.
//!
//! # Examples
//!
//! ```
//! use neofog_types::SimRng;
//!
//! let mut rng = SimRng::seed_from(42);
//! let a = rng.next_f64();
//! assert!((0.0..1.0).contains(&a));
//!
//! // Forked streams are independent but reproducible.
//! let mut fork = rng.fork(7);
//! let _ = fork.range_u64(10);
//! ```

/// Deterministic xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        // Avoid the all-zero state, which xoshiro cannot escape.
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng { state }
    }

    /// Derives an independent child generator. Calling `fork` with
    /// different `stream` values on clones of the same parent yields
    /// decorrelated streams; the parent is advanced once.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Returns the next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform index in `[0, len)`, convenient for slices.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.range_u64(len as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform range must be ordered");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a standard normal sample (Box–Muller transform).
    pub fn gaussian(&mut self) -> f64 {
        // Reject u1 == 0 so ln is finite.
        let mut u1 = self.next_f64();
        while u1 <= f64::EPSILON {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bound() {
        let mut rng = SimRng::seed_from(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.range_u64(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = SimRng::seed_from(99);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform(-1.0, 1.0)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SimRng::seed_from(31);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut parent = SimRng::seed_from(5);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(2);
        let equal = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn pick_and_chance_edge_cases() {
        let mut rng = SimRng::seed_from(8);
        let empty: [u8; 0] = [];
        assert!(rng.pick(&empty).is_none());
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}

//! Newtype identifiers used across the NEOFog workspace.
//!
//! Each identifier is a transparent wrapper around an unsigned integer,
//! giving static distinctions (a `NodeId` cannot be confused with a
//! `ChainId`) at zero runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name($repr);

        impl $name {
            /// Creates a new identifier from its raw integer value.
            #[must_use]
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            #[must_use]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Returns the raw value as a `usize`, for indexing.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $repr {
            fn from(id: $name) -> $repr {
                id.0
            }
        }
    };
}

define_id! {
    /// Identifies one *physical* sensor node.
    NodeId, u32, "n"
}

define_id! {
    /// Identifies one chain in a chain-mesh network.
    ChainId, u32, "c"
}

define_id! {
    /// Identifies one *logical* node: with NVD4Q virtualization several
    /// physical nodes ([`NodeId`]s) time-multiplex a single `LogicalId`.
    LogicalId, u32, "L"
}

define_id! {
    /// Identifies one schedulable unit of work (a "task" in the paper's
    /// terminology: one step of the per-sample processing pipeline).
    TaskId, u64, "t"
}

define_id! {
    /// Identifies one radio packet.
    PacketId, u64, "p"
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trips_raw_values() {
        let id = NodeId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(u32::from(id), 42);
    }

    #[test]
    fn displays_with_prefix() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
        assert_eq!(ChainId::new(3).to_string(), "c3");
        assert_eq!(LogicalId::new(1).to_string(), "L1");
        assert_eq!(TaskId::new(9).to_string(), "t9");
        assert_eq!(PacketId::new(0).to_string(), "p0");
    }

    #[test]
    fn usable_as_map_keys() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn orders_by_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}

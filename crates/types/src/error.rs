//! The workspace-wide error type.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by NEOFog components.
///
/// The variants map to the failure classes the paper's simulation
/// framework models (§4): invalid configuration, energy depletion,
/// buffer overflow, network desynchronization and transmission failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NeoFogError {
    /// A configuration value was out of range or inconsistent.
    InvalidConfig {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// An operation needed more stored energy than was available.
    EnergyDepleted {
        /// Energy needed, in nanojoules.
        needed_nj: u64,
        /// Energy available, in nanojoules.
        available_nj: u64,
    },
    /// A nonvolatile buffer could not accept more data.
    BufferFull {
        /// Capacity of the buffer in bytes.
        capacity: usize,
    },
    /// A node lost RTC synchronization with its cluster.
    Desynchronized,
    /// A packet could not be delivered after exhausting recovery.
    TransmissionFailed {
        /// Number of delivery attempts made.
        attempts: u32,
    },
    /// The referenced entity does not exist.
    NotFound {
        /// Description of the missing entity (e.g. `"node n17"`).
        what: String,
    },
    /// A load-balance round was interrupted by power failure; no
    /// balancing takes place in that region for this period (§3.2).
    BalanceInterrupted,
    /// An internal invariant was violated (a bug in the simulator, not
    /// in the caller's configuration).
    Internal {
        /// Description of the broken invariant.
        reason: String,
    },
}

impl fmt::Display for NeoFogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeoFogError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            NeoFogError::EnergyDepleted {
                needed_nj,
                available_nj,
            } => write!(
                f,
                "energy depleted: needed {needed_nj} nJ but only {available_nj} nJ stored"
            ),
            NeoFogError::BufferFull { capacity } => {
                write!(f, "nonvolatile buffer full at {capacity} bytes")
            }
            NeoFogError::Desynchronized => {
                write!(f, "node lost RTC synchronization with the cluster")
            }
            NeoFogError::TransmissionFailed { attempts } => {
                write!(f, "transmission failed after {attempts} attempts")
            }
            NeoFogError::NotFound { what } => write!(f, "not found: {what}"),
            NeoFogError::BalanceInterrupted => {
                write!(f, "load-balance round interrupted by power failure")
            }
            NeoFogError::Internal { reason } => {
                write!(f, "internal invariant violated: {reason}")
            }
        }
    }
}

impl StdError for NeoFogError {}

impl NeoFogError {
    /// Convenience constructor for [`NeoFogError::InvalidConfig`].
    #[must_use]
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        NeoFogError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`NeoFogError::NotFound`].
    #[must_use]
    pub fn not_found(what: impl Into<String>) -> Self {
        NeoFogError::NotFound { what: what.into() }
    }

    /// Convenience constructor for [`NeoFogError::Internal`].
    #[must_use]
    pub fn internal(reason: impl Into<String>) -> Self {
        NeoFogError::Internal {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        let e = NeoFogError::EnergyDepleted {
            needed_nj: 100,
            available_nj: 7,
        };
        assert_eq!(
            e.to_string(),
            "energy depleted: needed 100 nJ but only 7 nJ stored"
        );
        let e = NeoFogError::invalid_config("capacity must be positive");
        assert!(e.to_string().starts_with("invalid configuration"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_bounds<T: StdError + Send + Sync + 'static>() {}
        assert_bounds::<NeoFogError>();
    }

    #[test]
    fn not_found_names_the_entity() {
        let e = NeoFogError::not_found("node n17");
        assert_eq!(e.to_string(), "not found: node n17");
    }
}

//! Property tests: algebraic laws of the unit types.

use neofog_types::{Duration, Energy, Power};
use proptest::prelude::*;

fn energy() -> impl Strategy<Value = Energy> {
    (-1e12..1e12f64).prop_map(Energy::from_nanojoules)
}

fn nonneg_energy() -> impl Strategy<Value = Energy> {
    (0.0..1e12f64).prop_map(Energy::from_nanojoules)
}

proptest! {
    #[test]
    fn energy_addition_commutes(a in energy(), b in energy()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn energy_add_sub_round_trips(a in energy(), b in energy()) {
        let back = (a + b) - b;
        prop_assert!((back.as_nanojoules() - a.as_nanojoules()).abs() <= 1e-3 * a.as_nanojoules().abs().max(1.0));
    }

    #[test]
    fn saturating_sub_never_negative(a in nonneg_energy(), b in nonneg_energy()) {
        prop_assert!(!a.saturating_sub(b).is_negative());
    }

    #[test]
    fn power_time_energy_dimensional_consistency(
        mw in 0.0..1e4f64,
        us in 0u64..1_000_000_000,
    ) {
        let e = Power::from_milliwatts(mw) * Duration::from_micros(us);
        prop_assert!((e.as_nanojoules() - mw * us as f64).abs() < 1e-6 * (mw * us as f64).max(1.0));
    }

    #[test]
    fn sustains_is_inverse_of_integration(
        mw in 0.001..1e3f64,
        us in 1u64..100_000_000,
    ) {
        let p = Power::from_milliwatts(mw);
        let e = p * Duration::from_micros(us);
        let d = e.sustains(p);
        // Floor rounding may lose at most 1 us.
        prop_assert!(us - d.as_micros() <= 1, "{us} vs {}", d.as_micros());
    }

    #[test]
    fn duration_min_max_are_lattice(a in 0u64..u64::MAX/2, b in 0u64..u64::MAX/2) {
        let (da, db) = (Duration::from_micros(a), Duration::from_micros(b));
        prop_assert_eq!(da.min(db) + da.max(db), da + db);
        prop_assert!(da.min(db) <= da.max(db));
    }

    #[test]
    fn energy_scaling_distributes(a in -1e9..1e9f64, b in -1e9..1e9f64, k in -1e3..1e3f64) {
        let lhs = (Energy::from_nanojoules(a) + Energy::from_nanojoules(b)) * k;
        let rhs = Energy::from_nanojoules(a) * k + Energy::from_nanojoules(b) * k;
        prop_assert!((lhs.as_nanojoules() - rhs.as_nanojoules()).abs() < 1e-2_f64.max(lhs.as_nanojoules().abs() * 1e-9));
    }
}

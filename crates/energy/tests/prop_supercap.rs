//! Property tests: super-capacitor invariants under arbitrary
//! operation sequences.

use neofog_energy::SuperCap;
use neofog_types::{Duration, Energy, Power};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Charge(f64),
    Discharge(f64),
    Leak(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0..50.0f64).prop_map(Op::Charge),
        (0.0..50.0f64).prop_map(Op::Discharge),
        (0u64..100).prop_map(Op::Leak),
    ]
}

proptest! {
    #[test]
    fn stored_stays_within_bounds(ops in prop::collection::vec(op(), 1..200)) {
        let mut cap = SuperCap::new(Energy::from_millijoules(100.0))
            .with_charge_efficiency(0.7)
            .with_leak(Power::from_microwatts(10.0));
        for o in ops {
            match o {
                Op::Charge(mj) => { cap.charge(Energy::from_millijoules(mj)); }
                Op::Discharge(mj) => { cap.discharge_up_to(Energy::from_millijoules(mj)); }
                Op::Leak(s) => cap.leak(Duration::from_secs(s)),
            }
            prop_assert!(cap.stored() >= Energy::ZERO);
            prop_assert!(cap.stored() <= cap.capacity() * (1.0 + 1e-12));
        }
    }

    #[test]
    fn energy_ledger_always_balances(ops in prop::collection::vec(op(), 1..200)) {
        let mut cap = SuperCap::new(Energy::from_millijoules(100.0))
            .with_charge_efficiency(0.8)
            .with_leak(Power::from_microwatts(5.0));
        for o in ops {
            match o {
                Op::Charge(mj) => { cap.charge(Energy::from_millijoules(mj)); }
                Op::Discharge(mj) => { cap.discharge_up_to(Energy::from_millijoules(mj)); }
                Op::Leak(s) => cap.leak(Duration::from_secs(s)),
            }
        }
        let s = cap.stats();
        // banked = delivered + leaked + stored (within float tolerance)
        let lhs = s.banked.as_nanojoules();
        let rhs = (s.delivered + s.leaked + cap.stored()).as_nanojoules();
        prop_assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
        // offered = banked + conversion loss + rejected (input side)
        let offered = s.offered.as_nanojoules();
        let accounted = (s.banked + s.conversion_loss).as_nanojoules()
            + s.rejected.as_nanojoules();
        prop_assert!((offered - accounted).abs() < 1e-3 * offered.abs().max(1.0));
    }

    #[test]
    fn try_discharge_is_all_or_nothing(
        initial in 0.0..100.0f64,
        ask in 0.0..200.0f64,
    ) {
        let mut cap = SuperCap::new(Energy::from_millijoules(100.0))
            .with_initial(Energy::from_millijoules(initial));
        let before = cap.stored();
        match cap.try_discharge(Energy::from_millijoules(ask)) {
            Ok(()) => {
                let spent = (before - cap.stored()).as_millijoules();
                prop_assert!((spent - ask).abs() < 1e-9);
            }
            Err(_) => prop_assert_eq!(cap.stored(), before),
        }
    }
}

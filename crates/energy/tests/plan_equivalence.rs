//! Regression tests for the shared-base chain plan.
//!
//! Historically `TraceGenerator::node_trace` re-forked the base stream
//! (`0xBA5E`) on every call, so each call rebuilt a *different* base
//! curve and "dependent" nodes generated one at a time were not
//! actually correlated with the batch output. The plan API fixes this:
//! single-trace generation must be element-wise identical to batch
//! generation for every scenario, and the dependent base curve must be
//! synthesized once and shared.

use neofog_energy::{EnergyCurve, Scenario, TraceGenerator};
use neofog_types::Duration;
use std::sync::Arc;

const SCENARIOS: [Scenario; 4] = [
    Scenario::ForestIndependent,
    Scenario::BridgeDependent,
    Scenario::MountainSunny,
    Scenario::MountainRainy,
];

fn dims() -> (Duration, Duration) {
    (Duration::from_mins(30), Duration::from_secs(1))
}

#[test]
fn node_trace_matches_node_traces_elementwise() {
    let (total, dt) = dims();
    for scenario in SCENARIOS {
        let gen = TraceGenerator::new(scenario, 7);
        let batch = gen.node_traces(6, total, dt);
        for (i, expected) in batch.iter().enumerate() {
            let single = gen.node_trace(i as u64, total, dt);
            assert_eq!(&single, expected, "{scenario:?} node {i}");
        }
    }
}

#[test]
fn chain_plan_matches_node_traces() {
    let (total, dt) = dims();
    for scenario in SCENARIOS {
        let gen = TraceGenerator::new(scenario, 21);
        let batch = gen.node_traces(5, total, dt);
        let plan = gen.chain_plan(5, total, dt);
        assert_eq!(plan.len(), 5);
        for (i, expected) in batch.iter().enumerate() {
            assert_eq!(&plan.node_trace(i), expected, "{scenario:?} node {i}");
        }
    }
}

#[test]
fn plan_realization_is_order_independent() {
    let (total, dt) = dims();
    let gen = TraceGenerator::new(Scenario::BridgeDependent, 3);
    let plan = gen.chain_plan(4, total, dt);
    // Realizing node 3 first must not change what node 0 produces.
    let late_first = plan.node_trace(3);
    let early = plan.node_trace(0);
    let fresh = gen.chain_plan(4, total, dt);
    assert_eq!(fresh.node_trace(0), early);
    assert_eq!(fresh.node_trace(3), late_first);
}

#[test]
fn dependent_plans_share_one_base() {
    let (total, dt) = dims();
    for scenario in SCENARIOS {
        let plan = TraceGenerator::new(scenario, 5).chain_plan(8, total, dt);
        if scenario.is_dependent() {
            let base = plan.base().expect("dependent plans carry a base");
            // Cloning the plan shares the base allocation instead of
            // re-synthesizing it.
            let clone = plan.clone();
            assert!(Arc::ptr_eq(
                base,
                clone.base().expect("clone keeps the base")
            ));
        } else {
            assert!(plan.base().is_none(), "{scenario:?} must not build a base");
        }
    }
}

#[test]
fn separately_generated_dependent_nodes_are_correlated() {
    // The old per-call re-fork gave every call its own weather walk;
    // two traces requested one at a time now share the same base.
    let (total, dt) = dims();
    let gen = TraceGenerator::new(Scenario::BridgeDependent, 1);
    let a = gen.node_trace(0, total, dt);
    let b = gen.node_trace(1, total, dt);
    let corr = correlation(&a, &b);
    assert!(corr > 0.8, "dependent correlation too low: {corr}");
}

#[test]
fn node_curve_equals_scaled_trace_curve() {
    let (total, dt) = dims();
    for scenario in [Scenario::ForestIndependent, Scenario::MountainRainy] {
        let plan = TraceGenerator::new(scenario, 11).chain_plan(3, total, dt);
        for i in 0..3 {
            let via_plan = plan.node_curve(i, 0.75);
            let by_hand = EnergyCurve::new(plan.node_trace(i).scaled(0.75));
            assert_eq!(via_plan, by_hand, "{scenario:?} node {i}");
        }
    }
}

fn correlation(a: &neofog_energy::PowerTrace, b: &neofog_energy::PowerTrace) -> f64 {
    let av: Vec<f64> = a.samples().iter().map(|p| p.as_milliwatts()).collect();
    let bv: Vec<f64> = b.samples().iter().map(|p| p.as_milliwatts()).collect();
    let n = av.len().min(bv.len()) as f64;
    let ma = av.iter().sum::<f64>() / n;
    let mb = bv.iter().sum::<f64>() / n;
    let cov: f64 = av.iter().zip(&bv).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = av.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = bv.iter().map(|y| (y - mb).powi(2)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(f64::EPSILON)
}

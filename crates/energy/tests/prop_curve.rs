//! Property tests: the prefix-summed [`EnergyCurve`] must agree with
//! the walk-based [`PowerTrace::energy_between`] on arbitrary traces
//! and arbitrary (unaligned) intervals, within the accumulated
//! floating-point rounding of one pass over the trace.

use neofog_energy::{EnergyCurve, PowerTrace};
use neofog_types::{Duration, Power};
use proptest::prelude::*;

/// Arbitrary short trace: 0–64 samples of 0–10 mW on a 250 ms grid.
fn trace() -> impl Strategy<Value = PowerTrace> {
    prop::collection::vec(0.0..10.0f64, 0..64).prop_map(|mw| {
        PowerTrace::from_samples(
            Duration::from_millis(250),
            mw.into_iter().map(Power::from_milliwatts).collect(),
        )
    })
}

/// The curve and the walk both accumulate ~len additions, so allow
/// each a few ULPs of the total magnitude.
fn close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= 1e-9 * scale.abs().max(1.0)
}

proptest! {
    #[test]
    fn curve_matches_walk_on_arbitrary_intervals(
        t in trace(),
        a_us in 0u64..20_000_000,
        b_us in 0u64..20_000_000,
    ) {
        let (t0, t1) = (a_us.min(b_us), a_us.max(b_us));
        let (t0, t1) = (Duration::from_micros(t0), Duration::from_micros(t1));
        let walk = t.energy_between(t0, t1).as_nanojoules();
        let curve = EnergyCurve::new(t.clone());
        let fast = curve.energy_between(t0, t1).as_nanojoules();
        let total = curve.total_energy().as_nanojoules();
        prop_assert!(
            close(walk, fast, total),
            "interval [{t0:?}, {t1:?}): walk {walk} vs curve {fast} (total {total})"
        );
    }

    #[test]
    fn degenerate_interval_is_always_zero(t in trace(), at_us in 0u64..20_000_000) {
        let at = Duration::from_micros(at_us);
        let curve = EnergyCurve::new(t);
        prop_assert_eq!(curve.energy_between(at, at).as_nanojoules(), 0.0);
    }

    #[test]
    fn whole_trace_equals_total(t in trace()) {
        let walk = t.energy_between(Duration::ZERO, t.duration()).as_nanojoules();
        let curve = EnergyCurve::new(t);
        let total = curve.total_energy().as_nanojoules();
        prop_assert!(close(walk, total, total), "walk {walk} vs total {total}");
        // Extending past the end never adds energy.
        let beyond = curve
            .energy_between(Duration::ZERO, curve.duration() + Duration::from_secs(3600))
            .as_nanojoules();
        prop_assert_eq!(beyond, total);
    }

    #[test]
    fn curve_is_additive_over_a_split(
        t in trace(),
        a_us in 0u64..20_000_000,
        b_us in 0u64..20_000_000,
        c_us in 0u64..20_000_000,
    ) {
        // energy[a, c) == energy[a, b) + energy[b, c) for a <= b <= c:
        // exact for the prefix representation up to one rounding of
        // the subtraction, which the shared-total tolerance covers.
        let mut ts = [a_us, b_us, c_us];
        ts.sort_unstable();
        let [a, b, c] = ts.map(Duration::from_micros);
        let curve = EnergyCurve::new(t);
        let whole = curve.energy_between(a, c).as_nanojoules();
        let parts = curve.energy_between(a, b).as_nanojoules()
            + curve.energy_between(b, c).as_nanojoules();
        let total = curve.total_energy().as_nanojoules();
        prop_assert!(close(whole, parts, total), "{whole} vs {parts}");
    }
}

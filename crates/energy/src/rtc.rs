//! The real-time-clock super-capacitor (paper §2.1, §2.3).
//!
//! Each node carries **two** super-capacitors: one for the node and one
//! dedicated to the real-time clock that keeps the node synchronized
//! with the network's wake-up slots. The RTC capacitor "has a higher
//! charging priority because if it loses power entirely ...
//! resynchronizing with the logical time slots imposes large overheads
//! compared to normal state restoration."

use crate::supercap::SuperCap;
use neofog_types::{Duration, Energy, Power};
use serde::{Deserialize, Serialize};

/// Synchronization state of a node's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncState {
    /// The RTC is alive and the node knows the network's slot phase.
    Synchronized,
    /// The RTC died; the node must perform a costly resynchronization
    /// the next time it has power (it "will wake up whenever it has
    /// sufficient power in order to attempt to re-connect").
    Desynchronized,
}

/// A real-time clock backed by its own super-capacitor.
///
/// # Examples
///
/// ```
/// use neofog_energy::Rtc;
/// use neofog_types::{Duration, Energy, Power};
///
/// let mut rtc = Rtc::new(Energy::from_millijoules(5.0), Power::from_microwatts(2.0));
/// let leftover = rtc.charge_with_priority(Energy::from_millijoules(10.0));
/// assert!(leftover > Energy::ZERO); // RTC takes only what it needs
/// rtc.elapse(Duration::from_secs(60));
/// assert!(rtc.is_synchronized());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rtc {
    cap: SuperCap,
    draw: Power,
    state: SyncState,
    resyncs: u64,
}

impl Rtc {
    /// Creates a synchronized RTC with a full capacitor.
    ///
    /// * `capacity` — RTC super-capacitor size.
    /// * `draw` — continuous RTC power draw (typically a few µW).
    #[must_use]
    pub fn new(capacity: Energy, draw: Power) -> Self {
        Rtc {
            cap: SuperCap::new(capacity).with_initial(capacity),
            draw: draw.max_zero(),
            state: SyncState::Synchronized,
            resyncs: 0,
        }
    }

    /// Current synchronization state.
    #[must_use]
    pub fn state(&self) -> SyncState {
        self.state
    }

    /// `true` while the RTC tracks the network slots.
    #[must_use]
    pub fn is_synchronized(&self) -> bool {
        self.state == SyncState::Synchronized
    }

    /// Stored energy in the RTC capacitor.
    #[must_use]
    pub fn stored(&self) -> Energy {
        self.cap.stored()
    }

    /// Continuous power draw of the clock.
    #[must_use]
    pub fn draw(&self) -> Power {
        self.draw
    }

    /// Number of desync→resync cycles so far.
    #[must_use]
    pub fn resync_count(&self) -> u64 {
        self.resyncs
    }

    /// Charges the RTC first (priority), returning the energy left over
    /// for the node's main capacitor.
    pub fn charge_with_priority(&mut self, income: Energy) -> Energy {
        let room = self.cap.capacity().saturating_sub(self.cap.stored());
        let take = income.max_zero().min(room);
        let rejected = self.cap.charge(take);
        income.max_zero() - take + rejected
    }

    /// Advances simulated time, draining the RTC; if it runs dry the
    /// node desynchronizes. (Named `elapse` rather than `advance` so
    /// the lint call graph never links `tick`'s internal call to
    /// `Simulator::advance` — see NF-SHARD in DESIGN.md §17.)
    pub fn elapse(&mut self, elapsed: Duration) {
        let needed = self.draw * elapsed;
        let got = self.cap.discharge_up_to(needed);
        if got < needed {
            self.state = SyncState::Desynchronized;
        }
    }

    /// [`charge_with_priority`](Rtc::charge_with_priority) followed by
    /// [`elapse`](Rtc::elapse), in one call — one RTC touch per
    /// element in the harvest sweep. Returns the income left over for
    /// the node's main capacitor.
    pub fn tick(&mut self, income: Energy, elapsed: Duration) -> Energy {
        let leftover = self.charge_with_priority(income);
        self.elapse(elapsed);
        leftover
    }

    /// Attempts resynchronization; succeeds only if the RTC capacitor
    /// holds at least `cost` (the network-rejoin energy), which is
    /// consumed.
    ///
    /// Returns `true` on success.
    pub fn resynchronize(&mut self, cost: Energy) -> bool {
        if self.state == SyncState::Synchronized {
            return true;
        }
        if self.cap.try_discharge(cost).is_ok() {
            self.state = SyncState::Synchronized;
            self.resyncs += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mj(v: f64) -> Energy {
        Energy::from_millijoules(v)
    }

    #[test]
    fn stays_synchronized_while_powered() {
        let mut rtc = Rtc::new(mj(1.0), Power::from_microwatts(1.0));
        rtc.elapse(Duration::from_secs(100)); // 0.1 mJ of 1 mJ
        assert!(rtc.is_synchronized());
        assert!((rtc.stored().as_millijoules() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn desynchronizes_when_drained() {
        let mut rtc = Rtc::new(mj(0.001), Power::from_milliwatts(1.0));
        rtc.elapse(Duration::from_secs(10));
        assert!(!rtc.is_synchronized());
    }

    #[test]
    fn priority_charging_takes_only_what_fits() {
        let mut rtc = Rtc::new(mj(1.0), Power::ZERO);
        rtc.elapse(Duration::ZERO);
        // Drain half, then offer 10 mJ: RTC absorbs 0.5, rest passes through.
        rtc.cap.discharge_up_to(mj(0.5));
        let leftover = rtc.charge_with_priority(mj(10.0));
        assert!((leftover.as_millijoules() - 9.5).abs() < 1e-9);
        assert!((rtc.stored().as_millijoules() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn resync_costs_energy_and_counts() {
        let mut rtc = Rtc::new(mj(1.0), Power::from_milliwatts(10.0));
        rtc.elapse(Duration::from_secs(10)); // dead
        assert!(!rtc.is_synchronized());
        // Recharge, then resync.
        rtc.charge_with_priority(mj(1.0));
        assert!(rtc.resynchronize(mj(0.3)));
        assert!(rtc.is_synchronized());
        assert_eq!(rtc.resync_count(), 1);
        assert!((rtc.stored().as_millijoules() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn resync_fails_without_energy() {
        let mut rtc = Rtc::new(mj(0.1), Power::from_milliwatts(10.0));
        rtc.elapse(Duration::from_secs(10));
        assert!(!rtc.resynchronize(mj(0.5)));
        assert!(!rtc.is_synchronized());
    }

    #[test]
    fn resync_when_already_synced_is_free() {
        let mut rtc = Rtc::new(mj(1.0), Power::ZERO);
        assert!(rtc.resynchronize(mj(100.0)));
        assert_eq!(rtc.resync_count(), 0);
        assert_eq!(rtc.stored(), mj(1.0));
    }
}

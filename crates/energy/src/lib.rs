//! Energy-harvesting substrate for NEOFog.
//!
//! Models everything between the ambient environment and the node's
//! power rail (paper §2.1, Figure 2 and Figure 5):
//!
//! * [`harvester`] — the four ambient sources the paper lists (solar,
//!   RF, piezoelectric, thermal) with their front-conversion losses.
//! * [`trace`] — piecewise-constant [`PowerTrace`]s plus the synthetic
//!   trace generators used by the evaluation: *independent* traces
//!   (forest scenario, random segment concatenation, §5.2.1),
//!   *dependent* traces (bridge scenario, shared base ±30 % variance,
//!   §5.2.2) and low-power rainy traces (mountain scenario, §5.3).
//! * [`supercap`] — super-capacitor energy storage with capacity
//!   clamping (rejected energy is what Figure 9 shows as "capacitor
//!   frequently full"), leakage, and charge-efficiency loss.
//! * [`frontend`] — the NOS single-channel front-end versus the FIOS
//!   dual-channel front-end with a 90 %-efficient direct
//!   source-to-load path (Figure 5(b), after Wang et al.).
//! * [`rtc`] — the real-time-clock super-capacitor with charging
//!   priority (§2.1), whose depletion causes network desynchronization.
//!
//! # Examples
//!
//! ```
//! use neofog_energy::{PowerTrace, SuperCap};
//! use neofog_types::{Duration, Energy, Power};
//!
//! let trace = PowerTrace::constant(
//!     Power::from_milliwatts(10.0),
//!     Duration::from_secs(2),
//!     Duration::from_millis(100),
//! );
//! let harvested = trace.energy_between(Duration::ZERO, Duration::from_secs(1));
//! let mut cap = SuperCap::new(Energy::from_millijoules(100.0));
//! cap.charge(harvested);
//! assert!(cap.stored() > Energy::ZERO);
//! ```

pub mod curve;
pub mod frontend;
pub mod harvester;
pub mod rtc;
pub mod supercap;
pub mod trace;

pub use curve::EnergyCurve;
pub use frontend::{Delivery, FrontEnd};
pub use harvester::{Harvester, HarvesterKind};
pub use rtc::Rtc;
pub use supercap::{CapStats, ChargeReceipt, SuperCap};
pub use trace::{ChainPlan, PowerTrace, Scenario, TraceGenerator};

//! Ambient-energy harvesters (paper §2.1).
//!
//! Four source types are "widely available and relatively easy for
//! commodity systems to harvest": solar, RF, piezoelectric and thermal.
//! Front-end circuit design is specific to the AC or DC character of
//! the source; here that difference shows up as a conversion-efficiency
//! factor applied to the ambient trace.

use crate::trace::PowerTrace;
use neofog_types::{Duration, Energy, Power};
use serde::{Deserialize, Serialize};

/// The ambient energy source a node harvests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HarvesterKind {
    /// Photovoltaic cell (DC).
    Solar,
    /// RF antenna + rectifier (AC, e.g. TV RF or Wi-Fi).
    Rf,
    /// Piezoelectric element on a vibrating substrate (AC).
    Piezo,
    /// Thermoelectric across a thermal gradient (DC).
    Thermal,
}

impl HarvesterKind {
    /// `true` when the raw source is AC and needs rectification.
    #[must_use]
    pub fn is_ac(self) -> bool {
        matches!(self, HarvesterKind::Rf | HarvesterKind::Piezo)
    }

    /// Typical conversion efficiency of the matching/rectifier stage.
    ///
    /// DC sources only pay impedance-matching losses; AC sources pay
    /// the rectifier too (cf. Chaour et al. on rectifier optimization).
    #[must_use]
    pub fn conversion_efficiency(self) -> f64 {
        match self {
            HarvesterKind::Solar => 0.85,
            HarvesterKind::Thermal => 0.80,
            HarvesterKind::Rf => 0.60,
            HarvesterKind::Piezo => 0.65,
        }
    }
}

/// A harvester: an ambient source kind plus its conversion stage.
///
/// # Examples
///
/// ```
/// use neofog_energy::{Harvester, HarvesterKind};
/// use neofog_types::Power;
///
/// let h = Harvester::new(HarvesterKind::Solar);
/// let eff = h.effective_power(Power::from_milliwatts(10.0));
/// assert!((eff.as_milliwatts() - 8.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Harvester {
    kind: HarvesterKind,
    efficiency: f64,
}

impl Harvester {
    /// Creates a harvester with the kind's default efficiency.
    #[must_use]
    pub fn new(kind: HarvesterKind) -> Self {
        Harvester {
            kind,
            efficiency: kind.conversion_efficiency(),
        }
    }

    /// Overrides the conversion efficiency.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `(0, 1]`.
    #[must_use]
    pub fn with_efficiency(mut self, eta: f64) -> Self {
        assert!(eta > 0.0 && eta <= 1.0, "efficiency must be in (0, 1]");
        self.efficiency = eta;
        self
    }

    /// The source kind.
    #[must_use]
    pub fn kind(&self) -> HarvesterKind {
        self.kind
    }

    /// The conversion efficiency in use.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Power available at the front-end for a given ambient power.
    #[must_use]
    pub fn effective_power(&self, ambient: Power) -> Power {
        (ambient * self.efficiency).max_zero()
    }

    /// Energy harvested from an ambient trace over `[t0, t1)`.
    #[must_use]
    pub fn harvest(&self, trace: &PowerTrace, t0: Duration, t1: Duration) -> Energy {
        trace.energy_between(t0, t1) * self.efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ac_sources_pay_rectifier_losses() {
        assert!(HarvesterKind::Rf.is_ac());
        assert!(HarvesterKind::Piezo.is_ac());
        assert!(!HarvesterKind::Solar.is_ac());
        assert!(!HarvesterKind::Thermal.is_ac());
        assert!(
            HarvesterKind::Rf.conversion_efficiency()
                < HarvesterKind::Solar.conversion_efficiency()
        );
    }

    #[test]
    fn effective_power_scales_ambient() {
        let h = Harvester::new(HarvesterKind::Thermal).with_efficiency(0.5);
        assert_eq!(
            h.effective_power(Power::from_milliwatts(4.0)),
            Power::from_milliwatts(2.0)
        );
    }

    #[test]
    fn harvest_integrates_trace() {
        let h = Harvester::new(HarvesterKind::Solar).with_efficiency(0.5);
        let t = PowerTrace::constant(
            Power::from_milliwatts(10.0),
            Duration::from_secs(1),
            Duration::from_millis(10),
        );
        let e = h.harvest(&t, Duration::ZERO, Duration::from_secs(1));
        assert!((e.as_millijoules() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "efficiency must be in (0, 1]")]
    fn rejects_bad_efficiency() {
        let _ = Harvester::new(HarvesterKind::Solar).with_efficiency(1.5);
    }
}

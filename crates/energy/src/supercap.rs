//! Super-capacitor energy storage.
//!
//! In a normally-off system the super-capacitor is the *only* path from
//! harvester to load, and the paper observes (§2.1, WispCam example)
//! that "more than half of the energy income is wasted" to charging
//! inefficiency and leakage, and that a full capacitor *rejects* further
//! income — the flat-topped regions of Figure 9.

use neofog_types::{Duration, Energy, NeoFogError, Power, Result};
use serde::{Deserialize, Serialize};

/// Cumulative bookkeeping of where a capacitor's energy went.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CapStats {
    /// Raw energy offered by the harvester/front-end.
    pub offered: Energy,
    /// Energy actually banked after charge-efficiency loss.
    pub banked: Energy,
    /// Energy turned away because the capacitor was full.
    pub rejected: Energy,
    /// Energy lost to conversion inefficiency while charging.
    pub conversion_loss: Energy,
    /// Energy lost to self-leakage.
    pub leaked: Energy,
    /// Energy delivered to the load.
    pub delivered: Energy,
}

/// What one metered charge call did to the store: the observed
/// stored-level delta plus the share turned away. See
/// [`SuperCap::charge_metered`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChargeReceipt {
    /// Observed stored-level increase (exactly `stored_after −
    /// stored_before`, so callers booking conservation against the
    /// level never re-read the store).
    pub banked: Energy,
    /// Energy turned away because the capacitor was full (input-side).
    pub rejected: Energy,
}

/// A super-capacitor with finite capacity, charge-efficiency loss and
/// self-leakage.
///
/// # Examples
///
/// ```
/// use neofog_energy::SuperCap;
/// use neofog_types::Energy;
///
/// let mut cap = SuperCap::new(Energy::from_millijoules(10.0))
///     .with_charge_efficiency(0.8);
/// let rejected = cap.charge(Energy::from_millijoules(5.0));
/// assert_eq!(rejected, Energy::ZERO);
/// assert_eq!(cap.stored(), Energy::from_millijoules(4.0)); // 80 % banked
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperCap {
    capacity: Energy,
    stored: Energy,
    charge_efficiency: f64,
    leak_power: Power,
    stats: CapStats,
}

impl SuperCap {
    /// Creates an empty capacitor with the given capacity, ideal
    /// charging (efficiency 1.0) and no leakage.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    #[must_use]
    pub fn new(capacity: Energy) -> Self {
        assert!(
            capacity > Energy::ZERO,
            "capacitor capacity must be positive"
        );
        SuperCap {
            capacity,
            stored: Energy::ZERO,
            charge_efficiency: 1.0,
            leak_power: Power::ZERO,
            stats: CapStats::default(),
        }
    }

    /// Sets the charging efficiency in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `(0, 1]`.
    #[must_use]
    pub fn with_charge_efficiency(mut self, eta: f64) -> Self {
        assert!(
            eta > 0.0 && eta <= 1.0,
            "charge efficiency must be in (0, 1]"
        );
        self.charge_efficiency = eta;
        self
    }

    /// Sets the constant self-leakage power.
    #[must_use]
    pub fn with_leak(mut self, leak: Power) -> Self {
        self.leak_power = leak.max_zero();
        self
    }

    /// Sets the initial stored energy (clamped to capacity).
    #[must_use]
    pub fn with_initial(mut self, stored: Energy) -> Self {
        self.stored = stored.max_zero().min(self.capacity);
        self
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// Currently stored energy.
    #[must_use]
    pub fn stored(&self) -> Energy {
        self.stored
    }

    /// Stored energy as a fraction of capacity in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        self.stored / self.capacity
    }

    /// `true` when at (or within float-epsilon of) capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.stored.as_nanojoules() >= self.capacity.as_nanojoules() * (1.0 - 1e-12)
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stored <= Energy::ZERO
    }

    /// Charging efficiency.
    #[must_use]
    pub fn charge_efficiency(&self) -> f64 {
        self.charge_efficiency
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CapStats {
        self.stats
    }

    /// Offers `input` energy to the capacitor; banks what fits (after
    /// conversion loss) and returns the energy **rejected** because the
    /// capacitor was full.
    pub fn charge(&mut self, input: Energy) -> Energy {
        let input = input.max_zero();
        self.stats.offered += input;
        let after_loss = input * self.charge_efficiency;
        let room = self.capacity.saturating_sub(self.stored);
        let banked = after_loss.min(room);
        self.stored += banked;
        self.stats.banked += banked;
        // A full capacitor turns income away *before* conversion: only
        // the accepted share of the raw input pays conversion loss, so
        // `offered = banked + conversion_loss + rejected` holds exactly.
        let accepted_input = banked / self.charge_efficiency;
        let rejected = input - accepted_input;
        self.stats.conversion_loss += accepted_input - banked;
        self.stats.rejected += rejected;
        rejected
    }

    /// Withdraws exactly `amount` for the load.
    ///
    /// # Errors
    ///
    /// Returns [`NeoFogError::EnergyDepleted`] (and leaves the store
    /// untouched) if less than `amount` is available.
    pub fn try_discharge(&mut self, amount: Energy) -> Result<()> {
        let amount = amount.max_zero();
        if amount > self.stored {
            return Err(NeoFogError::EnergyDepleted {
                needed_nj: amount.as_nanojoules() as u64,
                available_nj: self.stored.as_nanojoules() as u64,
            });
        }
        self.stored -= amount;
        self.stats.delivered += amount;
        Ok(())
    }

    /// Withdraws up to `amount`, returning how much was actually
    /// delivered (possibly less than requested).
    pub fn discharge_up_to(&mut self, amount: Energy) -> Energy {
        let take = amount.max_zero().min(self.stored);
        self.stored -= take;
        self.stats.delivered += take;
        take
    }

    /// Applies self-leakage over an elapsed interval.
    pub fn leak(&mut self, elapsed: Duration) {
        let loss = (self.leak_power * elapsed).min(self.stored);
        self.stored -= loss;
        self.stats.leaked += loss;
    }

    /// [`charge`](SuperCap::charge) plus the observed stored-level
    /// delta, in one call — the columnar sweeps' alternative to
    /// reading `stored()` around a `charge()`. The `banked` field is
    /// the literal level difference (not the internal post-loss
    /// figure), so ledger arithmetic built on it is bit-identical to
    /// the read–charge–read sequence it replaces.
    pub fn charge_metered(&mut self, input: Energy) -> ChargeReceipt {
        let before = self.stored;
        let rejected = self.charge(input);
        ChargeReceipt {
            banked: self.stored.saturating_sub(before),
            rejected,
        }
    }

    /// [`leak`](SuperCap::leak) plus the observed stored-level drop,
    /// in one call.
    pub fn leak_metered(&mut self, elapsed: Duration) -> Energy {
        let before = self.stored;
        self.leak(elapsed);
        before.saturating_sub(self.stored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mj(v: f64) -> Energy {
        Energy::from_millijoules(v)
    }

    #[test]
    fn charges_and_discharges() {
        let mut cap = SuperCap::new(mj(10.0));
        assert_eq!(cap.charge(mj(4.0)), Energy::ZERO);
        assert_eq!(cap.stored(), mj(4.0));
        cap.try_discharge(mj(1.5)).unwrap();
        assert_eq!(cap.stored(), mj(2.5));
    }

    #[test]
    fn rejects_when_full() {
        let mut cap = SuperCap::new(mj(1.0));
        let rejected = cap.charge(mj(3.0));
        assert!(cap.is_full());
        assert!((rejected.as_millijoules() - 2.0).abs() < 1e-9);
        assert!((cap.stats().rejected.as_millijoules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn charge_efficiency_takes_its_cut() {
        let mut cap = SuperCap::new(mj(100.0)).with_charge_efficiency(0.5);
        cap.charge(mj(10.0));
        assert_eq!(cap.stored(), mj(5.0));
        assert_eq!(cap.stats().conversion_loss, mj(5.0));
    }

    #[test]
    fn rejection_accounts_for_efficiency() {
        // 0.5 efficiency, capacity 1 mJ, offer 4 mJ: 2 mJ post-loss,
        // 1 mJ banked, 1 mJ internal reject = 2 mJ at the input side.
        let mut cap = SuperCap::new(mj(1.0)).with_charge_efficiency(0.5);
        let rejected = cap.charge(mj(4.0));
        assert!((rejected.as_millijoules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn discharge_fails_cleanly_when_depleted() {
        let mut cap = SuperCap::new(mj(1.0)).with_initial(mj(0.2));
        let err = cap.try_discharge(mj(0.5)).unwrap_err();
        assert!(matches!(err, NeoFogError::EnergyDepleted { .. }));
        assert_eq!(cap.stored(), mj(0.2), "failed discharge must not drain");
        assert_eq!(cap.discharge_up_to(mj(0.5)), mj(0.2));
        assert!(cap.is_empty());
    }

    #[test]
    fn leakage_drains_over_time() {
        let mut cap = SuperCap::new(mj(1.0))
            .with_initial(mj(1.0))
            .with_leak(Power::from_microwatts(10.0)); // 0.01 mW
        cap.leak(Duration::from_secs(10)); // 0.01 mW * 10 s = 0.1 mJ
        assert!((cap.stored().as_millijoules() - 0.9).abs() < 1e-9);
        assert!((cap.stats().leaked.as_millijoules() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn leak_never_goes_negative() {
        let mut cap = SuperCap::new(mj(1.0))
            .with_initial(mj(0.001))
            .with_leak(Power::from_milliwatts(100.0));
        cap.leak(Duration::from_secs(100));
        assert_eq!(cap.stored(), Energy::ZERO);
    }

    #[test]
    fn fraction_and_initial_clamp() {
        let cap = SuperCap::new(mj(2.0)).with_initial(mj(50.0));
        assert_eq!(cap.stored(), mj(2.0));
        assert!((cap.fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_balances() {
        let mut cap = SuperCap::new(mj(5.0)).with_charge_efficiency(0.8);
        cap.charge(mj(4.0));
        cap.charge(mj(4.0));
        cap.discharge_up_to(mj(2.0));
        cap.leak(Duration::from_secs(1));
        let s = cap.stats();
        let accounted = s.banked - s.delivered - s.leaked;
        assert!((accounted.as_nanojoules() - cap.stored().as_nanojoules()).abs() < 1e-6);
    }
}

//! Prefix-summed cumulative-energy curves: exact O(1) interval
//! integration over a [`PowerTrace`].
//!
//! [`PowerTrace::energy_between`] walks every sample the interval
//! covers, so a 12 s slot over a 1 s-resolution trace costs twelve
//! sample visits — per node, per slot, for the whole simulation. An
//! [`EnergyCurve`] pays that walk once at construction: it stores the
//! running integral at every sample boundary, after which any
//! `energy_between` is two cumulative lookups (each one prefix read
//! plus an interpolation inside the boundary sample) regardless of the
//! interval length.
//!
//! The prefix sums reassociate the floating-point additions the walk
//! performs, so a curve integral can differ from the walk by a few
//! ULPs of the *cumulative* total — never more than the accumulated
//! rounding of one pass over the trace. The property tests in
//! `tests/prop_curve.rs` pin that bound.
//!
//! # Examples
//!
//! ```
//! use neofog_energy::{EnergyCurve, PowerTrace};
//! use neofog_types::{Duration, Power};
//!
//! let trace = PowerTrace::constant(
//!     Power::from_milliwatts(2.0),
//!     Duration::from_secs(60),
//!     Duration::from_secs(1),
//! );
//! let walk = trace.energy_between(Duration::from_secs(12), Duration::from_secs(24));
//! let curve = EnergyCurve::new(trace);
//! let fast = curve.energy_between(Duration::from_secs(12), Duration::from_secs(24));
//! assert!((walk.as_nanojoules() - fast.as_nanojoules()).abs() < 1e-6);
//! ```

use crate::trace::PowerTrace;
use neofog_types::{Duration, Energy, Power};
use serde::{Deserialize, Serialize};

/// A [`PowerTrace`] together with its prefix-summed integral.
///
/// `cum[i]` is the energy delivered over `[0, i·dt)`, so the integral
/// over any `[t0, t1)` is `cumulative_at(t1) − cumulative_at(t0)` —
/// two O(1) lookups instead of an O(samples) walk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyCurve {
    trace: PowerTrace,
    /// `cum.len() == trace.len() + 1`; `cum[0] == 0`.
    cum: Vec<Energy>,
}

impl EnergyCurve {
    /// Builds the prefix sums for `trace` (one O(samples) pass).
    #[must_use]
    pub fn new(trace: PowerTrace) -> Self {
        // Accumulate in raw nanojoules with the conversion factor
        // hoisted: the multiply-then-add order per sample is exactly
        // what `Power * Duration` followed by `+=` performs, so the
        // prefix values are bit-identical to the naive loop — just
        // without a unit conversion and capacity check per sample.
        let dt_us = trace.dt().as_micros() as f64;
        let mut cum = vec![Energy::ZERO; trace.len() + 1];
        let mut total = 0.0_f64;
        for (out, p) in cum.iter_mut().skip(1).zip(trace.samples()) {
            total += p.as_milliwatts() * dt_us;
            *out = Energy::from_nanojoules(total);
        }
        EnergyCurve { trace, cum }
    }

    /// The underlying power trace.
    #[must_use]
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// The sampling interval.
    #[must_use]
    pub fn dt(&self) -> Duration {
        self.trace.dt()
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// `true` if the curve covers no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Total covered duration.
    #[must_use]
    pub fn duration(&self) -> Duration {
        self.trace.duration()
    }

    /// Integral over the whole trace.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.cum.last().copied().unwrap_or(Energy::ZERO)
    }

    /// Cumulative energy over `[0, t)`, clamped to the trace end
    /// (beyond it the power is zero, so the integral is flat).
    #[must_use]
    pub fn cumulative_at(&self, t: Duration) -> Energy {
        let dt_us = self.trace.dt().as_micros();
        let idx = (t.as_micros() / dt_us) as usize;
        if idx >= self.trace.len() {
            return self.total_energy();
        }
        // Interpolate inside the boundary sample: the trace is
        // piecewise constant, so the partial sample contributes its
        // power times the covered span.
        let within = Duration::from_micros(t.as_micros() - idx as u64 * dt_us);
        let base = self.cum.get(idx).copied().unwrap_or(Energy::ZERO);
        let power = self
            .trace
            .samples()
            .get(idx)
            .copied()
            .unwrap_or(Power::ZERO);
        base + power * within
    }

    /// Integral of the trace over `[t0, t1)`, in energy: the
    /// prefix-sum equivalent of [`PowerTrace::energy_between`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t0 > t1`.
    #[must_use]
    pub fn energy_between(&self, t0: Duration, t1: Duration) -> Energy {
        debug_assert!(t0 <= t1, "interval must be ordered");
        // The cumulative curve is monotone; saturate so a same-point
        // difference can never produce a negative zero artefact.
        self.cumulative_at(t1)
            .saturating_sub(self.cumulative_at(t0))
    }
}

impl From<PowerTrace> for EnergyCurve {
    fn from(trace: PowerTrace) -> Self {
        EnergyCurve::new(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mw(v: f64) -> Power {
        Power::from_milliwatts(v)
    }

    fn ramp() -> PowerTrace {
        PowerTrace::from_samples(
            Duration::from_millis(10),
            (1..=8).map(|i| mw(f64::from(i))).collect(),
        )
    }

    #[test]
    fn matches_walk_on_aligned_intervals() {
        let trace = ramp();
        let curve = EnergyCurve::new(trace.clone());
        for a in 0..=8u64 {
            for b in a..=8 {
                let t0 = Duration::from_millis(a * 10);
                let t1 = Duration::from_millis(b * 10);
                let walk = trace.energy_between(t0, t1).as_nanojoules();
                let fast = curve.energy_between(t0, t1).as_nanojoules();
                assert!(
                    (walk - fast).abs() <= 1e-9 * walk.abs().max(1.0),
                    "[{a}, {b}): walk {walk} vs curve {fast}"
                );
            }
        }
    }

    #[test]
    fn empty_interval_is_zero() {
        let curve = EnergyCurve::new(ramp());
        let t = Duration::from_micros(12_345);
        assert_eq!(curve.energy_between(t, t), Energy::ZERO);
    }

    #[test]
    fn interval_beyond_end_is_clamped() {
        let trace = ramp();
        let total = trace.energy_between(Duration::ZERO, trace.duration());
        let curve = EnergyCurve::new(trace);
        assert_eq!(
            curve.energy_between(Duration::ZERO, Duration::from_secs(100)),
            curve.total_energy()
        );
        assert!((curve.total_energy().as_nanojoules() - total.as_nanojoules()).abs() < 1e-9);
        // Both endpoints beyond the end: flat region, zero energy.
        assert_eq!(
            curve.energy_between(Duration::from_secs(10), Duration::from_secs(20)),
            Energy::ZERO
        );
    }

    #[test]
    fn unaligned_endpoints_interpolate() {
        let trace =
            PowerTrace::from_samples(Duration::from_millis(1), vec![mw(1.0), mw(2.0), mw(3.0)]);
        let curve = EnergyCurve::new(trace.clone());
        // [0.5ms, 2.5ms) = 0.5ms@1mW + 1ms@2mW + 0.5ms@3mW = 4000 nJ.
        let e = curve.energy_between(Duration::from_micros(500), Duration::from_micros(2500));
        assert!((e.as_nanojoules() - 4000.0).abs() < 1e-9, "{e:?}");
        // Sub-sample interval entirely inside one sample.
        let inside = curve.energy_between(Duration::from_micros(1200), Duration::from_micros(1700));
        assert!((inside.as_nanojoules() - 1000.0).abs() < 1e-9, "{inside:?}");
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let curve = EnergyCurve::new(PowerTrace::from_samples(Duration::from_secs(1), vec![]));
        assert!(curve.is_empty());
        assert_eq!(curve.total_energy(), Energy::ZERO);
        assert_eq!(
            curve.energy_between(Duration::ZERO, Duration::from_secs(5)),
            Energy::ZERO
        );
    }
}

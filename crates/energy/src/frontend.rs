//! Front-end power-conversion circuits (paper Figure 5).
//!
//! A *normally-off* node (Figure 5(a)) funnels all harvested energy
//! through impedance matching, the super-capacitor and an LDO before it
//! reaches the load — every joule pays the charge/discharge round-trip.
//!
//! The FIOS front-end (Figure 5(b), after Wang et al. and Sheng et al.)
//! adds switch `SW1`: a **direct source-to-load channel** at ~90 %
//! efficiency. While the NVP computes, income flows straight to the
//! processor; only the *surplus* (or deficit) goes through the
//! capacitor. The paper credits this leaner conversion path (together
//! with NVP checkpointing) with the 2.2×–5× forward-progress advantage
//! of FIOS over NOS.

use crate::supercap::SuperCap;
use neofog_types::Energy;
use serde::{Deserialize, Serialize};

/// Where the energy for one demand interval came from.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Delivery {
    /// Energy delivered straight from the harvester (FIOS only).
    pub direct: Energy,
    /// Energy delivered out of the super-capacitor.
    pub from_cap: Energy,
    /// Harvest surplus banked into the capacitor this interval.
    pub banked: Energy,
    /// Harvest energy rejected because the capacitor was full.
    pub rejected: Energy,
    /// Unmet demand (the load browned out for part of the interval).
    pub shortfall: Energy,
}

impl Delivery {
    /// Total energy that reached the load.
    #[must_use]
    pub fn delivered(&self) -> Energy {
        self.direct + self.from_cap
    }

    /// `true` when the full demand was met.
    #[must_use]
    pub fn satisfied(&self) -> bool {
        self.shortfall <= Energy::ZERO
    }
}

/// A node's power front-end: either the NOS single channel or the FIOS
/// dual channel with direct source-to-load support.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FrontEnd {
    /// Figure 5(a): everything goes through the capacitor.
    SingleChannel {
        /// Efficiency of the LDO/discharge path in `(0, 1]`.
        discharge_efficiency: f64,
    },
    /// Figure 5(b): direct channel while the load is active.
    DualChannel {
        /// Efficiency of the direct source-to-load path (paper: 0.90).
        direct_efficiency: f64,
        /// Efficiency of the LDO/discharge path in `(0, 1]`.
        discharge_efficiency: f64,
    },
}

impl FrontEnd {
    /// The paper's NOS front-end: capacitor round-trip with a lossy
    /// regulator (≈50 % end-to-end with charging loss included —
    /// "more than half of the energy income is wasted", §2.1).
    #[must_use]
    pub fn nos() -> Self {
        FrontEnd::SingleChannel {
            discharge_efficiency: 0.80,
        }
    }

    /// The paper's FIOS front-end with the 90 %-efficient direct path.
    #[must_use]
    pub fn fios() -> Self {
        FrontEnd::DualChannel {
            direct_efficiency: 0.90,
            discharge_efficiency: 0.80,
        }
    }

    /// `true` if this front-end has a direct source-to-load channel.
    #[must_use]
    pub fn has_direct_channel(&self) -> bool {
        matches!(self, FrontEnd::DualChannel { .. })
    }

    /// Efficiency of the direct channel (zero for single-channel).
    #[must_use]
    pub fn direct_efficiency(&self) -> f64 {
        match self {
            FrontEnd::SingleChannel { .. } => 0.0,
            FrontEnd::DualChannel {
                direct_efficiency, ..
            } => *direct_efficiency,
        }
    }

    /// Efficiency of the capacitor discharge path.
    #[must_use]
    pub fn discharge_efficiency(&self) -> f64 {
        match self {
            FrontEnd::SingleChannel {
                discharge_efficiency,
            }
            | FrontEnd::DualChannel {
                discharge_efficiency,
                ..
            } => *discharge_efficiency,
        }
    }

    /// Routes one interval's harvest toward one interval's demand.
    ///
    /// * `harvest` — raw energy income this interval.
    /// * `demand` — load energy required this interval (at the load).
    /// * `cap` — the node's storage capacitor, charged/discharged as a
    ///   side effect.
    ///
    /// Single-channel: all harvest is offered to the capacitor, demand
    /// is served from the capacitor through the discharge path.
    ///
    /// Dual-channel: demand is served from the direct channel first;
    /// surplus harvest is banked; any remaining demand draws on the
    /// capacitor.
    pub fn deliver(&self, harvest: Energy, demand: Energy, cap: &mut SuperCap) -> Delivery {
        let harvest = harvest.max_zero();
        let demand = demand.max_zero();
        match *self {
            FrontEnd::SingleChannel {
                discharge_efficiency,
            } => {
                let rejected = cap.charge(harvest);
                let banked = harvest.saturating_sub(rejected) * cap.charge_efficiency();
                let gross_needed = demand / discharge_efficiency;
                let drawn = cap.discharge_up_to(gross_needed);
                let delivered = drawn * discharge_efficiency;
                Delivery {
                    direct: Energy::ZERO,
                    from_cap: delivered,
                    banked,
                    rejected,
                    shortfall: demand.saturating_sub(delivered),
                }
            }
            FrontEnd::DualChannel {
                direct_efficiency,
                discharge_efficiency,
            } => {
                let direct_available = harvest * direct_efficiency;
                let direct_used = direct_available.min(demand);
                // Harvest not consumed by the direct path (input side).
                let surplus_input = if direct_efficiency > 0.0 {
                    harvest.saturating_sub(direct_used / direct_efficiency)
                } else {
                    harvest
                };
                let rejected = cap.charge(surplus_input);
                let banked = surplus_input.saturating_sub(rejected) * cap.charge_efficiency();
                let remaining = demand.saturating_sub(direct_used);
                let gross_needed = remaining / discharge_efficiency;
                let drawn = cap.discharge_up_to(gross_needed);
                let from_cap = drawn * discharge_efficiency;
                Delivery {
                    direct: direct_used,
                    from_cap,
                    banked,
                    rejected,
                    shortfall: remaining.saturating_sub(from_cap),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mj(v: f64) -> Energy {
        Energy::from_millijoules(v)
    }

    #[test]
    fn nos_routes_everything_through_cap() {
        let fe = FrontEnd::nos();
        let mut cap = SuperCap::new(mj(100.0)).with_charge_efficiency(0.7);
        let d = fe.deliver(mj(10.0), mj(2.0), &mut cap);
        assert_eq!(d.direct, Energy::ZERO);
        assert!((d.from_cap.as_millijoules() - 2.0).abs() < 1e-9);
        assert!(d.satisfied());
        // 10 mJ in at 0.7 → 7 banked, minus 2/0.8 = 2.5 drawn.
        assert!((cap.stored().as_millijoules() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn fios_serves_demand_directly_first() {
        let fe = FrontEnd::fios();
        let mut cap = SuperCap::new(mj(100.0));
        let d = fe.deliver(mj(10.0), mj(3.0), &mut cap);
        assert!((d.direct.as_millijoules() - 3.0).abs() < 1e-9);
        assert_eq!(d.from_cap, Energy::ZERO);
        // Direct used 3/0.9 = 3.333 of input; surplus 6.667 banked at 1.0.
        assert!((cap.stored().as_millijoules() - (10.0 - 3.0 / 0.9)).abs() < 1e-9);
    }

    #[test]
    fn fios_falls_back_to_cap_when_income_short() {
        let fe = FrontEnd::fios();
        let mut cap = SuperCap::new(mj(100.0)).with_initial(mj(50.0));
        let d = fe.deliver(mj(1.0), mj(5.0), &mut cap);
        assert!((d.direct.as_millijoules() - 0.9).abs() < 1e-9);
        assert!((d.from_cap.as_millijoules() - 4.1).abs() < 1e-9);
        assert!(d.satisfied());
    }

    #[test]
    fn shortfall_reported_when_both_paths_exhausted() {
        let fe = FrontEnd::fios();
        let mut cap = SuperCap::new(mj(1.0)); // empty
        let d = fe.deliver(mj(1.0), mj(5.0), &mut cap);
        assert!(!d.satisfied());
        assert!((d.delivered().as_millijoules() - 0.9).abs() < 1e-9);
        assert!((d.shortfall.as_millijoules() - 4.1).abs() < 1e-9);
    }

    #[test]
    fn fios_beats_nos_end_to_end_efficiency() {
        // Same income, same demand pattern: the FIOS node ends with
        // strictly more total (delivered + stored) energy.
        let mut nos_cap = SuperCap::new(mj(100.0)).with_charge_efficiency(0.7);
        let mut fios_cap = SuperCap::new(mj(100.0)).with_charge_efficiency(0.7);
        let nos = FrontEnd::nos();
        let fios = FrontEnd::fios();
        let mut nos_delivered = Energy::ZERO;
        let mut fios_delivered = Energy::ZERO;
        for _ in 0..50 {
            nos_delivered += nos.deliver(mj(2.0), mj(1.0), &mut nos_cap).delivered();
            fios_delivered += fios.deliver(mj(2.0), mj(1.0), &mut fios_cap).delivered();
        }
        let nos_total = nos_delivered + nos_cap.stored();
        let fios_total = fios_delivered + fios_cap.stored();
        assert!(
            fios_total > nos_total,
            "FIOS {fios_total:?} should beat NOS {nos_total:?}"
        );
    }

    #[test]
    fn rejection_propagates_when_cap_full() {
        let fe = FrontEnd::nos();
        let mut cap = SuperCap::new(mj(1.0)).with_initial(mj(1.0));
        let d = fe.deliver(mj(5.0), Energy::ZERO, &mut cap);
        assert!(d.rejected > Energy::ZERO);
    }

    #[test]
    fn zero_demand_zero_harvest_is_identity() {
        let fe = FrontEnd::fios();
        let mut cap = SuperCap::new(mj(1.0)).with_initial(mj(0.5));
        let d = fe.deliver(Energy::ZERO, Energy::ZERO, &mut cap);
        assert_eq!(d, Delivery::default());
        assert_eq!(cap.stored(), mj(0.5));
    }
}

//! Piecewise-constant power traces and the paper's synthetic generators.
//!
//! The NEOFog evaluation (§5.2) drives every node with a 5-hour power
//! trace. Three recipes are used:
//!
//! * **Independent** (forest fire monitoring, Figure 10): each node's
//!   trace is a random concatenation of measured segments (full sun,
//!   leaf shade, cloud, wind flicker), so neighbouring nodes are
//!   effectively uncorrelated.
//! * **Dependent** (bridge monitoring, Figure 11): all nodes share one
//!   base diurnal curve; each node applies ~30 % random variance.
//! * **Rainy** (mountain-slide monitoring, Figure 13): very low income
//!   with occasional dimming, shared weather (dependent).

use crate::curve::EnergyCurve;
use neofog_types::{Duration, Power, SimRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A piecewise-constant power signal sampled on a fixed grid.
///
/// The value of sample `i` holds on `[i·dt, (i+1)·dt)`. Beyond the end
/// of the trace the power is zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    dt: Duration,
    samples: Vec<Power>,
}

impl PowerTrace {
    /// Creates a trace from explicit samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    #[must_use]
    pub fn from_samples(dt: Duration, samples: Vec<Power>) -> Self {
        assert!(!dt.is_zero(), "sample interval must be positive");
        PowerTrace { dt, samples }
    }

    /// Creates a constant trace of the given total duration (rounded up
    /// to a whole number of samples).
    #[must_use]
    pub fn constant(power: Power, total: Duration, dt: Duration) -> Self {
        assert!(!dt.is_zero(), "sample interval must be positive");
        let n = total.as_micros().div_ceil(dt.as_micros());
        PowerTrace {
            dt,
            samples: vec![power; n as usize],
        }
    }

    /// Builds a trace by evaluating `f` at each sample midpoint.
    #[must_use]
    pub fn from_fn(total: Duration, dt: Duration, mut f: impl FnMut(Duration) -> Power) -> Self {
        assert!(!dt.is_zero(), "sample interval must be positive");
        let n = total.as_micros().div_ceil(dt.as_micros());
        let samples = (0..n)
            .map(|i| {
                f(Duration::from_micros(
                    i * dt.as_micros() + dt.as_micros() / 2,
                ))
            })
            .collect();
        PowerTrace { dt, samples }
    }

    /// The sampling interval.
    #[must_use]
    pub fn dt(self: &PowerTrace) -> Duration {
        self.dt
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the trace has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total covered duration.
    #[must_use]
    pub fn duration(&self) -> Duration {
        Duration::from_micros(self.dt.as_micros() * self.samples.len() as u64)
    }

    /// The raw samples.
    #[must_use]
    pub fn samples(&self) -> &[Power] {
        &self.samples
    }

    /// Instantaneous power at elapsed time `t` (zero beyond the end).
    #[must_use]
    pub fn power_at(&self, t: Duration) -> Power {
        let idx = (t.as_micros() / self.dt.as_micros()) as usize;
        self.samples.get(idx).copied().unwrap_or(Power::ZERO)
    }

    /// Exact integral of the trace over `[t0, t1)`, in energy.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t0 > t1`.
    #[must_use]
    pub fn energy_between(&self, t0: Duration, t1: Duration) -> neofog_types::Energy {
        debug_assert!(t0 <= t1, "interval must be ordered");
        let mut total = neofog_types::Energy::ZERO;
        let dt_us = self.dt.as_micros();
        let mut cursor = t0.as_micros();
        let end = t1.as_micros().min(self.duration().as_micros());
        while cursor < end {
            let idx = (cursor / dt_us) as usize;
            let seg_end = ((cursor / dt_us) + 1) * dt_us;
            let span = seg_end.min(end) - cursor;
            total += self.samples[idx] * Duration::from_micros(span);
            cursor = seg_end;
        }
        total
    }

    /// Mean power over the whole trace.
    #[must_use]
    pub fn mean_power(&self) -> Power {
        if self.samples.is_empty() {
            return Power::ZERO;
        }
        let sum: f64 = self.samples.iter().map(|p| p.as_milliwatts()).sum();
        Power::from_milliwatts(sum / self.samples.len() as f64)
    }

    /// Returns a copy with every sample multiplied by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> PowerTrace {
        PowerTrace {
            dt: self.dt,
            samples: self
                .samples
                .iter()
                .map(|p| (*p * factor).max_zero())
                .collect(),
        }
    }

    /// Multiplies every sample by `factor` in place, clamping at zero.
    ///
    /// Sample-for-sample identical to [`PowerTrace::scaled`] without
    /// the reallocation.
    pub fn scale_in_place(&mut self, factor: f64) {
        for p in &mut self.samples {
            *p = (*p * factor).max_zero();
        }
    }

    /// Appends another trace (must share the same `dt`).
    ///
    /// # Panics
    ///
    /// Panics if the sample intervals differ.
    pub fn extend(&mut self, other: &PowerTrace) {
        assert_eq!(
            self.dt, other.dt,
            "sample intervals must match to concatenate"
        );
        self.samples.extend_from_slice(&other.samples);
    }
}

/// The deployment scenarios evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Forest fire monitoring: ample income with large, effectively
    /// independent variance (leaves moving in wind). Figure 10.
    ForestIndependent,
    /// Bridge monitoring: ample income, strongly correlated across
    /// nodes (same sky). Figure 11.
    BridgeDependent,
    /// Mountain-slide monitoring on a sunny day: high power, large
    /// independent variance (aerial dispersion into sun/shade).
    /// Figure 12.
    MountainSunny,
    /// Mountain-slide monitoring in heavy rain: very low, dependent
    /// income. Figure 13.
    MountainRainy,
}

impl Scenario {
    /// `true` when node incomes are correlated (share a base curve).
    #[must_use]
    pub fn is_dependent(self) -> bool {
        matches!(self, Scenario::BridgeDependent | Scenario::MountainRainy)
    }

    /// Nominal mean harvest power for the scenario.
    #[must_use]
    pub fn mean_power(self) -> Power {
        match self {
            Scenario::ForestIndependent => Power::from_milliwatts(2.4),
            Scenario::BridgeDependent => Power::from_milliwatts(2.4),
            Scenario::MountainSunny => Power::from_milliwatts(4.4),
            Scenario::MountainRainy => Power::from_milliwatts(0.45),
        }
    }

    /// Per-node multiplicative variance applied by the generator.
    #[must_use]
    pub fn variance(self) -> f64 {
        match self {
            Scenario::ForestIndependent => 0.9,
            Scenario::BridgeDependent => 0.3,
            Scenario::MountainSunny => 0.8,
            Scenario::MountainRainy => 0.3,
        }
    }
}

/// One entry in the measured-segment library used to synthesize
/// independent traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Segment {
    mean: f64,
    jitter: f64,
    len_samples: usize,
}

/// Generates per-node power traces following the paper's recipes.
///
/// All generation routes through [`TraceGenerator::chain_plan`]: the
/// plan derives one deterministic RNG stream per node position from
/// the generator seed (and, for dependent scenarios, synthesizes the
/// shared base curve exactly once), so every method here is `&self`
/// and position-pure — `node_trace(i)` returns the same trace no
/// matter how many other nodes were generated before it.
///
/// # Examples
///
/// ```
/// use neofog_energy::{Scenario, TraceGenerator};
/// use neofog_types::Duration;
///
/// let gen = TraceGenerator::new(Scenario::ForestIndependent, 42);
/// let traces = gen.node_traces(10, Duration::from_mins(30), Duration::from_secs(1));
/// assert_eq!(traces.len(), 10);
/// assert_eq!(traces[0].duration(), Duration::from_mins(30));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    scenario: Scenario,
    rng: SimRng,
}

impl TraceGenerator {
    /// Creates a generator for a scenario with a deterministic seed.
    #[must_use]
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        TraceGenerator {
            scenario,
            rng: SimRng::seed_from(seed),
        }
    }

    /// The scenario this generator produces.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Builds a plan for generating `n` node traces: per-node RNG
    /// streams are derived up front, and for dependent scenarios the
    /// shared base curve is synthesized exactly once (and `Arc`-shared
    /// by the plan, never copied per node).
    ///
    /// Stream derivation is frozen to match the pre-plan draw order so
    /// existing seeds reproduce: dependent plans fork the base stream
    /// (`0xBA5E`) first and then stream `2·i` per node; independent
    /// plans fork stream `2·i + 1` per node.
    #[must_use]
    pub fn chain_plan(&self, n: usize, total: Duration, dt: Duration) -> ChainPlan {
        // Work on a clone: the generator itself stays untouched, so
        // plan construction is repeatable.
        let mut rng = self.rng.clone();
        if self.scenario.is_dependent() {
            let base_rng = rng.fork(0xBA5E);
            let streams = (0..n)
                .map(|i| rng.fork((i as u64).wrapping_mul(2)))
                .collect();
            let base = base_curve_with(
                base_rng,
                self.scenario.mean_power().as_milliwatts(),
                total,
                dt,
            );
            ChainPlan {
                scenario: self.scenario,
                total,
                dt,
                base: Some(Arc::new(base)),
                streams,
            }
        } else {
            let streams = (0..n)
                .map(|i| rng.fork((i as u64).wrapping_mul(2) + 1))
                .collect();
            ChainPlan {
                scenario: self.scenario,
                total,
                dt,
                base: None,
                streams,
            }
        }
    }

    /// Generates `n` node traces of the given duration and resolution.
    ///
    /// Independent scenarios concatenate segments per node; dependent
    /// scenarios build one base curve and perturb it per node.
    #[must_use]
    pub fn node_traces(&self, n: usize, total: Duration, dt: Duration) -> Vec<PowerTrace> {
        let plan = self.chain_plan(n, total, dt);
        (0..n).map(|i| plan.node_trace(i)).collect()
    }

    /// Generates a single node trace (index selects the node's stream).
    ///
    /// Position-pure: identical to `node_traces(index + 1)[index]` for
    /// every scenario, including dependent ones.
    #[must_use]
    pub fn node_trace(&self, index: u64, total: Duration, dt: Duration) -> PowerTrace {
        self.chain_plan(index as usize + 1, total, dt)
            .node_trace(index as usize)
    }
}

/// A frozen generation plan for one chain of nodes: the per-node RNG
/// streams plus (for dependent scenarios) the shared base curve,
/// synthesized once and `Arc`-shared.
///
/// Produced by [`TraceGenerator::chain_plan`]. Realizing a node trace
/// from the plan touches only that node's stream, so plans can hand
/// out traces in any order — or skip nodes entirely — and remain
/// deterministic.
#[derive(Debug, Clone)]
pub struct ChainPlan {
    scenario: Scenario,
    total: Duration,
    dt: Duration,
    base: Option<Arc<PowerTrace>>,
    streams: Vec<SimRng>,
}

impl ChainPlan {
    /// Number of node positions the plan covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// `true` if the plan covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The scenario the plan generates.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The shared base curve (dependent scenarios only).
    #[must_use]
    pub fn base(&self) -> Option<&Arc<PowerTrace>> {
        self.base.as_ref()
    }

    /// Realizes the trace for node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn node_trace(&self, index: usize) -> PowerTrace {
        assert!(index < self.streams.len(), "node index out of plan range");
        let rng = self.streams[index].clone();
        match &self.base {
            Some(base) => perturb_with(rng, self.scenario.variance(), base),
            None => independent_with(rng, self.scenario, self.total, self.dt),
        }
    }

    /// Realizes the prefix-summed [`EnergyCurve`] for node `index`,
    /// with every sample scaled by `income_scale` (clamped at zero).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn node_curve(&self, index: usize, income_scale: f64) -> EnergyCurve {
        let mut trace = self.node_trace(index);
        trace.scale_in_place(income_scale);
        EnergyCurve::new(trace)
    }
}

fn segment_library(scenario: Scenario) -> Vec<Segment> {
    let mean = scenario.mean_power().as_milliwatts();
    let var = scenario.variance();
    // Segment means spread around the scenario mean by the
    // scenario's variance; lengths of 20–120 samples mimic passing
    // clouds / moving leaves on a seconds-to-minutes timescale.
    vec![
        Segment {
            mean: mean * (1.0 + var),
            jitter: 0.10,
            len_samples: 60,
        },
        Segment {
            mean,
            jitter: 0.15,
            len_samples: 90,
        },
        Segment {
            mean: mean * (1.0 - 0.6 * var),
            jitter: 0.20,
            len_samples: 45,
        },
        Segment {
            mean: mean * (1.0 - var).max(0.05),
            jitter: 0.25,
            len_samples: 30,
        },
        Segment {
            mean: mean * (1.0 + 0.5 * var),
            jitter: 0.10,
            len_samples: 120,
        },
    ]
}

fn independent_with(
    mut rng: SimRng,
    scenario: Scenario,
    total: Duration,
    dt: Duration,
) -> PowerTrace {
    let library = segment_library(scenario);
    let n = total.as_micros().div_ceil(dt.as_micros());
    let mut samples = Vec::with_capacity(n as usize);
    let fallback = Segment {
        mean: scenario.mean_power().as_milliwatts(),
        jitter: 0.1,
        len_samples: 60,
    };
    while (samples.len() as u64) < n {
        // The library is a non-empty constant table; the fallback
        // segment only guards the type-level empty case.
        let seg = *rng.pick(&library).unwrap_or(&fallback);
        let take = seg.len_samples.min((n as usize) - samples.len());
        for _ in 0..take {
            let p = seg.mean * (1.0 + seg.jitter * (2.0 * rng.next_f64() - 1.0));
            samples.push(Power::from_milliwatts(p.max(0.0)));
        }
    }
    PowerTrace::from_samples(dt, samples)
}

fn base_curve_with(mut rng: SimRng, mean: f64, total: Duration, dt: Duration) -> PowerTrace {
    // A deterministic diurnal-style arc for the shared base: the
    // trace covers a daytime window, so power rises to a plateau
    // and dips with shared "weather" episodes.
    let n = total.as_micros().div_ceil(dt.as_micros());
    let mut samples = Vec::with_capacity(n as usize);
    let mut weather = 1.0_f64;
    for i in 0..n {
        let phase = i as f64 / n.max(1) as f64;
        // Half-sine daytime arc, normalized to unit mean so the
        // scenario's nominal power is preserved (raw arc averages
        // 0.55 + 0.45·2/π ≈ 0.836).
        let arc = (0.55 + 0.45 * (std::f64::consts::PI * phase).sin()) / 0.8365;
        // Slow shared weather random walk around unit mean.
        weather = (weather + 0.02 * (2.0 * rng.next_f64() - 1.0)).clamp(0.7, 1.3);
        samples.push(Power::from_milliwatts((mean * arc * weather).max(0.0)));
    }
    PowerTrace::from_samples(dt, samples)
}

fn perturb_with(mut rng: SimRng, var: f64, base: &PowerTrace) -> PowerTrace {
    // Per-node static factor (panel angle / placement)...
    let factor = 1.0 + var * (2.0 * rng.next_f64() - 1.0);
    // ...plus small fast per-sample jitter.
    let samples = base
        .samples()
        .iter()
        .map(|p| {
            let jitter = 1.0 + 0.05 * (2.0 * rng.next_f64() - 1.0);
            (*p * (factor * jitter)).max_zero()
        })
        .collect();
    PowerTrace::from_samples(base.dt(), samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neofog_types::Energy;

    fn mw(v: f64) -> Power {
        Power::from_milliwatts(v)
    }

    #[test]
    fn constant_trace_integrates_exactly() {
        let t = PowerTrace::constant(mw(10.0), Duration::from_secs(2), Duration::from_millis(100));
        let e = t.energy_between(Duration::ZERO, Duration::from_secs(2));
        assert!((e.as_nanojoules() - 10.0 * 2e6).abs() < 1e-6);
    }

    #[test]
    fn partial_interval_integration() {
        let t = PowerTrace::from_samples(Duration::from_millis(1), vec![mw(1.0), mw(2.0), mw(3.0)]);
        // [0.5ms, 2.5ms) = 0.5ms@1mW + 1ms@2mW + 0.5ms@3mW = 500+2000+1500 nJ
        let e = t.energy_between(Duration::from_micros(500), Duration::from_micros(2500));
        assert!((e.as_nanojoules() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn integration_beyond_end_is_clamped() {
        let t = PowerTrace::constant(mw(5.0), Duration::from_millis(1), Duration::from_millis(1));
        let e = t.energy_between(Duration::ZERO, Duration::from_secs(10));
        assert_eq!(e, Energy::from_nanojoules(5_000.0));
        assert_eq!(t.power_at(Duration::from_secs(5)), Power::ZERO);
    }

    #[test]
    fn power_at_reads_correct_sample() {
        let t = PowerTrace::from_samples(Duration::from_millis(10), vec![mw(1.0), mw(9.0)]);
        assert_eq!(t.power_at(Duration::ZERO), mw(1.0));
        assert_eq!(t.power_at(Duration::from_micros(9_999)), mw(1.0));
        assert_eq!(t.power_at(Duration::from_millis(10)), mw(9.0));
    }

    #[test]
    fn scaled_never_negative() {
        let t = PowerTrace::from_samples(Duration::from_millis(1), vec![mw(2.0)]);
        let s = t.scaled(-1.0);
        assert_eq!(s.samples()[0], Power::ZERO);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = TraceGenerator::new(Scenario::ForestIndependent, 7);
        let b = TraceGenerator::new(Scenario::ForestIndependent, 7);
        let ta = a.node_traces(3, Duration::from_mins(5), Duration::from_secs(1));
        let tb = b.node_traces(3, Duration::from_mins(5), Duration::from_secs(1));
        assert_eq!(ta, tb);
    }

    #[test]
    fn independent_nodes_are_decorrelated() {
        let gen = TraceGenerator::new(Scenario::ForestIndependent, 1);
        let traces = gen.node_traces(2, Duration::from_mins(30), Duration::from_secs(1));
        let (a, b) = (&traces[0], &traces[1]);
        let corr = correlation(a.samples(), b.samples());
        assert!(corr.abs() < 0.4, "independent correlation too high: {corr}");
    }

    #[test]
    fn dependent_nodes_are_correlated() {
        let gen = TraceGenerator::new(Scenario::BridgeDependent, 1);
        let traces = gen.node_traces(2, Duration::from_mins(30), Duration::from_secs(1));
        let corr = correlation(traces[0].samples(), traces[1].samples());
        assert!(corr > 0.8, "dependent correlation too low: {corr}");
    }

    #[test]
    fn rainy_scenario_is_low_power() {
        let gen = TraceGenerator::new(Scenario::MountainRainy, 3);
        let traces = gen.node_traces(4, Duration::from_mins(10), Duration::from_secs(1));
        for t in &traces {
            assert!(t.mean_power() < Power::from_milliwatts(3.0));
        }
        let sunny = TraceGenerator::new(Scenario::MountainSunny, 3);
        let st = sunny.node_trace(0, Duration::from_mins(10), Duration::from_secs(1));
        assert!(st.mean_power() > traces[0].mean_power() * 4.0);
    }

    #[test]
    fn trace_mean_matches_scenario_scale() {
        for sc in [
            Scenario::ForestIndependent,
            Scenario::BridgeDependent,
            Scenario::MountainSunny,
            Scenario::MountainRainy,
        ] {
            let gen = TraceGenerator::new(sc, 11);
            let t = gen.node_trace(0, Duration::from_mins(20), Duration::from_secs(1));
            let mean = t.mean_power().as_milliwatts();
            let nominal = sc.mean_power().as_milliwatts();
            assert!(
                mean > 0.3 * nominal && mean < 2.0 * nominal,
                "{sc:?}: mean {mean} vs nominal {nominal}"
            );
        }
    }

    #[test]
    fn extend_concatenates() {
        let mut a =
            PowerTrace::constant(mw(1.0), Duration::from_millis(2), Duration::from_millis(1));
        let b = PowerTrace::constant(mw(2.0), Duration::from_millis(1), Duration::from_millis(1));
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.power_at(Duration::from_millis(2)), mw(2.0));
    }

    fn correlation(a: &[Power], b: &[Power]) -> f64 {
        let n = a.len().min(b.len());
        let av: Vec<f64> = a[..n].iter().map(|p| p.as_milliwatts()).collect();
        let bv: Vec<f64> = b[..n].iter().map(|p| p.as_milliwatts()).collect();
        let ma = av.iter().sum::<f64>() / n as f64;
        let mb = bv.iter().sum::<f64>() / n as f64;
        let cov: f64 = av.iter().zip(&bv).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = av.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = bv.iter().map(|y| (y - mb).powi(2)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(f64::EPSILON)
    }
}

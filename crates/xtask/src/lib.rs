//! `neofog-xtask`: the workspace task runner.
//!
//! Run as `cargo xtask lint` (the alias lives in `.cargo/config.toml`).
//! The lint pass enforces the NEOFog-specific invariants that rustc and
//! clippy cannot see — typed units at API boundaries, determinism of
//! the simulation crates, the library panic policy, and energy-ledger
//! routing in the slot loop. The rule table and every exemption are in
//! [`rules`]; the matchers are in [`engine`].
//!
//! The pass deliberately works on a hand-rolled token stream
//! ([`lexer`]) rather than a full parse: the rules only need to see
//! identifiers, punctuation and line numbers, and must never be fooled
//! by comments or string literals.

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{classify, lint_source, lint_workspace, LintReport, Violation};

//! `neofog-xtask`: the workspace task runner.
//!
//! Run as `cargo xtask lint` (the alias lives in `.cargo/config.toml`).
//! The lint pass enforces the NEOFog-specific invariants that rustc and
//! clippy cannot see — typed units at API boundaries, determinism of
//! the simulation crates, the library panic policy, energy-ledger
//! routing in the slot loop, and the transitive graph rules:
//! panic-reachability from the slot loop, NV write discipline, and the
//! determinism closure. The rule table and every exemption are in
//! [`rules`]; the driver is in [`engine`].
//!
//! The analysis runs in three passes on a hand-rolled token stream
//! ([`lexer`]) — the build environment has no `syn`:
//!
//! 1. [`parser`] turns each file into a lightweight item model
//!    (modules, impl blocks, struct fields, functions with body token
//!    spans) and the per-file matchers scan the tokens. Models are
//!    persisted keyed by content hash ([`cache`]) so warm runs
//!    re-parse only changed files.
//! 2. [`graph`] links the items into a workspace call graph.
//! 3. [`reach`] and [`dataflow`] run the transitive rules over it,
//!    printing offending call chains in the diagnostics.
//!
//! Findings can be waived inline, via the allowlists in [`rules`], or
//! — for pre-existing graph-rule findings — via the checked-in
//! [`baseline`]; `--sarif` output for CI lives in [`sarif`].
//!
//! Beyond lint, `cargo xtask bench-snapshot` records the slot-kernel
//! throughput curve in `BENCH_slot_kernel.json` and gates CI on
//! per-iteration regressions ([`bench_snapshot`]).

pub mod baseline;
pub mod bench_snapshot;
pub mod cache;
pub mod dataflow;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod rules;
pub mod sarif;

pub use engine::{
    classify, lint_source, lint_sources, lint_workspace, lint_workspace_unbaselined,
    lint_workspace_with, LintOptions, LintReport, LintStats, Violation,
};

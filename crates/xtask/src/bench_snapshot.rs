//! Slot-kernel benchmark snapshots: capture, render, diff.
//!
//! `cargo xtask bench-snapshot` runs the `slot_kernel` Criterion bench
//! and records one entry per node count in `BENCH_slot_kernel.json` at
//! the workspace root — the PR-over-PR throughput trajectory of the
//! steady-state slot loop. `--check` re-runs the bench and fails when
//! any measured node count regressed more than
//! [`REGRESSION_TOLERANCE`] against the checked-in snapshot (CI caps
//! the sweep via `NEOFOG_SLOT_KERNEL_MAX_NODES`, so only the node
//! counts actually measured are compared).
//!
//! Everything here is hand-rolled string work: the build environment
//! has no JSON backend, and the bench harness's output format
//! (`group/name: 1.234ms/iter (5678 elem/s)`) is the stable contract
//! this module parses.

/// Workspace-root file the snapshot lives in.
pub const SNAPSHOT_FILE: &str = "BENCH_slot_kernel.json";

/// Bench group the snapshot records.
pub const BENCH_GROUP: &str = "slot_kernel";

/// Allowed per-iteration slowdown before `--check` fails (0.15 = 15 %).
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// Which topology a sweep point ran (the bench id's middle segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Topo {
    /// Linear chain (`slot_kernel/nodes/N`, the historical id).
    Chain,
    /// Seeded Erdős-Rényi mesh (`slot_kernel/mesh/N`).
    Mesh,
    /// Sensors→gateways→cloud tiers (`slot_kernel/tiered/N`).
    Tiered,
}

impl Topo {
    /// The bench-id segment (and snapshot `topo` value) of the variant.
    #[must_use]
    pub fn segment(self) -> &'static str {
        match self {
            Topo::Chain => "nodes",
            Topo::Mesh => "mesh",
            Topo::Tiered => "tiered",
        }
    }

    fn from_segment(seg: &str) -> Option<Topo> {
        match seg {
            "nodes" => Some(Topo::Chain),
            "mesh" => Some(Topo::Mesh),
            "tiered" => Some(Topo::Tiered),
            _ => None,
        }
    }
}

/// Parses a bench-id middle segment into `(topology, threads)`. A
/// `-t<N>` suffix names a sharded-kernel variant (`nodes-t8` = chain
/// advanced with 8 shard threads); a bare segment is the serial
/// kernel, so the historical ids keep meaning `threads = 1`.
fn parse_segment(seg: &str) -> Option<(Topo, u64)> {
    match seg.split_once("-t") {
        None => Topo::from_segment(seg).map(|t| (t, 1)),
        Some((base, threads)) => {
            let threads: u64 = threads.parse().ok().filter(|&t| t >= 1)?;
            Topo::from_segment(base).map(|t| (t, threads))
        }
    }
}

/// One measured point: a topology, a node count, a shard-thread count
/// and its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchEntry {
    /// Topology variant of the sweep point.
    pub topo: Topo,
    /// Chain width (physical nodes).
    pub nodes: u64,
    /// Slot-kernel shard threads the point ran with (1 = serial).
    pub threads: u64,
    /// Wall time of one `advance(1)` in nanoseconds.
    pub per_iter_ns: u64,
    /// Node-slots per second (`nodes / per_iter`).
    pub elem_per_s: u64,
}

impl BenchEntry {
    /// Sort/merge identity of the point. Threads are part of it, so
    /// `--check` only ever compares like-for-like: a serial
    /// measurement never gates against a threaded snapshot row.
    fn key(&self) -> (Topo, u64, u64) {
        (self.topo, self.nodes, self.threads)
    }

    /// The bench-id prefix of the point (`nodes/`, `nodes-t8/`, ...).
    fn id(&self) -> String {
        if self.threads == 1 {
            format!("{}/{}", self.topo.segment(), self.nodes)
        } else {
            format!("{}-t{}/{}", self.topo.segment(), self.threads, self.nodes)
        }
    }
}

/// Parses the bench harness's stdout, keeping
/// `slot_kernel/{nodes,mesh,tiered}/N` lines. Unrecognized lines
/// (cargo noise, other groups) are skipped.
#[must_use]
pub fn parse_bench_output(text: &str) -> Vec<BenchEntry> {
    let mut entries: Vec<BenchEntry> = text.lines().filter_map(parse_bench_line).collect();
    entries.sort_by_key(BenchEntry::key);
    entries
}

fn parse_bench_line(line: &str) -> Option<BenchEntry> {
    // `slot_kernel/nodes/1000: 170.452µs/iter (5866754 elem/s)`
    // `slot_kernel/nodes-t8/1000: 61.2µs/iter (16339869 elem/s)`
    let rest = line.strip_prefix(BENCH_GROUP)?.strip_prefix('/')?;
    let (segment, rest) = rest.split_once('/')?;
    let (topo, threads) = parse_segment(segment)?;
    let (nodes, rest) = rest.split_once(": ")?;
    let nodes: u64 = nodes.trim().parse().ok()?;
    let (duration, rest) = rest.split_once("/iter")?;
    let per_iter_ns = parse_duration_ns(duration.trim())?;
    let elem = rest.trim().strip_prefix('(')?.strip_suffix("elem/s)")?;
    let elem_per_s: u64 = elem.trim().parse().ok()?;
    Some(BenchEntry {
        topo,
        nodes,
        threads,
        per_iter_ns,
        elem_per_s,
    })
}

/// Parses `Duration`'s `Debug` rendering (`999ns`, `170.452µs`,
/// `2.949ms`, `4.863s`) into nanoseconds.
fn parse_duration_ns(text: &str) -> Option<u64> {
    let (value, scale) = if let Some(v) = text.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = text.strip_suffix("µs") {
        (v, 1e3)
    } else if let Some(v) = text.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = text.strip_suffix('s') {
        (v, 1e9)
    } else {
        return None;
    };
    let value: f64 = value.trim().parse().ok()?;
    if !value.is_finite() || value < 0.0 {
        return None;
    }
    Some((value * scale).round() as u64)
}

/// Renders the snapshot file: one entry per line, diff-stable.
#[must_use]
pub fn render(entries: &[BenchEntry]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"bench\": \"{BENCH_GROUP}\",\n"));
    s.push_str("  \"unit\": \"per_iter_ns = one advance(1) call; elem_per_s = node-slots/s\",\n");
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"topo\": \"{}\", \"nodes\": {}, \"threads\": {}, \"per_iter_ns\": {}, \
             \"elem_per_s\": {}}}{comma}\n",
            e.topo.segment(),
            e.nodes,
            e.threads,
            e.per_iter_ns,
            e.elem_per_s
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parses a snapshot file written by [`render`] (entry-per-line; the
/// fields are read by key, so field order is free). Entries with no
/// `topo` field are chain points and entries with no `threads` field
/// are serial points — snapshots from before the topology sweep or
/// the sharded kernel existed stay comparable.
#[must_use]
pub fn parse_snapshot(text: &str) -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"nodes\"") {
            continue;
        }
        let (Some(nodes), Some(per_iter_ns), Some(elem_per_s)) = (
            field_u64(line, "nodes"),
            field_u64(line, "per_iter_ns"),
            field_u64(line, "elem_per_s"),
        ) else {
            continue;
        };
        let topo = field_str(line, "topo")
            .and_then(Topo::from_segment)
            .unwrap_or(Topo::Chain);
        let threads = field_u64(line, "threads").unwrap_or(1);
        entries.push(BenchEntry {
            topo,
            nodes,
            threads,
            per_iter_ns,
            elem_per_s,
        });
    }
    entries.sort_by_key(BenchEntry::key);
    entries
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let rest = line.split_once(&format!("\"{key}\""))?.1;
    let rest = rest.split_once(':')?.1;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.split_once(&format!("\"{key}\""))?.1;
    let rest = rest.split_once(':')?.1.trim_start().strip_prefix('"')?;
    rest.split_once('"').map(|(v, _)| v)
}

/// Merges freshly measured entries into an existing snapshot: measured
/// node counts are replaced, unmeasured ones (e.g. the 10⁶ entry when
/// the sweep was capped) are kept.
#[must_use]
pub fn merge(existing: &[BenchEntry], measured: &[BenchEntry]) -> Vec<BenchEntry> {
    let mut merged: Vec<BenchEntry> = existing
        .iter()
        .filter(|e| measured.iter().all(|m| m.key() != e.key()))
        .copied()
        .collect();
    merged.extend_from_slice(measured);
    merged.sort_by_key(BenchEntry::key);
    merged
}

/// Compares measured entries against the checked-in snapshot.
/// Returns human-readable regression lines (empty = pass). Node counts
/// missing from the snapshot are reported as regressions: a new sweep
/// point must be snapshotted before CI can guard it.
#[must_use]
pub fn regressions(snapshot: &[BenchEntry], measured: &[BenchEntry]) -> Vec<String> {
    let mut problems = Vec::new();
    for m in measured {
        match snapshot.iter().find(|s| s.key() == m.key()) {
            None => problems.push(format!(
                "{}: not in {SNAPSHOT_FILE}; run `cargo xtask bench-snapshot` to record it",
                m.id()
            )),
            Some(s) => {
                let limit = s.per_iter_ns as f64 * (1.0 + REGRESSION_TOLERANCE);
                if m.per_iter_ns as f64 > limit {
                    problems.push(format!(
                        "{}: {} ns/iter vs {} ns/iter snapshotted \
                         (+{:.1} %, tolerance {:.0} %)",
                        m.id(),
                        m.per_iter_ns,
                        s.per_iter_ns,
                        (m.per_iter_ns as f64 / s.per_iter_ns as f64 - 1.0) * 100.0,
                        REGRESSION_TOLERANCE * 100.0
                    ));
                }
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
   Compiling neofog-bench v0.1.0 (/repo/crates/bench)
slot_kernel/nodes/1000: 170.452µs/iter (5866754 elem/s)
slot_kernel/nodes/10000: 2.949106ms/iter (3390858 elem/s)
slot_kernel/nodes/1000000: 4.86318582s/iter (205627 elem/s)
slot_kernel/nodes-t8/1000000: 1.21579645s/iter (822508 elem/s)
slot_kernel/mesh/1000: 201.5µs/iter (4962779 elem/s)
slot_kernel/tiered/1000: 180µs/iter (5555555 elem/s)
slot_kernel/ring/9: 1ms/iter (9 elem/s)
slot_kernel/nodes-tx/9: 1ms/iter (9 elem/s)
slot_kernel/nodes-t0/9: 1ms/iter (9 elem/s)
other_group/nodes/7: 1ms/iter (7 elem/s)
";

    #[test]
    fn parses_bench_output_across_duration_units() {
        let entries = parse_bench_output(SAMPLE);
        assert_eq!(entries.len(), 6);
        assert_eq!(entries[0].nodes, 1_000);
        assert_eq!(entries[0].topo, Topo::Chain);
        assert_eq!(entries[0].threads, 1);
        assert_eq!(entries[0].per_iter_ns, 170_452);
        assert_eq!(entries[0].elem_per_s, 5_866_754);
        assert_eq!(entries[1].per_iter_ns, 2_949_106);
        assert_eq!(entries[2].per_iter_ns, 4_863_185_820);
        assert_eq!(
            entries[3],
            BenchEntry {
                topo: Topo::Chain,
                nodes: 1_000_000,
                threads: 8,
                per_iter_ns: 1_215_796_450,
                elem_per_s: 822_508,
            },
            "a -t8 id parses as an 8-thread point sorted after serial"
        );
        assert_eq!(
            entries[4],
            BenchEntry {
                topo: Topo::Mesh,
                nodes: 1_000,
                threads: 1,
                per_iter_ns: 201_500,
                elem_per_s: 4_962_779,
            }
        );
        assert_eq!(entries[5].topo, Topo::Tiered);
        assert_eq!(parse_duration_ns("999ns"), Some(999));
    }

    #[test]
    fn snapshots_without_topo_or_threads_parse_as_serial_chain_points() {
        let legacy = "\
{
  \"entries\": [
    {\"nodes\": 1000, \"per_iter_ns\": 170452, \"elem_per_s\": 5866754}
  ]
}
";
        let entries = parse_snapshot(legacy);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].topo, Topo::Chain);
        assert_eq!(entries[0].threads, 1);
        assert_eq!(entries[0].per_iter_ns, 170_452);
    }

    #[test]
    fn snapshot_render_parse_round_trips() {
        let entries = parse_bench_output(SAMPLE);
        let rendered = render(&entries);
        assert_eq!(parse_snapshot(&rendered), entries);
    }

    #[test]
    fn merge_keeps_unmeasured_points() {
        let existing = parse_bench_output(SAMPLE);
        let measured = [BenchEntry {
            topo: Topo::Chain,
            nodes: 1_000,
            threads: 1,
            per_iter_ns: 100_000,
            elem_per_s: 10_000_000,
        }];
        let merged = merge(&existing, &measured);
        assert_eq!(merged.len(), 6);
        assert_eq!(merged[0].per_iter_ns, 100_000, "measured point replaced");
        assert_eq!(merged[2].nodes, 1_000_000, "capped-out point kept");
        assert_eq!(merged[3].threads, 8, "threaded point kept");
        assert_eq!(merged[4].topo, Topo::Mesh, "mesh point kept");
    }

    #[test]
    fn regression_gate_trips_beyond_tolerance_only() {
        let snapshot = [BenchEntry {
            topo: Topo::Chain,
            nodes: 1_000,
            threads: 1,
            per_iter_ns: 100_000,
            elem_per_s: 10_000_000,
        }];
        let within = [BenchEntry {
            topo: Topo::Chain,
            nodes: 1_000,
            threads: 1,
            per_iter_ns: 114_000,
            elem_per_s: 8_771_929,
        }];
        assert!(regressions(&snapshot, &within).is_empty());
        let beyond = [BenchEntry {
            topo: Topo::Chain,
            nodes: 1_000,
            threads: 1,
            per_iter_ns: 116_000,
            elem_per_s: 8_620_689,
        }];
        assert_eq!(regressions(&snapshot, &beyond).len(), 1);
        let unknown = [BenchEntry {
            topo: Topo::Chain,
            nodes: 5_000,
            threads: 1,
            per_iter_ns: 1,
            elem_per_s: 1,
        }];
        assert_eq!(regressions(&snapshot, &unknown).len(), 1);
        // A mesh point at a snapshotted chain width is still unknown:
        // the identity is (topo, nodes, threads), not nodes alone.
        let cross_topo = [BenchEntry {
            topo: Topo::Mesh,
            nodes: 1_000,
            threads: 1,
            per_iter_ns: 100_000,
            elem_per_s: 10_000_000,
        }];
        assert_eq!(regressions(&snapshot, &cross_topo).len(), 1);
    }

    #[test]
    fn threaded_points_compare_like_for_like_only() {
        // A slow threaded measurement at a snapshotted serial width is
        // "not in snapshot", never a regression against the serial row
        // — and vice versa.
        let snapshot = [BenchEntry {
            topo: Topo::Chain,
            nodes: 1_000,
            threads: 1,
            per_iter_ns: 100_000,
            elem_per_s: 10_000_000,
        }];
        let threaded = [BenchEntry {
            topo: Topo::Chain,
            nodes: 1_000,
            threads: 8,
            per_iter_ns: 500_000,
            elem_per_s: 2_000_000,
        }];
        let problems = regressions(&snapshot, &threaded);
        assert_eq!(problems.len(), 1);
        assert!(
            problems[0].starts_with("nodes-t8/1000: not in"),
            "unexpected: {}",
            problems[0]
        );
        let merged = merge(&snapshot, &threaded);
        assert_eq!(merged.len(), 2);
        assert!(regressions(&merged, &threaded).is_empty());
        assert!(regressions(&merged, &snapshot).is_empty());
    }
}

//! The declarative rule table and allowlists.
//!
//! Every NEOFog-specific invariant the lint pass enforces is listed
//! here with a stable rule ID, the scope it applies to, and a
//! rationale. The families:
//!
//! | family        | rules                         | phase                 |
//! |---------------|-------------------------------|-----------------------|
//! | `NF-UNIT`     | 001                           | pass 1 (per-file)     |
//! | `NF-DET`      | 001–003 per-file, 004 closure | pass 1 + pass 3       |
//! | `NF-PANIC`    | 001–003                       | pass 1 (per-file)     |
//! | `NF-LEDGER`   | 001                           | pass 1 (per-file)     |
//! | `NF-REACH`    | 001                           | pass 3 (call graph)   |
//! | `NF-NV`       | 001                           | pass 3 (call graph)   |
//! | `NF-ALLOC`    | 001 construction, 002 growth  | pass 3 (call graph)   |
//! | `NF-PAR`      | 001 int. mut., 002 unordered  | pass 3 (call graph)   |
//! | `NF-SHARD`    | 001 global state, 002 raw emit| pass 3 (call graph)   |
//! | `NF-FLOAT`    | 001 f64 fold, 002 f64 compare | pass 3 (call graph)   |
//!
//! The per-file rules run in pass 1 on each file's token stream
//! (models are rebuilt only for files whose content hash changed —
//! see [`crate::cache`]); pass 2 links the item models into the
//! whole-workspace call graph built by [`crate::graph`]; the graph
//! rules run in pass 3 over it ([`crate::reach`] and
//! [`crate::dataflow`]) and print the offending call chain in their
//! diagnostics. Exemptions live in the allowlists below — never inline
//! in the engine — so a reviewer can audit the complete policy in one
//! file, and the engine warns about any entry that no longer waives a
//! real site. Individual sites can also be waived in source with
//!
//! ```text
//! // neofog-lint: allow(NF-XXX-NNN) one-line justification
//! ```
//!
//! on the offending line or the line directly above it. Pre-existing
//! findings of the graph rules are recorded in `lint-baseline.json` at
//! the workspace root (regenerate with `cargo xtask lint
//! --update-baseline`); anything not in the baseline fails the run.
//! `cargo xtask lint --explain NF-XXX-NNN` prints one rule's entry.

/// Which files a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// All first-party library code (`crates/*/src`, root `src/`),
    /// excluding tests, benches, examples and `src/bin` binaries.
    Library,
    /// Library code of the deterministic simulation crates only:
    /// `core`, `energy`, `net`, `nvp`, `rf`.
    SimCrates,
    /// A single file, named by workspace-relative path.
    File(&'static str),
    /// A set of files matched by a workspace-relative glob pattern.
    /// `*` matches any run of characters except `/`, so
    /// `crates/core/src/sim/*.rs` covers the phase-pipeline modules
    /// without reaching into nested directories.
    Glob(&'static str),
}

/// One lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier, e.g. `NF-DET-002`.
    pub id: &'static str,
    /// One-line summary shown with every diagnostic.
    pub summary: &'static str,
    /// Why the invariant matters for the NEOFog reproduction.
    pub rationale: &'static str,
    /// Where the rule applies.
    pub scope: Scope,
}

/// The complete rule table.
pub const RULES: &[Rule] = &[
    Rule {
        id: "NF-UNIT-001",
        summary: "raw f64 used for a dimensioned quantity",
        rationale: "energy/power/time/charge values must use the typed units in \
                    crates/types/src/units.rs; a bare f64 silently mixes joules \
                    with nanojoules and watts with milliwatts",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-DET-001",
        summary: "wall-clock time source in simulation code",
        rationale: "Instant/SystemTime make runs irreproducible; simulated time \
                    advances only through slot arithmetic",
        scope: Scope::SimCrates,
    },
    Rule {
        id: "NF-DET-002",
        summary: "hash-ordered collection in simulation code",
        rationale: "HashMap/HashSet iteration order varies across runs and \
                    platforms; use BTreeMap/BTreeSet so identical seeds give \
                    identical results",
        scope: Scope::SimCrates,
    },
    Rule {
        id: "NF-DET-003",
        summary: "non-SimRng randomness in simulation code",
        rationale: "all stochastic behaviour must flow from the seeded, \
                    forkable neofog_types::SimRng so a (seed, config) pair \
                    fully determines a run",
        scope: Scope::SimCrates,
    },
    Rule {
        id: "NF-PANIC-001",
        summary: "unwrap()/expect() in library code",
        rationale: "library code returns neofog_types::Result; panics in a \
                    long fleet sweep abort thousands of sibling simulations",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-PANIC-002",
        summary: "panic!/unreachable!/todo!/unimplemented! in library code",
        rationale: "same as NF-PANIC-001; assert!/debug_assert! remain allowed \
                    for internal invariants",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-PANIC-003",
        summary: "slice indexing in library code",
        rationale: "out-of-bounds indexing panics; prefer get()/iterators \
                    except in allowlisted numeric kernels whose indices are \
                    loop-bound-derived",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-DET-004",
        summary: "non-sim helper reachable from simulation code is nondeterministic",
        rationale: "the determinism closure: NF-DET-001/002/003 cover the sim \
                    crates directly, but a sim-crate function calling a helper \
                    in types/workloads/sensors that reads a wall clock or \
                    iterates a hash map is just as irreproducible; the call \
                    graph extends the ban transitively and the diagnostic \
                    prints the offending chain",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-REACH-001",
        summary: "panic site transitively reachable from the slot loop",
        rationale: "a fleet sweep runs thousands of simulations through the \
                    phase functions in crates/core/src/sim/*.rs; any \
                    unwrap/expect/panic!/indexing in a function the slot loop \
                    can reach — at any call depth — aborts them all, so the \
                    per-call-site NF-PANIC waivers are not enough on the hot \
                    path; the diagnostic prints the call chain from the phase \
                    function to the site",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-NV-001",
        summary: "NV-state field written outside commit/ledger discipline",
        rationale: "NEOFog's correctness across power failure (§3) rests on \
                    nonvolatile state (NvBuffer, NvRf, RfConfig) changing only \
                    under the commit discipline: methods of the NV type itself \
                    or commit/checkpoint/restore/ledger-phase functions; a \
                    stray field write reachable from an undisciplined entry \
                    point could tear NVP/NVRF state mid-power-cycle",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-ALLOC-001",
        summary: "allocating construction reachable from the slot loop",
        rationale: "the steady-state slot loop is allocation-free (enforced \
                    dynamically by the counting-allocator test); a heap \
                    construction site — Box::new/Arc::new, vec!/format!, \
                    collect()/to_vec()/to_owned()/to_string()/clone() — \
                    reachable from a phase function regresses the hot path \
                    the moment a code path exercises it, so the static twin \
                    flags it at review time with the call chain printed",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-ALLOC-002",
        summary: "container growth reachable from the slot loop",
        rationale: "push/extend/insert/resize and friends reallocate unless \
                    the container was pre-sized; the slot loop's scratch \
                    vectors are reserved once and refilled in place, so any \
                    growth call a phase function can reach is either bounded \
                    by a reserve (audited waiver) or a latent per-slot \
                    allocation the counting allocator would only catch on \
                    the path a test happens to drive",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-PAR-001",
        summary: "interior mutability reachable from a parallel entry point",
        rationale: "the work-stealing pool and the sharded slot kernel both \
                    guarantee parallel == serial results; Mutex/RwLock/\
                    RefCell/Cell (or a static mut) reachable from a worker \
                    body, a Reduce::map/fold impl, or a shard sweep is \
                    shared state whose observation order depends on thread \
                    scheduling — the one thing the golden tests cannot \
                    sweep over every interleaving",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-PAR-002",
        summary: "unordered iteration source reachable from a parallel entry point",
        rationale: "HashMap/HashSet iteration order varies run to run; a \
                    reducer or shard sweep folding over one produces \
                    aggregates that differ between worker or shard counts \
                    even when every per-job result is bit-identical, \
                    silently breaking the parallel == serial guarantee the \
                    runner's re-sequencing and the kernel's event splicing \
                    exist to uphold",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-LEDGER-001",
        summary: "energy debit/credit bypasses the conservation ledger",
        rationale: "every charge/discharge/leak/spend in the slot loop must be \
                    booked in the EnergyLedger so debug builds can assert \
                    per-slot conservation (harvested = consumed + stored + \
                    leaked + lost)",
        scope: Scope::Glob("crates/core/src/sim/*.rs"),
    },
    Rule {
        id: "NF-SHARD-001",
        summary: "full-fleet state reachable from a shard sweep body",
        rationale: "a shard sweep sees exactly one position-aligned slice of \
                    the fleet (ColumnsShard / NodeView); naming NodeColumns, \
                    NodeCold or SlotCtx from a sweep-reachable function is a \
                    global-index access that silently aliases state another \
                    thread owns, so parallel and serial runs diverge in ways \
                    the goldens only catch after the fact",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-SHARD-002",
        summary: "event bus reached from a shard sweep, bypassing the splice",
        rationale: "sweeps must emit through the per-shard ShardScratch event \
                    buffer so drive() can splice buffers in ascending shard \
                    order — the step that makes parallel emission order equal \
                    serial order; a direct bus.emit/on_event call from a \
                    sweep-reachable function publishes events in thread \
                    completion order instead",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-FLOAT-001",
        summary: "floating-point accumulation on the sharded drive path",
        rationale: "float addition is not associative, so an f64 +=/sum()/fold \
                    whose grouping depends on shard count breaks bit-identity \
                    between thread counts; cross-shard reductions (the \
                    transmit carry pass, fold_total) must stay integer — that \
                    invariant is what lets one FNV-1a golden pin every thread \
                    count at once",
        scope: Scope::Library,
    },
    Rule {
        id: "NF-FLOAT-002",
        summary: "floating-point comparison on the sharded drive path",
        rationale: "a branch on an f64 comparison reachable from the shard \
                    kernel turns any accumulated rounding difference into a \
                    control-flow difference, amplifying a 1-ulp wobble into \
                    divergent event streams; comparisons on node-local values \
                    with shard-independent evaluation order are waived in the \
                    baseline with per-site rationale (DESIGN.md §17)",
        scope: Scope::Library,
    },
];

/// A per-file exemption from one rule.
#[derive(Debug, Clone, Copy)]
pub struct FileAllow {
    /// Rule being waived.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes). May use `*` with
    /// the same semantics as [`Scope::Glob`]; a path without `*`
    /// matches exactly.
    pub path: &'static str,
    /// Why the exemption is sound.
    pub reason: &'static str,
}

/// Files exempted from specific rules.
///
/// The bulk of the entries waive NF-PANIC-003 for numeric kernels: DSP
/// and dynamic-programming code whose indices are derived from loop
/// bounds over lengths it allocated itself, where `get()` chains would
/// obscure the mathematics without removing any real panic.
pub const FILE_ALLOWS: &[FileAllow] = &[
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/workloads/src/volumetric.rs",
        reason: "voxel-grid kernel; indices bounded by the grid dimensions it allocates",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/workloads/src/compress.rs",
        reason: "RLE/delta codec; window indices bounded by input length",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/workloads/src/dct.rs",
        reason: "8x8 DCT kernel; fixed-size block indices",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/workloads/src/fft.rs",
        reason: "radix-2 FFT butterflies; indices bounded by the power-of-two length",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/workloads/src/strength.rs",
        reason: "structural-model kernel; stencil indices bounded by the mesh size",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/workloads/src/uvdose.rs",
        reason: "dose-integration kernel over self-allocated series",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/workloads/src/noise.rs",
        reason: "spectral-band kernel over self-allocated series",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/workloads/src/pattern.rs",
        reason: "sliding-window matcher; window bounded by input length",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/core/src/balance/dp.rs",
        reason: "DP table kernel; indices bounded by the table dimensions it allocates",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/core/src/balance/distributed.rs",
        reason: "Algorithm-1 region scan; indices bounded by chain length",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/core/src/balance/tree.rs",
        reason: "up-down tree passes; indices bounded by chain length",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/core/src/sim/*.rs",
        reason: "phase functions loop over per-node vectors all sized to the node count",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/core/src/experiment.rs",
        reason: "figure tables indexed by the system/profile grid it builds",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/core/src/fleet.rs",
        reason: "percentile access into a vector it sorted and sized",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/core/src/nvd4q.rs",
        reason: "clone-group tables sized to the multiplex factor",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/core/src/report.rs",
        reason: "column-width table sized to the header row",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/types/src/rng.rs",
        reason: "xoshiro state array of fixed size 4; Fisher-Yates swap bounded by len",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/energy/src/trace.rs",
        reason: "trace resampling bounded by the sample count it allocates",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/net/src/topology.rs",
        reason: "chain-position access bounded by the chain length",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/net/src/routing.rs",
        reason: "hop-path access bounded by the route it built",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/nvp/src/spendthrift.rs",
        reason: "frequency-level table of fixed paper-given size",
    },
    FileAllow {
        rule: "NF-PANIC-003",
        path: "crates/xtask/src/engine.rs",
        reason: "token-window scans bounded by the token vector length",
    },
];

/// A per-identifier exemption from one rule.
#[derive(Debug, Clone, Copy)]
pub struct IdentAllow {
    /// Rule being waived.
    pub rule: &'static str,
    /// The exact field/parameter name.
    pub ident: &'static str,
    /// Why the name is not actually dimensioned.
    pub reason: &'static str,
}

/// Identifiers that look dimensioned but are genuinely dimensionless.
pub const IDENT_ALLOWS: &[IdentAllow] = &[
    IdentAllow {
        rule: "NF-UNIT-001",
        ident: "initial_charge",
        reason: "fraction of capacitor capacity in [0, 1], not coulombs",
    },
    IdentAllow {
        rule: "NF-UNIT-001",
        ident: "energy_index",
        reason: "dimensionless structural-strength index from the workload model",
    },
];

/// Name fragments that mark an `f64` as carrying a physical dimension.
pub const DIMENSIONED_MARKERS: &[&str] = &[
    "energy", "power", "joule", "watt", "volt", "ampere", "coulomb", "charge", "latency",
    "duration", "elapsed", "timeout", "deadline", "airtime",
];

/// Suffixes that mark an `f64` as carrying an explicit unit.
pub const DIMENSIONED_SUFFIXES: &[&str] = &[
    "_nj", "_uj", "_mj", "_j", "_nw", "_uw", "_mw", "_w", "_us", "_ms", "_ns", "_secs", "_seconds",
    "_micros", "_millis", "_nanos",
];

/// Name fragments that mark a value as a dimensionless ratio, so a
/// dimensioned marker inside the same name does not fire the rule
/// (`charge_efficiency`, `energy_saved_ratio`, ...).
pub const DIMENSIONLESS_MARKERS: &[&str] = &[
    "efficiency",
    "_eff",
    "eff_",
    "ratio",
    "fraction",
    "factor",
    "scale",
    "share",
    "prob",
    "chance",
    "weight",
    "score",
    "norm",
    "gain",
    "loss",
];

/// Identifiers banned by NF-DET-001 (wall-clock time).
pub const BANNED_TIME_IDENTS: &[&str] = &["Instant", "SystemTime"];

/// Identifiers banned by NF-DET-002 (hash-ordered collections).
pub const BANNED_HASH_IDENTS: &[&str] = &["HashMap", "HashSet"];

/// Identifiers banned by NF-DET-003 (foreign randomness).
pub const BANNED_RNG_IDENTS: &[&str] = &[
    "rand",
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "StdRng",
    "SmallRng",
    "getrandom",
];

/// Macro names banned by NF-PANIC-002.
pub const BANNED_PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Method names banned by NF-PANIC-001.
pub const BANNED_PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Methods in the `crates/core/src/sim/` phase modules that move
/// energy and must be booked in the `EnergyLedger` (a `ledger`
/// identifier within two lines of the call).
pub const LEDGER_METHODS: &[&str] = &[
    "charge",
    "charge_with_priority",
    "discharge_up_to",
    "try_discharge",
    "leak",
    "spend",
];

/// Files whose functions are the NF-REACH-001 entry points: the slot
/// loop's phase modules.
pub const REACH_ENTRY_GLOB: &str = "crates/core/src/sim/*.rs";

/// Files whose functions are the NF-ALLOC entry points: the six
/// per-slot phase modules, plus the offload balancer the balance
/// phase calls into every slot (the routing sweep itself lives in
/// `sim/transmit.rs` and is already covered). Deliberately narrower
/// than [`REACH_ENTRY_GLOB`] — `sim/mod.rs` (setup: `Simulator::new`
/// legitimately allocates every long-lived vector) and `sim/ctx.rs`
/// (the warmed scratch constructor) are excluded, mirroring the
/// warm-up window the counting-allocator test skips.
pub const ALLOC_ENTRY_FILES: &[&str] = &[
    "crates/core/src/sim/harvest.rs",
    "crates/core/src/sim/wake.rs",
    "crates/core/src/sim/balance.rs",
    "crates/core/src/sim/compute.rs",
    "crates/core/src/sim/transmit.rs",
    "crates/core/src/sim/slot_end.rs",
    "crates/core/src/balance/offload.rs",
];

/// Types whose associated constructors are heap-allocation sites for
/// NF-ALLOC-001 (`Vec::new` itself is lazily empty, but a fresh `Vec`
/// on the hot path exists to be grown).
pub const ALLOC_CTOR_TYPES: &[&str] = &[
    "Vec", "String", "VecDeque", "BTreeMap", "BTreeSet", "Box", "Rc", "Arc",
];

/// Associated-function names that, on an [`ALLOC_CTOR_TYPES`] type,
/// construct a heap value (NF-ALLOC-001).
pub const ALLOC_CTOR_FNS: &[&str] = &["new", "with_capacity", "from"];

/// Macros that allocate their result (NF-ALLOC-001).
pub const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Method calls that produce a freshly allocated value (NF-ALLOC-001).
/// `.clone()` is included pessimistically — the lexer cannot see the
/// receiver type, so cheap `Copy`-struct clones need a per-site waiver.
pub const ALLOC_ADAPTER_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string", "clone"];

/// Method calls that grow a container in place and may reallocate
/// (NF-ALLOC-002). Sites against pre-reserved scratch get audited
/// waivers; everything else is a latent per-slot allocation.
pub const ALLOC_GROWTH_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "extend",
    "extend_from_slice",
    "append",
    "insert",
    "resize",
    "reserve",
];

/// Files whose functions are the NF-PAR entry points: the
/// work-stealing runner (worker closures, the coordinator and every
/// `Reduce::map`/`fold` impl the pool dispatches into) AND the sharded
/// slot kernel (the `fork_join` layer plus every phase sweep the shard
/// driver forks — `sim/shard.rs` and the six phase files are all
/// reachable from a forked task).
pub const PAR_ENTRY_GLOBS: &[&str] = &["crates/core/src/runner/*.rs", "crates/core/src/sim/*.rs"];

/// Interior-mutability types banned on runner-reachable paths by
/// NF-PAR-001. Atomics are deliberately absent — the pool's own
/// claim counter and cancellation flag are atomics, and their
/// orderings are part of the reviewed runner design.
pub const PAR_INTERIOR_MUT_IDENTS: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
];

/// Structs whose fields are nonvolatile state under the NF-NV-001
/// write discipline. They must be declared in one of [`NV_CRATES`];
/// same-named structs elsewhere (e.g. the volatile `SoftwareRf`) are
/// not NV.
pub const NV_STATE_STRUCTS: &[&str] = &["NvBuffer", "NvRf", "RfConfig"];

/// Crates that may declare NV-state structs.
pub const NV_CRATES: &[&str] = &["nvp", "rf"];

/// Name fragments that mark a function as part of the sanctioned
/// commit discipline for NV writes (besides methods of the NV types
/// themselves).
pub const NV_COMMIT_MARKERS: &[&str] = &["commit", "checkpoint", "restore", "ledger"];

/// Files that may contain shard sweeps: the six phase modules, the
/// shard layer itself and the fork-join primitive. Only the
/// *sweep-shaped* functions in them (named `sweep` or `*_sweep`) are
/// NF-SHARD entry roots — `drive`, `splice` and `ColumnsShard::full`
/// are sanctioned coordinators that legitimately name the full-fleet
/// types, and no sweep can call back into them.
pub const SHARD_ENTRY_FILES: &[&str] = &[
    "crates/core/src/sim/harvest.rs",
    "crates/core/src/sim/wake.rs",
    "crates/core/src/sim/balance.rs",
    "crates/core/src/sim/compute.rs",
    "crates/core/src/sim/transmit.rs",
    "crates/core/src/sim/slot_end.rs",
    "crates/core/src/sim/shard.rs",
    "crates/core/src/runner/fork.rs",
];

/// `true` for function names that mark a shard-sweep entry point.
#[must_use]
pub fn is_sweep_name(name: &str) -> bool {
    name == "sweep" || name.ends_with("_sweep")
}

/// Full-fleet state types banned from sweep-reachable signatures and
/// bodies by NF-SHARD-001. Sweeps receive a `ColumnsShard` split slice
/// and go through `NodeView`; these names appearing downstream of a
/// sweep mean a global-index escape hatch.
pub const SHARD_GLOBAL_STATE_IDENTS: &[&str] = &[
    "NodeColumns",
    "NodeCold",
    "SlotCtx",
    "Simulator",
    "SimParts",
];

/// Method names whose dotted call from a sweep-reachable function is a
/// direct observer dispatch (NF-SHARD-002). Bare `emit(..)` is the
/// sweep's own scratch-buffer closure parameter and stays sanctioned —
/// it is not a method, so it never links to `EventBus::emit`.
pub const SHARD_EMIT_METHODS: &[&str] = &["emit", "on_event"];

/// Bus/observer types banned from sweep-reachable signatures and
/// bodies by NF-SHARD-002.
pub const SHARD_BUS_IDENTS: &[&str] = &["EventBus", "Observers"];

/// Files whose *every* function roots the NF-FLOAT reachability scan,
/// in addition to the sweep-shaped entries of [`SHARD_ENTRY_FILES`]:
/// the shard driver (parallel arm + splice), the fork-join layer, and
/// the transmit module that owns the cross-shard suffix-sum/carry
/// pass.
pub const FLOAT_ENTRY_FILES: &[&str] = &[
    "crates/core/src/sim/shard.rs",
    "crates/core/src/runner/fork.rs",
    "crates/core/src/sim/transmit.rs",
];

/// Files whose reachable functions are *scanned* for NF-FLOAT sites:
/// the kernel/coordinator layer, the only place a cross-shard
/// reduction can physically live (leaf crates see one node at a time,
/// so their float arithmetic is node-local by construction).
pub const FLOAT_SITE_GLOBS: &[&str] = &["crates/core/src/sim/*.rs", "crates/core/src/runner/*.rs"];

/// Iterator reduction methods flagged by NF-FLOAT-001 when the
/// enclosing statement shows float evidence.
pub const FLOAT_FOLD_METHODS: &[&str] = &["sum", "fold", "product"];

/// Identifiers that count as float evidence within a statement.
pub const FLOAT_TYPE_IDENTS: &[&str] = &["f64", "f32"];

/// Crates excluded from the call graph: developer tooling that is
/// never linked into a simulator binary, so reachability through it
/// is meaningless (and its conservative method-name edges would only
/// add noise).
pub const TOOL_CRATES: &[&str] = &["xtask", "alloc-probe"];

/// Looks up a rule by ID.
#[must_use]
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Human-readable description of a scope, shared by `--explain` and
/// the SARIF `help` property.
#[must_use]
pub fn scope_text(scope: Scope) -> String {
    match scope {
        Scope::Library => "library code".to_string(),
        Scope::SimCrates => "sim crates (core, energy, net, nvp, rf)".to_string(),
        Scope::File(p) | Scope::Glob(p) => p.to_string(),
    }
}

//! The workspace symbol table and name-resolution-lite call graph.
//!
//! Nodes are every function parsed by [`crate::parser`]; edges are
//! call sites resolved by name. Resolution is deliberately
//! conservative in the direction the rules need: when a method name is
//! implemented by several types (or only by a trait — a dynamic
//! dispatch the lexer cannot see through), the call is linked to
//! *every* candidate, so "assume reachable" is the fallback and a
//! transitive rule can under-report only when a call is truly
//! invisible (macros, function pointers), never because resolution
//! guessed the wrong target.

use crate::lexer::{Tok, TokKind};
use crate::parser::{skip_angles, FileModel};
use std::collections::BTreeMap;
use std::ops::Range;

/// Keywords that can precede `(` without being a call (`if (..)`,
/// `match (..)`, tuple-struct `Self(..)`, ...). Shared with the
/// call-site scan so control flow is never mistaken for a call.
const EXPR_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while", "yield",
];

/// One function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning [`FileModel`] in the slice the graph was
    /// built from.
    pub file: usize,
    /// Owning crate directory name.
    pub crate_name: String,
    /// Human-readable name: `crate::[mod::][Type::]name`.
    pub display: String,
    /// Bare function name.
    pub name: String,
    /// Self type of the enclosing impl/trait block, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Signature token range within the owning file's stream.
    pub sig: Range<usize>,
    /// Body token range within the owning file's stream.
    pub body: Range<usize>,
}

/// Forward- or reverse-reachability result with parent pointers for
/// chain reconstruction.
#[derive(Debug)]
pub struct ReachSet {
    visited: Vec<bool>,
    parent: Vec<usize>,
}

impl ReachSet {
    /// `true` when node `id` was reached.
    #[must_use]
    pub fn visited(&self, id: usize) -> bool {
        self.visited.get(id).copied().unwrap_or(false)
    }
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All function nodes, in file order.
    pub nodes: Vec<FnNode>,
    /// `callees[i]` — nodes that node `i` may call (sorted, deduped).
    pub callees: Vec<Vec<usize>>,
    /// `callers[i]` — nodes that may call node `i`.
    pub callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over every function in `models`.
    #[must_use]
    pub fn build(models: &[FileModel]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, m) in models.iter().enumerate() {
            for f in &m.parsed.fns {
                let mut display = m.class.crate_name.clone();
                for md in &f.modules {
                    display.push_str("::");
                    display.push_str(md);
                }
                if let Some(ty) = &f.self_ty {
                    display.push_str("::");
                    display.push_str(ty);
                }
                display.push_str("::");
                display.push_str(&f.name);
                nodes.push(FnNode {
                    file: fi,
                    crate_name: m.class.crate_name.clone(),
                    display,
                    name: f.name.clone(),
                    self_ty: f.self_ty.clone(),
                    line: f.line,
                    sig: f.sig.clone(),
                    body: f.body.clone(),
                });
            }
        }
        // Resolution tables: free functions by name, methods by name
        // (every impl and trait declaration), and (type, name) pairs
        // for qualified calls.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut assoc: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            match &n.self_ty {
                None => free.entry(n.name.as_str()).or_default().push(id),
                Some(ty) => {
                    methods.entry(n.name.as_str()).or_default().push(id);
                    assoc
                        .entry((ty.as_str(), n.name.as_str()))
                        .or_default()
                        .push(id);
                }
            }
        }
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (id, n) in nodes.iter().enumerate() {
            let Some(model) = models.get(n.file) else {
                continue;
            };
            let toks = &model.toks;
            let mut targets = Vec::new();
            for j in n.body.clone() {
                resolve_call_site(toks, j, n, &nodes, &free, &methods, &assoc, &mut targets);
            }
            targets.retain(|&t| t != id);
            targets.sort_unstable();
            targets.dedup();
            if let Some(slot) = callees.get_mut(id) {
                *slot = targets;
            }
        }
        for (id, cs) in callees.iter().enumerate() {
            for &c in cs {
                if let Some(slot) = callers.get_mut(c) {
                    slot.push(id);
                }
            }
        }
        CallGraph {
            nodes,
            callees,
            callers,
        }
    }

    /// Forward BFS from `entries` over callee edges. Entries are
    /// themselves visited.
    #[must_use]
    pub fn reach_forward(&self, entries: &[usize]) -> ReachSet {
        self.bfs(entries, &self.callees, |_| true)
    }

    /// Reverse BFS from `entries` over caller edges, never expanding
    /// through nodes rejected by `enter` (the start nodes are always
    /// visited).
    #[must_use]
    pub fn reach_backward(&self, entries: &[usize], enter: impl Fn(usize) -> bool) -> ReachSet {
        self.bfs(entries, &self.callers, enter)
    }

    fn bfs(
        &self,
        entries: &[usize],
        edges: &[Vec<usize>],
        enter: impl Fn(usize) -> bool,
    ) -> ReachSet {
        let mut visited = vec![false; self.nodes.len()];
        let mut parent = vec![usize::MAX; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut sorted_entries: Vec<usize> = entries.to_vec();
        sorted_entries.sort_unstable();
        sorted_entries.dedup();
        for &e in &sorted_entries {
            if let Some(v) = visited.get_mut(e) {
                if !*v {
                    *v = true;
                    queue.push_back(e);
                }
            }
        }
        while let Some(cur) = queue.pop_front() {
            let Some(next) = edges.get(cur) else {
                continue;
            };
            for &nb in next {
                if !enter(nb) {
                    continue;
                }
                if let Some(v) = visited.get_mut(nb) {
                    if !*v {
                        *v = true;
                        if let Some(p) = parent.get_mut(nb) {
                            *p = cur;
                        }
                        queue.push_back(nb);
                    }
                }
            }
        }
        ReachSet { visited, parent }
    }

    /// Reconstructs the call chain from the entry that discovered
    /// `target` down to `target`, as display names. A chain of length
    /// one means `target` is itself an entry point.
    #[must_use]
    pub fn chain(&self, reach: &ReachSet, target: usize) -> Vec<String> {
        let mut ids = Vec::new();
        let mut cur = target;
        loop {
            ids.push(cur);
            match reach.parent.get(cur) {
                Some(&p) if p != usize::MAX => cur = p,
                _ => break,
            }
        }
        ids.reverse();
        ids.iter()
            .filter_map(|&i| self.nodes.get(i).map(|n| n.display.clone()))
            .collect()
    }

    /// Finds a node whose display name ends with `suffix` (test
    /// convenience).
    #[must_use]
    pub fn find(&self, suffix: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.display.ends_with(suffix))
    }
}

/// `true` for identifiers shaped like a generic type parameter: one
/// uppercase letter, optionally followed by digits (`R`, `T`, `R1`).
fn is_generic_param_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_uppercase())
        && chars.clone().all(|c| c.is_ascii_digit())
        && name.len() <= 3
}

/// Inspects token `j` of `toks` for a call site and appends every
/// resolution candidate to `out`.
#[allow(clippy::too_many_arguments)]
fn resolve_call_site(
    toks: &[Tok],
    j: usize,
    caller: &FnNode,
    nodes: &[FnNode],
    free: &BTreeMap<&str, Vec<usize>>,
    methods: &BTreeMap<&str, Vec<usize>>,
    assoc: &BTreeMap<(&str, &str), Vec<usize>>,
    out: &mut Vec<usize>,
) {
    let Some(t) = toks.get(j) else { return };
    if t.kind != TokKind::Ident || EXPR_KEYWORDS.contains(&t.text.as_str()) {
        return;
    }
    // Macros are not calls.
    if toks.get(j + 1).is_some_and(|x| x.is_punct('!')) {
        return;
    }
    // `name::<T>(...)` — hop the turbofish to find the paren.
    let mut call_at = j + 1;
    if toks.get(j + 1).is_some_and(|x| x.is_punct(':'))
        && toks.get(j + 2).is_some_and(|x| x.is_punct(':'))
        && toks.get(j + 3).is_some_and(|x| x.is_punct('<'))
    {
        call_at = skip_angles(toks, j + 3);
    }
    if !toks.get(call_at).is_some_and(|x| x.is_punct('(')) {
        return;
    }
    let name = t.text.as_str();
    let prev = j.checked_sub(1).and_then(|p| toks.get(p));
    if prev.is_some_and(|p| p.is_punct('.')) {
        // Method call: every impl (and trait declaration) of that
        // name is a candidate — single impls resolve exactly, the
        // rest fall back to "assume reachable".
        if let Some(v) = methods.get(name) {
            out.extend_from_slice(v);
        }
        return;
    }
    let qualified = prev.is_some_and(|p| p.is_punct(':'))
        && j >= 2
        && toks.get(j - 2).is_some_and(|p| p.is_punct(':'));
    if qualified {
        match j.checked_sub(3).and_then(|p| toks.get(p)) {
            Some(q) if q.kind == TokKind::Ident => {
                let qual = if q.text == "Self" {
                    caller.self_ty.clone().unwrap_or_else(|| "Self".to_string())
                } else {
                    q.text.clone()
                };
                if let Some(v) = assoc.get(&(qual.as_str(), name)) {
                    out.extend_from_slice(v);
                } else if let Some(v) = free.get(name) {
                    // `module::helper(...)` — the qualifier is a
                    // module or crate, not a type.
                    out.extend_from_slice(v);
                } else if is_generic_param_name(&qual) {
                    // `R::map(...)`: the qualifier is a generic
                    // parameter no impl block names, so every method
                    // of that name is a candidate — this is how the
                    // runner's `R::map` links to each `Reduce` impl.
                    // Longer unresolved qualifiers (`Vec::new`,
                    // `Instant::now`) are std/foreign types; linking
                    // them to every same-named workspace method would
                    // drown reachability in false edges.
                    if let Some(v) = methods.get(name) {
                        out.extend_from_slice(v);
                    }
                }
            }
            // `<T as Trait>::name(...)` and friends: conservative.
            _ => {
                if let Some(v) = methods.get(name) {
                    out.extend_from_slice(v);
                }
                if let Some(v) = free.get(name) {
                    out.extend_from_slice(v);
                }
            }
        }
        return;
    }
    // Bare call: prefer free functions of the caller's own crate;
    // with no same-crate candidate, link every crate's (a `use`d
    // cross-crate helper called unqualified).
    if let Some(v) = free.get(name) {
        let same: Vec<usize> = v
            .iter()
            .copied()
            .filter(|&c| {
                nodes
                    .get(c)
                    .is_some_and(|cn| cn.crate_name == caller.crate_name)
            })
            .collect();
        if same.is_empty() {
            out.extend_from_slice(v);
        } else {
            out.extend_from_slice(&same);
        }
    }
}

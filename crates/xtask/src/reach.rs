//! Pass 2: transitive rules over the workspace call graph.
//!
//! Three rule families live here, all sharing the [`CallGraph`] built
//! from the parsed item models:
//!
//! * **NF-REACH-001** — forward reachability from the slot-loop phase
//!   functions (`crates/core/src/sim/*.rs`): any panic site (`unwrap`,
//!   `expect`, panic-family macros, slice indexing) in a function the
//!   slot loop can reach is reported with the call chain.
//! * **NF-DET-004** — the determinism closure: a *non-sim* helper
//!   reachable from sim-crate code may not use wall clocks, hash
//!   collections or foreign RNGs, even though the per-file NF-DET
//!   rules do not scope to its crate.
//! * **NF-NV-001** — NV write discipline: fields of the NV-state
//!   structs may only be mutated from the NV type's own methods or
//!   from commit/checkpoint/restore/ledger-phase functions; a mutator
//!   reachable from an undisciplined entry point is reported with the
//!   chain from that entry point.
//!
//! Diagnostics deliberately omit line numbers from their messages so
//! the baseline stays stable as code drifts; the line lives in the
//! [`Violation::line`] field, the chain in [`Violation::chain`].

use crate::engine::{
    det_ident_sites, glob_matches, indexing_sites, panic_macro_sites, panic_method_sites, Violation,
};
use crate::graph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::parser::FileModel;
use crate::rules;
use std::collections::{BTreeMap, BTreeSet};

/// NF-REACH-001: panic sites transitively reachable from the slot
/// loop.
pub(crate) fn panic_reachability(models: &[FileModel], graph: &CallGraph) -> Vec<Violation> {
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(id, n)| {
            let rel = models.get(n.file).map(|m| m.rel.as_str())?;
            glob_matches(rules::REACH_ENTRY_GLOB, rel).then_some(id)
        })
        .collect();
    let reach = graph.reach_forward(&entries);
    let mut out = Vec::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if !reach.visited(id) {
            continue;
        }
        let Some(m) = models.get(n.file) else {
            continue;
        };
        if !m.class.is_library {
            continue;
        }
        let chain = graph.chain(&reach, id);
        let mut push = |line: u32, what: String, subject: String| {
            out.push(Violation {
                rule: "NF-REACH-001",
                path: m.rel.clone(),
                line,
                message: format!("`{}` {what} and is reachable from the slot loop", n.display),
                subject,
                chain: chain.clone(),
            });
        };
        for (line, name) in panic_method_sites(&m.toks, n.body.clone()) {
            let what = format!("calls `.{name}()`");
            push(line, what, name);
        }
        for (line, name) in panic_macro_sites(&m.toks, n.body.clone()) {
            let what = format!("invokes `{name}!`");
            push(line, what, name);
        }
        for line in indexing_sites(&m.toks, n.body.clone()) {
            push(line, "indexes into a slice".to_string(), String::new());
        }
    }
    out
}

/// NF-DET-004: nondeterminism in non-sim helpers reachable from
/// simulation code.
pub(crate) fn determinism_closure(models: &[FileModel], graph: &CallGraph) -> Vec<Violation> {
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(id, n)| {
            models
                .get(n.file)
                .is_some_and(|m| m.class.is_sim)
                .then_some(id)
        })
        .collect();
    let reach = graph.reach_forward(&entries);
    let mut out = Vec::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if !reach.visited(id) {
            continue;
        }
        let Some(m) = models.get(n.file) else {
            continue;
        };
        // The per-file NF-DET rules already cover sim crates; the
        // closure adds only what they cannot see. Binaries stay
        // exempt just as they are from the per-file rules.
        if m.class.is_sim || !m.class.is_library {
            continue;
        }
        let chain = graph.chain(&reach, id);
        for (_, line, name, what) in det_ident_sites(&m.toks, n.body.clone()) {
            out.push(Violation {
                rule: "NF-DET-004",
                path: m.rel.clone(),
                line,
                message: format!(
                    "`{}` uses {what} `{name}` and is called from simulation code",
                    n.display
                ),
                subject: name,
                chain: chain.clone(),
            });
        }
    }
    out
}

/// `true` when the token at `k` starts an assignment operator: `=`
/// (not `==`/`=>`), a compound op (`+=`, `&=`, ...), or a shift
/// assignment (`<<=`, `>>=`).
fn is_assign_op(toks: &[Tok], k: usize) -> bool {
    let Some(t) = toks.get(k) else { return false };
    let next_eq = toks.get(k + 1).is_some_and(|x| x.is_punct('='));
    if t.is_punct('=') {
        let next_gt = toks.get(k + 1).is_some_and(|x| x.is_punct('>'));
        return !next_eq && !next_gt;
    }
    if ['+', '-', '*', '/', '%', '&', '|', '^']
        .iter()
        .any(|&op| t.is_punct(op))
    {
        return next_eq;
    }
    let same_again = (t.is_punct('<') && toks.get(k + 1).is_some_and(|x| x.is_punct('<')))
        || (t.is_punct('>') && toks.get(k + 1).is_some_and(|x| x.is_punct('>')));
    same_again && toks.get(k + 2).is_some_and(|x| x.is_punct('='))
}

/// NF-NV-001: NV-state fields mutated outside the commit discipline.
pub(crate) fn nv_write_discipline(models: &[FileModel], graph: &CallGraph) -> Vec<Violation> {
    // Field tables: which NV structs own each field name, and whether
    // any non-NV struct anywhere in the workspace also declares it
    // (in which case a `receiver.field = ...` with an unknown
    // receiver type is ambiguous and skipped).
    let mut nv_fields: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut non_nv_fields: BTreeSet<&str> = BTreeSet::new();
    for m in models {
        let is_nv_crate = rules::NV_CRATES.contains(&m.class.crate_name.as_str());
        for s in &m.parsed.structs {
            let is_nv = is_nv_crate && rules::NV_STATE_STRUCTS.contains(&s.name.as_str());
            for f in &s.fields {
                if is_nv {
                    nv_fields
                        .entry(f.as_str())
                        .or_default()
                        .insert(s.name.as_str());
                } else {
                    non_nv_fields.insert(f.as_str());
                }
            }
        }
    }
    if nv_fields.is_empty() {
        return Vec::new();
    }
    let sanctioned = |id: usize| -> bool {
        graph.nodes.get(id).is_some_and(|n| {
            n.self_ty
                .as_deref()
                .is_some_and(|ty| rules::NV_STATE_STRUCTS.contains(&ty))
                || rules::NV_COMMIT_MARKERS.iter().any(|m| n.name.contains(m))
        })
    };
    let mut out = Vec::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if sanctioned(id) {
            continue;
        }
        let Some(m) = models.get(n.file) else {
            continue;
        };
        if !m.class.is_library {
            continue;
        }
        // Collect NV-field writes in this function's body.
        let mut writes: Vec<(u32, &str, &str)> = Vec::new(); // (line, struct, field)
        for j in n.body.clone() {
            let Some(dot) = m.toks.get(j) else { continue };
            if !dot.is_punct('.') {
                continue;
            }
            let Some(field_tok) = m.toks.get(j + 1).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if !is_assign_op(&m.toks, j + 2) {
                continue;
            }
            let field = field_tok.text.as_str();
            let Some(owners) = nv_fields.get(field) else {
                continue;
            };
            let receiver_is_self = j
                .checked_sub(1)
                .and_then(|p| m.toks.get(p))
                .is_some_and(|t| t.is_ident("self"));
            let owner = if receiver_is_self {
                // `self.field = ...`: NV only when the enclosing impl
                // is an NV type that really has this field.
                n.self_ty.as_deref().filter(|ty| owners.contains(ty))
            } else if non_nv_fields.contains(field) {
                // Some volatile struct shares the name (e.g.
                // SoftwareRf::config): receiver type unknown, skip.
                None
            } else {
                owners.iter().next().copied()
            };
            if let Some(owner) = owner {
                writes.push((field_tok.line, owner, field));
            }
        }
        if writes.is_empty() {
            continue;
        }
        // The mutator is unsanctioned. It is a violation only if an
        // *undisciplined* entry point (a function with no workspace
        // callers) can reach it without passing through sanctioned
        // code.
        let back = graph.reach_backward(&[id], |c| !sanctioned(c));
        let root = (0..graph.nodes.len())
            .find(|&c| back.visited(c) && graph.callers.get(c).is_some_and(Vec::is_empty));
        let Some(root) = root else {
            continue; // every path to the mutator is commit-disciplined
        };
        let mut chain = graph.chain(&back, root);
        chain.reverse(); // reach_backward chains run mutator -> root
        for (line, owner, field) in writes {
            out.push(Violation {
                rule: "NF-NV-001",
                path: m.rel.clone(),
                line,
                message: format!(
                    "`{}` writes NV field `{owner}.{field}` outside the commit discipline",
                    n.display
                ),
                subject: field.to_string(),
                chain: chain.clone(),
            });
        }
    }
    out
}

//! A minimal Rust lexer for the lint pass.
//!
//! The build environment has no access to `syn`, so the lint engine
//! works on a token stream produced by this hand-rolled scanner. It
//! understands exactly as much Rust surface syntax as the rules need:
//! line and (nested) block comments, string / raw-string / byte-string
//! / char literals, lifetimes, raw identifiers and numbers — enough to
//! never mistake the *contents* of a comment or string for code, and to
//! attach a correct line number to every token.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `r#type`, ...).
    Ident,
    /// A numeric literal (value not interpreted).
    Number,
    /// A string, raw-string or byte-string literal (contents dropped).
    Str,
    /// A character or byte literal.
    Char,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// A single punctuation character (`.`, `[`, `!`, ...).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Token text. Full text for identifiers and single-character
    /// punctuation; empty for literals (their contents never matter to
    /// a rule).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` if this is punctuation `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }

    /// `true` if this is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` if this is a floating-point literal: a number with a
    /// fractional part (`0.6`), an exponent (`1e9` — hex/binary/octal
    /// literals are excluded so `0x1E` stays integral, and the `e`
    /// must introduce digits so `10usize` stays integral too), or an
    /// explicit `f32`/`f64` suffix.
    #[must_use]
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Number {
            return false;
        }
        let t = self.text.as_str();
        if t.starts_with("0x") || t.starts_with("0X") || t.starts_with("0b") || t.starts_with("0o")
        {
            return false;
        }
        let exponent = t
            .chars()
            .zip(t.chars().skip(1))
            .any(|(c, n)| (c == 'e' || c == 'E') && (n.is_ascii_digit() || n == '+' || n == '-'));
        t.contains('.') || exponent || t.ends_with("f32") || t.ends_with("f64")
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `source`, dropping comments and literal contents.
#[must_use]
pub fn tokenize(source: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('/') {
            skip_line_comment(&mut cur);
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            skip_block_comment(&mut cur);
            continue;
        }
        let line = cur.line;
        if is_ident_start(c) {
            lex_ident_or_prefixed_literal(&mut cur, line, &mut toks);
            continue;
        }
        if c.is_ascii_digit() {
            let text = lex_number(&mut cur);
            toks.push(Tok {
                kind: TokKind::Number,
                text,
                line,
            });
            continue;
        }
        if c == '"' {
            cur.bump();
            skip_string_body(&mut cur);
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            continue;
        }
        if c == '\'' {
            lex_quote(&mut cur, line, &mut toks);
            continue;
        }
        cur.bump();
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    toks
}

fn skip_line_comment(cur: &mut Cursor) {
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        cur.bump();
    }
}

fn skip_block_comment(cur: &mut Cursor) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

fn read_ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

/// Lexes something starting with an identifier character: a plain
/// identifier, a raw identifier (`r#type`), or a prefixed literal
/// (`r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`).
fn lex_ident_or_prefixed_literal(cur: &mut Cursor, line: u32, toks: &mut Vec<Tok>) {
    let ident = read_ident(cur);
    let is_raw_capable = ident == "r" || ident == "br" || ident == "b";
    match cur.peek() {
        Some('"') if is_raw_capable => {
            cur.bump();
            if ident == "b" {
                skip_string_body(cur);
            } else {
                skip_raw_string_body(cur, 0);
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
        }
        Some('#') if ident == "r" || ident == "br" => {
            // Raw string with hashes, or a raw identifier.
            let mut hashes = 0usize;
            while cur.peek_at(hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek_at(hashes) == Some('"') {
                for _ in 0..=hashes {
                    cur.bump();
                }
                skip_raw_string_body(cur, hashes);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            } else if ident == "r" && hashes == 1 {
                cur.bump(); // '#'
                let name = read_ident(cur);
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: name,
                    line,
                });
            } else {
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: ident,
                    line,
                });
            }
        }
        Some('\'') if ident == "b" => {
            cur.bump();
            skip_char_body(cur);
            toks.push(Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
            });
        }
        _ => {
            toks.push(Tok {
                kind: TokKind::Ident,
                text: ident,
                line,
            });
        }
    }
}

/// Lexes a numeric literal, returning its text — the float rules need
/// to tell `0.6`/`1e9`/`2f64` apart from integer literals.
fn lex_number(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else if c == '.' {
            // Consume the dot only for a fractional part — `0..n` must
            // leave the range dots alone.
            match cur.peek_at(1) {
                Some(d) if d.is_ascii_digit() => {
                    text.push(c);
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    text
}

/// Skips a (non-raw) string body; the opening quote is consumed.
fn skip_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Skips a raw string body closed by `"` plus `hashes` hash marks.
fn skip_raw_string_body(cur: &mut Cursor, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut matched = 0usize;
            while matched < hashes && cur.peek() == Some('#') {
                cur.bump();
                matched += 1;
            }
            if matched == hashes {
                break;
            }
        }
    }
}

/// Skips a char/byte-literal body; the opening quote is consumed.
fn skip_char_body(cur: &mut Cursor) {
    if cur.peek() == Some('\\') {
        cur.bump();
        cur.bump();
    } else {
        cur.bump();
    }
    // Tolerate multi-char escapes like \u{1F600}.
    while let Some(c) = cur.peek() {
        cur.bump();
        if c == '\'' {
            break;
        }
    }
}

/// Lexes after seeing `'`: a lifetime or a char literal.
fn lex_quote(cur: &mut Cursor, line: u32, toks: &mut Vec<Tok>) {
    cur.bump(); // the quote
    let next = cur.peek();
    let after = cur.peek_at(1);
    let is_lifetime = match (next, after) {
        (Some(c), Some('\'')) if is_ident_start(c) => false, // 'a'
        (Some(c), _) if is_ident_start(c) => true,           // 'a, 'static
        _ => false,
    };
    if is_lifetime {
        let name = read_ident(cur);
        toks.push(Tok {
            kind: TokKind::Lifetime,
            text: name,
            line,
        });
    } else {
        skip_char_body(cur);
        toks.push(Tok {
            kind: TokKind::Char,
            text: String::new(),
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_dropped() {
        let src = "a // HashMap in a comment\nb /* Instant */ c /* /* nested */ still */ d";
        assert_eq!(idents(src), ["a", "b", "c", "d"]);
    }

    #[test]
    fn string_contents_are_dropped() {
        let src = r#"let x = "unwrap() \" HashMap"; let y = r"Instant"; y"#;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "unwrap" || i == "HashMap" || i == "Instant"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let x = r#"has "quotes" and HashMap"#; done"###;
        assert_eq!(idents(src), ["let", "x", "done"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks = tokenize("0..10");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn number_text_distinguishes_float_literals() {
        let toks = tokenize("0.6 1e9 2f64 3f32 7 1_000 0x1E 0b10 0o17 10usize");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|t| t.is_float_literal())
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(floats, ["0.6", "1e9", "2f64", "3f32"]);
        assert!(toks
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .all(|t| !t.text.is_empty()));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("r#type r#match plain"), ["type", "match", "plain"]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = tokenize("let s = \"line\nline\nline\";\nafter");
        let after = toks.iter().find(|t| t.is_ident("after")).map(|t| t.line);
        assert_eq!(after, Some(4));
    }

    #[test]
    fn deeply_nested_block_comments_balance() {
        let src = "a /* 1 /* 2 /* 3 unwrap() */ 2 */ 1 */ b /* unbalanced tail";
        assert_eq!(idents(src), ["a", "b"], "depth counting, then EOF safety");
    }

    #[test]
    fn raw_strings_with_many_hashes_skip_lesser_terminators() {
        // A `"#` inside an `r##"..."##` body must not close it.
        let src = r####"let s = r##"tail "# keeps going HashMap"##; after"####;
        assert_eq!(idents(src), ["let", "s", "after"]);
    }

    #[test]
    fn byte_strings_and_byte_raw_strings_are_opaque() {
        let src = r###"let a = b"unwrap \" esc"; let c = br#"panic "quote""#; end"###;
        assert_eq!(idents(src), ["let", "a", "let", "c", "end"]);
        let strs = tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        assert_eq!(strs, 2, "both byte-string flavours lex as one Str");
    }

    #[test]
    fn byte_char_literals_lex_as_chars() {
        let toks = tokenize(r"let x = b'x'; let q = b'\''; let n = b'\n'; done");
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
        assert!(toks.iter().any(|t| t.is_ident("done")), "lexer resyncs");
        assert!(
            !toks.iter().any(|t| t.kind == TokKind::Lifetime),
            "byte chars are never mistaken for lifetimes"
        );
    }

    #[test]
    fn lifetimes_in_bounds_positions_are_not_chars() {
        let toks = tokenize("struct S<'a, 'b: 'a>(&'a str, &'b str); impl<'s> S<'s, 's> {}");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 8);
        assert_eq!(chars, 0);
    }
}

//! SARIF 2.1.0 rendering of a lint report.
//!
//! `cargo xtask lint --sarif` emits a minimal static-analysis results
//! interchange file: one run, one driver (`neofog-xtask`), the full
//! rule table under `tool.driver.rules`, and one `result` per
//! violation with its file/line location. Baseline-waived findings are
//! *included* with a `suppressions` entry (kind `external`, status
//! `accepted` — the SARIF 2.1.0 suppressed state) rather than
//! omitted, so the CI artifact shows the full picture: a viewer hides
//! them by default but an auditor can see exactly what the baseline
//! waives. Call chains from the graph rules are appended to the result
//! message, since the plain SARIF location model has no good slot for
//! them. CI uploads the file as a workflow artifact.
//!
//! Everything is hand-rolled JSON — the workspace builds offline with
//! no serde backend — via [`json_str`], which the other emitters in
//! this crate share.

use crate::engine::{LintReport, Violation};
use crate::rules;

/// Escapes `s` as a JSON string literal (with the surrounding
/// quotes).
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders `report` as a SARIF 2.1.0 document.
#[must_use]
pub fn render(report: &LintReport) -> String {
    let mut s = String::from(
        "{\"version\":\"2.1.0\",\
         \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{\"tool\":{\"driver\":{\"name\":\"neofog-xtask\",\
         \"informationUri\":\"https://github.com/neofog/neofog\",\"rules\":[",
    );
    for (i, r) in rules::RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&render_rule(r));
    }
    s.push_str("]}},\"results\":[");
    let mut first = true;
    for v in &report.violations {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&render_result(v, false));
    }
    for v in &report.suppressed {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&render_result(v, true));
    }
    s.push_str("]}]}");
    s
}

/// One `tool.driver.rules` entry. `shortDescription` is the one-line
/// summary, `fullDescription` the rationale, and `help` packages the
/// rationale together with the rule's scope so a SARIF viewer's
/// help pane answers both "why does this matter" and "where does it
/// apply" without the reader opening `rules.rs`.
fn render_rule(r: &rules::Rule) -> String {
    let help = format!(
        "{}\n\napplies to: {}",
        r.rationale,
        rules::scope_text(r.scope)
    );
    format!(
        "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
         \"fullDescription\":{{\"text\":{}}},\
         \"help\":{{\"text\":{}}}}}",
        json_str(r.id),
        json_str(r.summary),
        json_str(r.rationale),
        json_str(&help)
    )
}

/// One SARIF `result`. Baselined findings carry a `suppressions`
/// array marking them accepted externally (the baseline file) instead
/// of disappearing from the artifact.
fn render_result(v: &Violation, suppressed: bool) -> String {
    let mut text = v.message.clone();
    if v.chain.len() > 1 {
        text.push_str(" [call chain: ");
        text.push_str(&v.chain.join(" -> "));
        text.push(']');
    }
    let suppressions = if suppressed {
        ",\"suppressions\":[{\"kind\":\"external\",\"status\":\"accepted\",\
         \"justification\":\"waived by lint-baseline.json\"}]"
    } else {
        ""
    };
    format!(
        "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
         \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
         {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]{}}}",
        json_str(v.rule),
        json_str(&text),
        json_str(&v.path),
        v.line,
        suppressions
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Violation;

    #[test]
    fn sarif_document_has_rules_results_chains_and_suppressions() {
        let report = LintReport {
            files_checked: 1,
            violations: vec![Violation {
                rule: "NF-REACH-001",
                path: "crates/core/src/x.rs".to_string(),
                line: 7,
                message: "`core::f` indexes into a slice".to_string(),
                subject: String::new(),
                chain: vec!["core::entry".to_string(), "core::f".to_string()],
            }],
            baselined: 1,
            suppressed: vec![Violation {
                rule: "NF-ALLOC-001",
                path: "crates/core/src/sim/balance.rs".to_string(),
                line: 21,
                message: "`core::sim::balance::run` allocates".to_string(),
                subject: "collect".to_string(),
                chain: Vec::new(),
            }],
            warnings: Vec::new(),
            stats: Default::default(),
        };
        let doc = render(&report);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"name\":\"neofog-xtask\""));
        assert!(doc.contains("\"ruleId\":\"NF-REACH-001\""));
        assert!(doc.contains("\"startLine\":7"));
        assert!(doc.contains("core::entry -> core::f"));
        // The baselined finding appears, marked suppressed — not
        // silently dropped.
        assert!(doc.contains("\"ruleId\":\"NF-ALLOC-001\""));
        assert!(doc.contains("\"suppressions\":[{\"kind\":\"external\",\"status\":\"accepted\""));
        // The live finding carries no suppressions array.
        let live = doc.find("NF-REACH-001").and_then(|i| {
            doc.get(i..).map(|tail| {
                tail.split("},{")
                    .next()
                    .is_some_and(|r| !r.contains("suppressions"))
            })
        });
        assert_eq!(live, Some(true));
        // Every rule in the table is described.
        for r in rules::RULES {
            assert!(doc.contains(&format!("\"id\":\"{}\"", r.id)), "{}", r.id);
        }
    }

    #[test]
    fn rule_entry_snapshot_carries_description_and_help() {
        // Exact serialized form of one rule entry — a change to the
        // SARIF shape (or to this rule's wording) must be deliberate.
        let rule = rules::rule_by_id("NF-DET-001").expect("rule exists");
        let entry = render_rule(rule);
        assert_eq!(
            entry,
            "{\"id\":\"NF-DET-001\",\
             \"shortDescription\":{\"text\":\"wall-clock time source in simulation code\"},\
             \"fullDescription\":{\"text\":\"Instant/SystemTime make runs irreproducible; \
             simulated time advances only through slot arithmetic\"},\
             \"help\":{\"text\":\"Instant/SystemTime make runs irreproducible; simulated \
             time advances only through slot arithmetic\\n\\napplies to: sim crates \
             (core, energy, net, nvp, rf)\"}}"
        );
        // And every rule's help text names its scope.
        for r in rules::RULES {
            assert!(
                render_rule(r).contains("applies to:"),
                "{} help lacks scope",
                r.id
            );
        }
    }

    #[test]
    fn json_strings_escape_quotes_and_control_characters() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
        assert_eq!(json_str("a\u{1}b"), "\"a\\u0001b\"");
    }
}

//! The lint engine driver: file classification, the three-pass
//! pipeline, waiver bookkeeping and the baseline filter.
//!
//! Pass 1 builds a [`FileModel`] per classified file (token stream
//! with test spans stripped, plus the parsed item model) and runs the
//! per-file matchers; models are restored from the content-hash
//! [`ModelCache`] when one is supplied, so warm runs re-parse only
//! changed files. Pass 2 builds the workspace [`CallGraph`]. Pass 3
//! runs the transitive rules in [`crate::reach`] and
//! [`crate::dataflow`]. All raw findings then flow through one
//! suppression layer — inline `neofog-lint: allow(...)` directives,
//! then identifier allowlists, then file allowlists, then (workspace
//! runs only) the checked-in baseline — which records which waivers
//! actually fired so stale ones can be reported as warnings instead of
//! silently rotting.

use crate::baseline::{Baseline, BASELINE_FILE};
use crate::cache::ModelCache;
use crate::dataflow;
use crate::graph::CallGraph;
use crate::lexer::{tokenize, Tok, TokKind};
use crate::parser::{test_span_lines, FileModel};
use crate::reach;
use crate::rules::{
    self, Scope, BANNED_HASH_IDENTS, BANNED_PANIC_MACROS, BANNED_PANIC_METHODS, BANNED_RNG_IDENTS,
    BANNED_TIME_IDENTS, DIMENSIONED_MARKERS, DIMENSIONED_SUFFIXES, DIMENSIONLESS_MARKERS,
    LEDGER_METHODS,
};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Crates whose library code must be deterministic (rule scope
/// [`Scope::SimCrates`]).
const SIM_CRATES: &[&str] = &["core", "energy", "net", "nvp", "rf"];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule ID, e.g. `NF-DET-002`.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// What was found at the site.
    pub message: String,
    /// The identifier the finding is about (method/field/ident name),
    /// used by identifier-level allowlists; empty when not
    /// applicable.
    pub subject: String,
    /// For graph rules: the call chain (display names) from an entry
    /// point to the offending function. Empty for per-file rules.
    pub chain: Vec<String>,
}

/// How a file participates in the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name (`core`, `types`, ...; `neofog` for the
    /// root package).
    pub crate_name: String,
    /// Library code: panic-policy and unit rules apply.
    pub is_library: bool,
    /// Library code of a deterministic simulation crate.
    pub is_sim: bool,
}

/// Classifies a workspace-relative path. Returns `None` for files the
/// pass skips entirely (tests, benches, examples, fixtures, shims).
#[must_use]
pub fn classify(rel: &str) -> Option<FileClass> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return None;
    }
    let skip_fragments = [
        "/tests/",
        "/benches/",
        "/examples/",
        "/fixtures/",
        "/target/",
    ];
    if skip_fragments.iter().any(|f| rel.contains(f))
        || rel.starts_with("shims/")
        || rel.starts_with("target/")
    {
        return None;
    }
    let (crate_name, in_src) = if let Some(rest) = rel.strip_prefix("crates/") {
        let mut parts = rest.splitn(2, '/');
        let name = parts.next()?.to_string();
        let tail = parts.next()?;
        (name, tail.starts_with("src/"))
    } else if rel.starts_with("src/") {
        ("neofog".to_string(), true)
    } else {
        return None;
    };
    if !in_src {
        return None;
    }
    // Binaries (bench figure generators) are exempt from the library
    // panic policy and the determinism rules: they are allowed to
    // measure wall-clock time and to abort on setup errors.
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs");
    let is_library = !is_bin;
    let is_sim = is_library && SIM_CRATES.contains(&crate_name.as_str());
    Some(FileClass {
        crate_name,
        is_library,
        is_sim,
    })
}

/// One inline waiver: `// neofog-lint: allow(RULE)` covering its own
/// line and the line below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct InlineAllow {
    pub(crate) rule: String,
    pub(crate) line: u32,
    pub(crate) used: bool,
}

/// Parses `// neofog-lint: allow(ID[, ID]*)` directives, one entry
/// per (rule, directive line).
fn parse_allow_directives(source: &str) -> Vec<InlineAllow> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let Some(pos) = raw.find("neofog-lint:") else {
            continue;
        };
        let rest = &raw[pos + "neofog-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        for id in after[..close].split(',') {
            let id = id.trim();
            if id.is_empty() {
                continue;
            }
            out.push(InlineAllow {
                rule: id.to_string(),
                line: line_no,
                used: false,
            });
        }
    }
    out
}

/// True when `id` is shaped like a real rule id (`NF-PANIC-001`):
/// exactly three `-`-separated segments — `NF`, an uppercase family,
/// a numeric index.
fn has_rule_id_shape(id: &str) -> bool {
    let mut parts = id.split('-');
    let (a, b, c) = (parts.next(), parts.next(), parts.next());
    parts.next().is_none()
        && a == Some("NF")
        && b.is_some_and(|s| !s.is_empty() && s.chars().all(|ch| ch.is_ascii_uppercase()))
        && c.is_some_and(|s| !s.is_empty() && s.chars().all(|ch| ch.is_ascii_digit()))
}

/// Keywords that may legitimately precede a `[` starting an array
/// expression or type rather than an indexing operation.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

/// Matches a workspace-relative path against a glob pattern where `*`
/// stands for any run of characters except `/`. A pattern without `*`
/// degrades to exact equality, so plain paths keep their old meaning.
pub(crate) fn glob_matches(pattern: &str, path: &str) -> bool {
    fn segment_matches(pat: &str, seg: &str) -> bool {
        match pat.split_once('*') {
            None => pat == seg,
            Some((prefix, rest)) => {
                let Some(tail) = seg.strip_prefix(prefix) else {
                    return false;
                };
                // Greedy scan: try every split point for the `*`.
                (0..=tail.len())
                    .rev()
                    .filter(|&k| tail.is_char_boundary(k))
                    .any(|k| segment_matches(rest, &tail[k..]))
            }
        }
    }
    let mut pats = pattern.split('/');
    let mut segs = path.split('/');
    loop {
        match (pats.next(), segs.next()) {
            (None, None) => return true,
            (Some(p), Some(s)) => {
                if !segment_matches(p, s) {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

// --- shared site scanners ------------------------------------------------
//
// The per-file matchers scan a whole token stream; the graph rules in
// `crate::reach` scan one function body at a time. Both use these
// range-based helpers so the heuristics cannot drift apart.

/// `.unwrap()` / `.expect(` method-call sites in `range`.
pub(crate) fn panic_method_sites(toks: &[Tok], range: Range<usize>) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for i in range {
        let Some(tok) = toks.get(i) else { break };
        if tok.kind != TokKind::Ident || !BANNED_PANIC_METHODS.contains(&tok.text.as_str()) {
            continue;
        }
        let dotted = i > 0 && toks.get(i - 1).is_some_and(|t| t.is_punct('.'));
        let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if dotted && called {
            hits.push((tok.line, tok.text.clone()));
        }
    }
    hits
}

/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` sites in
/// `range`.
pub(crate) fn panic_macro_sites(toks: &[Tok], range: Range<usize>) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for i in range {
        let Some(tok) = toks.get(i) else { break };
        if tok.kind != TokKind::Ident || !BANNED_PANIC_MACROS.contains(&tok.text.as_str()) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            hits.push((tok.line, tok.text.clone()));
        }
    }
    hits
}

/// `expr[...]` indexing sites in `range` (heuristic: `[` directly
/// after an identifier, `)` or `]`).
pub(crate) fn indexing_sites(toks: &[Tok], range: Range<usize>) -> Vec<u32> {
    let mut hits = Vec::new();
    for i in range {
        if i == 0 {
            continue;
        }
        let Some(tok) = toks.get(i) else { break };
        if !tok.is_punct('[') {
            continue;
        }
        let Some(prev) = toks.get(i - 1) else {
            continue;
        };
        let indexes = match prev.kind {
            TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            _ => false,
        };
        if indexes {
            hits.push(tok.line);
        }
    }
    hits
}

/// Banned-determinism identifier sites in `range`:
/// `(rule, line, name, what)`.
pub(crate) fn det_ident_sites(
    toks: &[Tok],
    range: Range<usize>,
) -> Vec<(&'static str, u32, String, &'static str)> {
    let groups: [(&'static str, &[&str], &'static str); 3] = [
        ("NF-DET-001", BANNED_TIME_IDENTS, "wall-clock time source"),
        ("NF-DET-002", BANNED_HASH_IDENTS, "hash-ordered collection"),
        ("NF-DET-003", BANNED_RNG_IDENTS, "non-SimRng randomness"),
    ];
    let mut hits = Vec::new();
    for i in range {
        let Some(tok) = toks.get(i) else { break };
        if tok.kind != TokKind::Ident {
            continue;
        }
        for (rule, idents, what) in groups {
            if idents.contains(&tok.text.as_str()) {
                hits.push((rule, tok.line, tok.text.clone(), what));
            }
        }
    }
    hits
}

// --- per-file matchers ---------------------------------------------------

/// Is `rule_id` in scope for this file? (Allowlists are applied later,
/// in the suppression layer.)
fn rule_in_scope(rule_id: &str, model: &FileModel) -> bool {
    let Some(rule) = rules::rule_by_id(rule_id) else {
        return false;
    };
    match rule.scope {
        Scope::Library => model.class.is_library,
        Scope::SimCrates => model.class.is_sim,
        Scope::File(path) => model.rel == path,
        Scope::Glob(pattern) => glob_matches(pattern, &model.rel),
    }
}

fn push_violation(
    out: &mut Vec<Violation>,
    model: &FileModel,
    rule: &'static str,
    line: u32,
    subject: String,
    message: String,
) {
    out.push(Violation {
        rule,
        path: model.rel.clone(),
        line,
        message,
        subject,
        chain: Vec::new(),
    });
}

/// Runs every per-file rule over one model, emitting raw
/// (unsuppressed) violations.
fn per_file_rules(model: &FileModel) -> Vec<Violation> {
    let mut out = Vec::new();
    let all = 0..model.toks.len();
    for (rule, line, name, what) in det_ident_sites(&model.toks, all.clone()) {
        if rule_in_scope(rule, model) {
            let msg = format!("{what} `{name}`");
            push_violation(&mut out, model, rule, line, name, msg);
        }
    }
    if rule_in_scope("NF-PANIC-001", model) {
        for (line, name) in panic_method_sites(&model.toks, all.clone()) {
            let msg = format!("`.{name}()` can panic");
            push_violation(&mut out, model, "NF-PANIC-001", line, name, msg);
        }
    }
    if rule_in_scope("NF-PANIC-002", model) {
        for (line, name) in panic_macro_sites(&model.toks, all.clone()) {
            let msg = format!("`{name}!` aborts the simulation");
            push_violation(&mut out, model, "NF-PANIC-002", line, name, msg);
        }
    }
    if rule_in_scope("NF-PANIC-003", model) {
        for line in indexing_sites(&model.toks, all.clone()) {
            push_violation(
                &mut out,
                model,
                "NF-PANIC-003",
                line,
                String::new(),
                "slice indexing can panic; use get() or an iterator".to_string(),
            );
        }
    }
    check_units(model, &mut out);
    check_ledger(model, &mut out);
    out
}

fn is_dimensioned_name(name: &str) -> bool {
    let lower = name.to_lowercase();
    if DIMENSIONLESS_MARKERS.iter().any(|m| lower.contains(m)) {
        return false;
    }
    DIMENSIONED_MARKERS.iter().any(|m| lower.contains(m))
        || DIMENSIONED_SUFFIXES.iter().any(|s| lower.ends_with(s))
}

/// NF-UNIT-001: `name: f64` fields, parameters and consts whose name
/// carries a physical dimension. Local `let` bindings are exempt — the
/// typed-unit discipline bites at API boundaries.
fn check_units(model: &FileModel, out: &mut Vec<Violation>) {
    if !rule_in_scope("NF-UNIT-001", model) || model.rel == "crates/types/src/units.rs" {
        return;
    }
    let toks = &model.toks;
    for i in 0..toks.len() {
        let Some(name_tok) = toks.get(i) else { break };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        let colon = toks.get(i + 1).is_some_and(|t| t.is_punct(':'));
        let f64_type = toks.get(i + 2).is_some_and(|t| t.is_ident("f64"));
        let terminated = toks.get(i + 3).is_none_or(|t| {
            t.is_punct(',')
                || t.is_punct(')')
                || t.is_punct('}')
                || t.is_punct('=')
                || t.is_punct(';')
        });
        if !(colon && f64_type && terminated) {
            continue;
        }
        // `let [mut] name: f64` is a local binding — exempt.
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let prev2 = i.checked_sub(2).and_then(|p| toks.get(p));
        let is_local = prev.is_some_and(|t| t.is_ident("let"))
            || (prev.is_some_and(|t| t.is_ident("mut"))
                && prev2.is_some_and(|t| t.is_ident("let")));
        if is_local || !is_dimensioned_name(&name_tok.text) {
            continue;
        }
        let msg = format!(
            "`{}: f64` looks dimensioned; use the typed units in \
             neofog_types (Energy/Power/Duration)",
            name_tok.text
        );
        push_violation(
            out,
            model,
            "NF-UNIT-001",
            name_tok.line,
            name_tok.text.clone(),
            msg,
        );
    }
}

/// NF-LEDGER-001: energy-moving calls in the slot loop must book in the
/// `EnergyLedger` — an identifier `ledger` within two lines.
fn check_ledger(model: &FileModel, out: &mut Vec<Violation>) {
    if !rule_in_scope("NF-LEDGER-001", model) {
        return;
    }
    let toks = &model.toks;
    // Any identifier mentioning the ledger counts as a booking site:
    // `ledger`, `ledgers[i]`, `EnergyLedger::open`, ...
    let ledger_lines: BTreeSet<u32> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("ledger"))
        .map(|t| t.line)
        .collect();
    for i in 1..toks.len() {
        let Some(tok) = toks.get(i) else { break };
        if tok.kind != TokKind::Ident || !LEDGER_METHODS.contains(&tok.text.as_str()) {
            continue;
        }
        let dotted = toks.get(i - 1).is_some_and(|t| t.is_punct('.'));
        let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !(dotted && called) {
            continue;
        }
        let near_ledger = ledger_lines
            .range(tok.line.saturating_sub(2)..=tok.line + 2)
            .next()
            .is_some();
        if !near_ledger {
            let msg = format!(
                "`.{}()` moves energy without booking it in the ledger",
                tok.text
            );
            push_violation(out, model, "NF-LEDGER-001", tok.line, tok.text.clone(), msg);
        }
    }
}

// --- the three-pass driver -----------------------------------------------

/// Per-run statistics: cache behaviour and per-pass wall time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintStats {
    /// Files restored from the model cache without re-parsing.
    pub cache_hits: usize,
    /// Files lexed and parsed this run (every file, on a cold run).
    pub cache_misses: usize,
    /// Pass 1: model building (parse or cache restore) plus the
    /// per-file rules.
    pub pass1_ms: u64,
    /// Pass 2: call-graph construction.
    pub pass2_ms: u64,
    /// Pass 3: transitive rules (reachability + dataflow).
    pub pass3_ms: u64,
}

fn elapsed_ms(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Result of analysing a set of sources, before any baseline is
/// applied.
struct Analysis {
    files_checked: usize,
    violations: Vec<Violation>,
    warnings: Vec<String>,
    file_allow_used: Vec<bool>,
    ident_allow_used: Vec<bool>,
    stats: LintStats,
}

/// Runs all three passes and the waiver suppression layer over `files`
/// (pairs of workspace-relative path and source text). With a cache,
/// pass 1 restores unchanged files and records fresh parses for the
/// caller to persist.
fn analyze(files: &[(String, String)], mut cache: Option<&mut ModelCache>) -> Analysis {
    let mut stats = LintStats::default();
    // Pass 1: per-file models and per-file rules.
    let t1 = Instant::now();
    let mut models: Vec<FileModel> = Vec::new();
    let mut inline: Vec<Vec<InlineAllow>> = Vec::new();
    for (rel, source) in files {
        let Some(class) = classify(rel) else { continue };
        let hash = crate::cache::content_hash(source);
        let restored = cache.as_deref().and_then(|c| c.lookup(rel, hash));
        let (model, allows) = if let Some(hit) = restored {
            stats.cache_hits += 1;
            hit
        } else {
            stats.cache_misses += 1;
            let model = FileModel::build(rel, class, source);
            // Directives inside test items can neither waive (test
            // code is exempt) nor go stale — drop them before
            // bookkeeping. The line ranges come from the *unstripped*
            // token stream.
            let test_lines = test_span_lines(&tokenize(source));
            let mut allows = parse_allow_directives(source);
            allows.retain(|a| !test_lines.iter().any(|&(s, e)| a.line >= s && a.line <= e));
            if let Some(c) = cache.as_deref_mut() {
                c.insert(rel, hash, &model, &allows);
            }
            (model, allows)
        };
        models.push(model);
        inline.push(allows);
    }
    let mut raw: Vec<Violation> = Vec::new();
    for m in &models {
        raw.extend(per_file_rules(m));
    }
    stats.pass1_ms = elapsed_ms(t1);
    // Pass 2: the call graph, minus developer tooling crates.
    let t2 = Instant::now();
    let graph_models: Vec<FileModel> = models
        .iter()
        .filter(|m| !rules::TOOL_CRATES.contains(&m.class.crate_name.as_str()))
        .cloned()
        .collect();
    let graph = CallGraph::build(&graph_models);
    stats.pass2_ms = elapsed_ms(t2);
    // Pass 3: the transitive rules. These always run in full — one
    // edited file can change reachability anywhere.
    let t3 = Instant::now();
    raw.extend(reach::panic_reachability(&graph_models, &graph));
    raw.extend(reach::determinism_closure(&graph_models, &graph));
    raw.extend(reach::nv_write_discipline(&graph_models, &graph));
    raw.extend(dataflow::hot_path::alloc_reachability(
        &graph_models,
        &graph,
    ));
    raw.extend(dataflow::par::parallel_discipline(&graph_models, &graph));
    raw.extend(dataflow::shard::shard_discipline(&graph_models, &graph));
    raw.extend(dataflow::shard::float_discipline(&graph_models, &graph));
    stats.pass3_ms = elapsed_ms(t3);
    raw.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    // Suppression: inline directives, then identifier allowlist, then
    // file allowlist — marking each waiver that fires.
    let file_index: BTreeMap<&str, usize> = models
        .iter()
        .enumerate()
        .map(|(i, m)| (m.rel.as_str(), i))
        .collect();
    let mut file_allow_used = vec![false; rules::FILE_ALLOWS.len()];
    let mut ident_allow_used = vec![false; rules::IDENT_ALLOWS.len()];
    let mut kept = Vec::new();
    'violations: for v in raw {
        if let Some(&fi) = file_index.get(v.path.as_str()) {
            if let Some(allows) = inline.get_mut(fi) {
                for a in allows.iter_mut() {
                    if a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line) {
                        a.used = true;
                        continue 'violations;
                    }
                }
            }
        }
        for (ai, a) in rules::IDENT_ALLOWS.iter().enumerate() {
            if a.rule == v.rule && a.ident == v.subject {
                if let Some(slot) = ident_allow_used.get_mut(ai) {
                    *slot = true;
                }
                continue 'violations;
            }
        }
        for (ai, a) in rules::FILE_ALLOWS.iter().enumerate() {
            if a.rule == v.rule && glob_matches(a.path, &v.path) {
                if let Some(slot) = file_allow_used.get_mut(ai) {
                    *slot = true;
                }
                continue 'violations;
            }
        }
        kept.push(v);
    }
    // Stale inline directives: a waiver that fired on nothing.
    let mut warnings = Vec::new();
    for (m, allows) in models.iter().zip(&inline) {
        for a in allows {
            // Only audit ids with the real `NF-XXX-NNN` shape: prose
            // that *mentions* the directive syntax with a placeholder
            // id (`allow(...)`, `allow(NF-XXX-NNN)`) is documentation,
            // not a waiver.
            if !a.used && has_rule_id_shape(&a.rule) {
                warnings.push(format!(
                    "{}:{}: stale waiver: `neofog-lint: allow({})` matches no \
                     violation site — remove it or fix the rule id",
                    m.rel, a.line, a.rule
                ));
            }
        }
    }
    Analysis {
        files_checked: models.len(),
        violations: kept,
        warnings,
        file_allow_used,
        ident_allow_used,
        stats,
    }
}

/// Warnings for [`rules::FileAllow`] entries that waived nothing.
pub(crate) fn stale_file_allow_warnings(allows: &[rules::FileAllow], used: &[bool]) -> Vec<String> {
    allows
        .iter()
        .zip(used)
        .filter(|(_, &u)| !u)
        .map(|(a, _)| {
            format!(
                "stale waiver: rules.rs FILE_ALLOWS entry [{}] {} matches no \
                 violation site — remove it",
                a.rule, a.path
            )
        })
        .collect()
}

/// Warnings for [`rules::IdentAllow`] entries that waived nothing.
pub(crate) fn stale_ident_allow_warnings(
    allows: &[rules::IdentAllow],
    used: &[bool],
) -> Vec<String> {
    allows
        .iter()
        .zip(used)
        .filter(|(_, &u)| !u)
        .map(|(a, _)| {
            format!(
                "stale waiver: rules.rs IDENT_ALLOWS entry [{}] `{}` matches \
                 no violation site — remove it",
                a.rule, a.ident
            )
        })
        .collect()
}

/// Outcome of linting a file tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// Number of files that were classified and scanned.
    pub files_checked: usize,
    /// Non-waived, non-baselined diagnostics, ordered by path then
    /// line.
    pub violations: Vec<Violation>,
    /// Findings suppressed by the checked-in baseline
    /// (`suppressed.len()`).
    pub baselined: usize,
    /// The baseline-suppressed findings themselves, so SARIF output
    /// can report them with a `suppressions` entry instead of hiding
    /// them.
    pub suppressed: Vec<Violation>,
    /// Stale-waiver and stale-baseline warnings. Never fail the run,
    /// but the workspace self-test keeps them at zero.
    pub warnings: Vec<String>,
    /// Cache behaviour and per-pass timings for this run.
    pub stats: LintStats,
}

/// Lints a set of in-memory sources as one mini-workspace: all three
/// passes and the inline-waiver audit run; the model cache, the
/// `rules.rs` allowlist audit and the baseline do not (they are
/// meaningful only against the real tree).
#[must_use]
pub fn lint_sources(files: &[(&str, &str)]) -> LintReport {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| ((*rel).to_string(), (*src).to_string()))
        .collect();
    let analysis = analyze(&owned, None);
    LintReport {
        files_checked: analysis.files_checked,
        violations: analysis.violations,
        baselined: 0,
        suppressed: Vec::new(),
        warnings: analysis.warnings,
        stats: analysis.stats,
    }
}

/// Lints one file's source text. `rel_path` decides which rules apply;
/// unclassified paths produce no diagnostics. The graph rules see a
/// one-file workspace, so cross-file reachability needs
/// [`lint_sources`].
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Violation> {
    lint_sources(&[(rel_path, source)]).violations
}

/// Recursively collects `.rs` files under `dir` into `out` as paths
/// relative to `root`.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Options for a workspace lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Subtract the checked-in baseline (normal runs).
    pub apply_baseline: bool,
    /// When set, pass-1 models are restored from / persisted to this
    /// cache file (resolved against `root` if relative). `None` keeps
    /// the run hermetic — the test-suite default.
    pub cache_path: Option<PathBuf>,
    /// When set, reported findings (kept *and* suppressed) are
    /// restricted to these workspace-relative paths and the
    /// stale-waiver audit is skipped, since waivers for untouched
    /// files legitimately fire on nothing in a scoped run — the
    /// `--changed` mode. The analysis itself still covers the whole
    /// tree: transitive rules need every file.
    pub changed_paths: Option<Vec<String>>,
}

/// Lints the whole workspace rooted at `root` (`crates/*/src` plus the
/// root package's `src/`) according to `opts`.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading files,
/// or [`std::io::ErrorKind::InvalidData`] for a malformed baseline. A
/// cache that cannot be *written* degrades to a warning, not an error.
pub fn lint_workspace_with(root: &Path, opts: &LintOptions) -> std::io::Result<LintReport> {
    let mut rels = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(root, &dir, &mut rels)?;
        }
    }
    rels.sort();
    let mut files = Vec::new();
    for rel in rels {
        if classify(&rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, source));
    }
    let cache_file = opts.cache_path.as_ref().map(|p| root.join(p));
    let mut cache = cache_file.as_ref().map(|p| ModelCache::load(p));
    let analysis = analyze(&files, cache.as_mut());
    let mut warnings = analysis.warnings;
    if let (Some(c), Some(p)) = (&cache, &cache_file) {
        if let Err(e) = c.store(p) {
            warnings.push(format!("model cache not written to {}: {e}", p.display()));
        }
    }
    warnings.extend(stale_file_allow_warnings(
        rules::FILE_ALLOWS,
        &analysis.file_allow_used,
    ));
    warnings.extend(stale_ident_allow_warnings(
        rules::IDENT_ALLOWS,
        &analysis.ident_allow_used,
    ));
    let (mut violations, mut suppressed) = if opts.apply_baseline {
        let baseline = Baseline::load(&root.join(BASELINE_FILE))?;
        baseline.apply(analysis.violations, &mut warnings)
    } else {
        (analysis.violations, Vec::new())
    };
    if let Some(paths) = &opts.changed_paths {
        let touched = |v: &Violation| paths.iter().any(|p| p == &v.path);
        violations.retain(&touched);
        suppressed.retain(&touched);
        warnings.clear();
    }
    Ok(LintReport {
        files_checked: analysis.files_checked,
        violations,
        baselined: suppressed.len(),
        suppressed,
        warnings,
        stats: analysis.stats,
    })
}

/// Lints the workspace with the checked-in baseline applied and no
/// cache — the hermetic configuration the test suite uses.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading files,
/// or [`std::io::ErrorKind::InvalidData`] for a malformed baseline.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    lint_workspace_with(
        root,
        &LintOptions {
            apply_baseline: true,
            ..LintOptions::default()
        },
    )
}

/// Like [`lint_workspace`] but without subtracting the baseline —
/// the input for `cargo xtask lint --update-baseline`.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading files.
pub fn lint_workspace_unbaselined(root: &Path) -> std::io::Result<LintReport> {
    lint_workspace_with(root, &LintOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_matching_is_segment_wise() {
        assert!(glob_matches(
            "crates/core/src/sim/*.rs",
            "crates/core/src/sim/harvest.rs"
        ));
        assert!(glob_matches(
            "crates/core/src/sim/*.rs",
            "crates/core/src/sim/mod.rs"
        ));
        // `*` never crosses a `/`.
        assert!(!glob_matches(
            "crates/core/src/sim/*.rs",
            "crates/core/src/sim/deep/x.rs"
        ));
        // Fewer segments than the pattern is not a match either.
        assert!(!glob_matches(
            "crates/core/src/sim/*.rs",
            "crates/core/src/sim.rs"
        ));
        // Patterns without `*` are exact-path equality.
        assert!(glob_matches(
            "crates/core/src/fleet.rs",
            "crates/core/src/fleet.rs"
        ));
        assert!(!glob_matches(
            "crates/core/src/fleet.rs",
            "crates/core/src/fleet2.rs"
        ));
        // Multiple stars in one segment backtrack correctly.
        assert!(glob_matches(
            "crates/*/src/*_end.rs",
            "crates/core/src/slot_end.rs"
        ));
        assert!(!glob_matches(
            "crates/*/src/*_end.rs",
            "crates/core/src/slotend.rs"
        ));
    }

    #[test]
    fn classification_covers_the_layout() {
        assert!(classify("crates/core/src/sim/mod.rs").is_some_and(|c| c.is_sim));
        assert!(classify("crates/types/src/units.rs").is_some_and(|c| !c.is_sim));
        assert!(classify("crates/bench/src/bin/headline.rs").is_some_and(|c| !c.is_library));
        assert_eq!(classify("crates/core/tests/prop_balance.rs"), None);
        assert_eq!(classify("shims/proptest/src/lib.rs"), None);
        assert!(classify("src/lib.rs").is_some_and(|c| c.crate_name == "neofog"));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let v = lint_source("crates/types/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v.first().map(|v| v.line), Some(1));
    }

    #[test]
    fn inline_allow_waives_one_site() {
        let src = "// neofog-lint: allow(NF-PANIC-001) fixture\nfn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap(); }\n";
        let v = lint_source("crates/types/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v.first().map(|v| v.line), Some(3));
    }

    #[test]
    fn unused_inline_allow_is_reported_stale() {
        let clean = "// neofog-lint: allow(NF-PANIC-001) nothing here panics\nfn f() {}\n";
        let report = lint_sources(&[("crates/types/src/x.rs", clean)]);
        assert!(report.violations.is_empty());
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert!(
            report
                .warnings
                .first()
                .is_some_and(|w| w.contains("stale waiver") && w.contains("NF-PANIC-001")),
            "{:?}",
            report.warnings
        );
        // A used directive produces no warning.
        let used = "// neofog-lint: allow(NF-PANIC-001) fixture\nfn f() { x.unwrap(); }\n";
        let report = lint_sources(&[("crates/types/src/x.rs", used)]);
        assert!(report.violations.is_empty());
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn doc_mentions_and_test_code_directives_are_not_audited() {
        // Prose that shows the directive syntax with a placeholder id
        // is documentation, not a waiver.
        let doc = "/// Write `// neofog-lint: allow(NF-XXX-NNN)` to waive a site.\nfn f() {}\n";
        let report = lint_sources(&[("crates/types/src/x.rs", doc)]);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        // A directive inside a test item waives nothing (the code is
        // already exempt) and must not be flagged stale either.
        let test_code = "#[cfg(test)]\nmod tests {\n    \
             // neofog-lint: allow(NF-PANIC-001)\n    \
             fn f() { x.unwrap(); }\n}\n";
        let report = lint_sources(&[("crates/types/src/y.rs", test_code)]);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn allowlist_audits_flag_only_unused_entries() {
        let allows = [
            rules::FileAllow {
                rule: "NF-PANIC-003",
                path: "crates/a/src/x.rs",
                reason: "",
            },
            rules::FileAllow {
                rule: "NF-PANIC-003",
                path: "crates/b/src/y.rs",
                reason: "",
            },
        ];
        let warnings = stale_file_allow_warnings(&allows, &[true, false]);
        assert_eq!(warnings.len(), 1);
        assert!(warnings
            .first()
            .is_some_and(|w| w.contains("crates/b/src/y.rs")));

        let idents = [rules::IdentAllow {
            rule: "NF-UNIT-001",
            ident: "initial_charge",
            reason: "",
        }];
        assert!(stale_ident_allow_warnings(&idents, &[true]).is_empty());
        assert_eq!(stale_ident_allow_warnings(&idents, &[false]).len(), 1);
    }
}

//! The lint engine: file classification, test-code exemption, inline
//! allow directives, and one matcher per rule in [`crate::rules`].

use crate::lexer::{tokenize, Tok, TokKind};
use crate::rules::{
    self, Scope, BANNED_HASH_IDENTS, BANNED_PANIC_MACROS, BANNED_PANIC_METHODS, BANNED_RNG_IDENTS,
    BANNED_TIME_IDENTS, DIMENSIONED_MARKERS, DIMENSIONED_SUFFIXES, DIMENSIONLESS_MARKERS,
    LEDGER_METHODS,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Crates whose library code must be deterministic (rule scope
/// [`Scope::SimCrates`]).
const SIM_CRATES: &[&str] = &["core", "energy", "net", "nvp", "rf"];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule ID, e.g. `NF-DET-002`.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// What was found at the site.
    pub message: String,
}

/// How a file participates in the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name (`core`, `types`, ...; `neofog` for the
    /// root package).
    pub crate_name: String,
    /// Library code: panic-policy and unit rules apply.
    pub is_library: bool,
    /// Library code of a deterministic simulation crate.
    pub is_sim: bool,
}

/// Classifies a workspace-relative path. Returns `None` for files the
/// pass skips entirely (tests, benches, examples, fixtures, shims).
#[must_use]
pub fn classify(rel: &str) -> Option<FileClass> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return None;
    }
    let skip_fragments = [
        "/tests/",
        "/benches/",
        "/examples/",
        "/fixtures/",
        "/target/",
    ];
    if skip_fragments.iter().any(|f| rel.contains(f))
        || rel.starts_with("shims/")
        || rel.starts_with("target/")
    {
        return None;
    }
    let (crate_name, in_src) = if let Some(rest) = rel.strip_prefix("crates/") {
        let mut parts = rest.splitn(2, '/');
        let name = parts.next()?.to_string();
        let tail = parts.next()?;
        (name, tail.starts_with("src/"))
    } else if rel.starts_with("src/") {
        ("neofog".to_string(), true)
    } else {
        return None;
    };
    if !in_src {
        return None;
    }
    // Binaries (bench figure generators) are exempt from the library
    // panic policy and the determinism rules: they are allowed to
    // measure wall-clock time and to abort on setup errors.
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs");
    let is_library = !is_bin;
    let is_sim = is_library && SIM_CRATES.contains(&crate_name.as_str());
    Some(FileClass {
        crate_name,
        is_library,
        is_sim,
    })
}

/// Lines on which each rule is waived by an inline directive.
type AllowMap = BTreeMap<String, BTreeSet<u32>>;

/// Parses `// neofog-lint: allow(ID[, ID]*)` directives. A directive
/// waives the listed rules on its own line and the line below it.
fn parse_allow_directives(source: &str) -> AllowMap {
    let mut map: AllowMap = BTreeMap::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let Some(pos) = raw.find("neofog-lint:") else {
            continue;
        };
        let rest = &raw[pos + "neofog-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        for id in after[..close].split(',') {
            let id = id.trim();
            if id.is_empty() {
                continue;
            }
            let lines = map.entry(id.to_string()).or_default();
            lines.insert(line_no);
            lines.insert(line_no + 1);
        }
    }
    map
}

/// Strips tokens belonging to test code: any item annotated with an
/// attribute containing the identifier `test` (`#[test]`,
/// `#[cfg(test)] mod ...`, `#[cfg(all(test, ...))]`), including the
/// whole body of a `#[cfg(test)] mod`.
fn strip_test_spans(toks: &[Tok]) -> Vec<Tok> {
    let mut keep = vec![true; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks.get(i).is_some_and(|t| t.is_punct('#')) {
            i += 1;
            continue;
        }
        // Attribute: `#[...]` or `#![...]`.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut depth = 0i32;
        let mut is_test_attr = false;
        while let Some(t) = toks.get(j) {
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("test") {
                // `#[cfg(not(test))]` gates *non*-test code.
                let negated = j >= 2
                    && toks.get(j - 1).is_some_and(|p| p.is_punct('('))
                    && toks.get(j - 2).is_some_and(|p| p.is_ident("not"));
                if !negated {
                    is_test_attr = true;
                }
            }
            j += 1;
        }
        let attr_end = j; // index of the closing ']'
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = attr_end + 1;
        while toks.get(k).is_some_and(|t| t.is_punct('#')) {
            let mut d = 0i32;
            let mut m = k + 1;
            if toks.get(m).is_some_and(|t| t.is_punct('!')) {
                m += 1;
            }
            while let Some(t) = toks.get(m) {
                if t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
        }
        // Skip the annotated item: up to a `;` at depth 0, or the
        // matching `}` of its first depth-0 `{`.
        let mut brace = 0i32;
        let mut paren = 0i32;
        let mut end = k;
        while let Some(t) = toks.get(end) {
            if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            } else if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct(';') && brace == 0 && paren == 0 {
                break;
            }
            end += 1;
        }
        for flag in keep
            .iter_mut()
            .take((end + 1).min(toks.len()))
            .skip(attr_start)
        {
            *flag = false;
        }
        i = end + 1;
    }
    toks.iter()
        .zip(keep)
        .filter_map(|(t, k)| if k { Some(t.clone()) } else { None })
        .collect()
}

/// Keywords that may legitimately precede a `[` starting an array
/// expression or type rather than an indexing operation.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

struct FileCtx<'a> {
    rel: &'a str,
    class: FileClass,
    toks: Vec<Tok>,
    allows: AllowMap,
    out: Vec<Violation>,
}

/// Matches a workspace-relative path against a glob pattern where `*`
/// stands for any run of characters except `/`. A pattern without `*`
/// degrades to exact equality, so plain paths keep their old meaning.
pub(crate) fn glob_matches(pattern: &str, path: &str) -> bool {
    fn segment_matches(pat: &str, seg: &str) -> bool {
        match pat.split_once('*') {
            None => pat == seg,
            Some((prefix, rest)) => {
                let Some(tail) = seg.strip_prefix(prefix) else {
                    return false;
                };
                // Greedy scan: try every split point for the `*`.
                (0..=tail.len())
                    .rev()
                    .filter(|&k| tail.is_char_boundary(k))
                    .any(|k| segment_matches(rest, &tail[k..]))
            }
        }
    }
    let mut pats = pattern.split('/');
    let mut segs = path.split('/');
    loop {
        match (pats.next(), segs.next()) {
            (None, None) => return true,
            (Some(p), Some(s)) => {
                if !segment_matches(p, s) {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

impl FileCtx<'_> {
    fn rule_applies(&self, rule_id: &str) -> bool {
        let Some(rule) = rules::rule_by_id(rule_id) else {
            return false;
        };
        let in_scope = match rule.scope {
            Scope::Library => self.class.is_library,
            Scope::SimCrates => self.class.is_sim,
            Scope::File(path) => self.rel == path,
            Scope::Glob(pattern) => glob_matches(pattern, self.rel),
        };
        in_scope
            && !rules::FILE_ALLOWS
                .iter()
                .any(|a| a.rule == rule_id && glob_matches(a.path, self.rel))
    }

    fn push(&mut self, rule: &'static str, line: u32, message: String) {
        if self
            .allows
            .get(rule)
            .is_some_and(|lines| lines.contains(&line))
        {
            return;
        }
        self.out.push(Violation {
            rule,
            path: self.rel.to_string(),
            line,
            message,
        });
    }
}

/// Lints one file's source text. `rel_path` decides which rules apply;
/// unclassified paths produce no diagnostics.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let Some(class) = classify(rel_path) else {
        return Vec::new();
    };
    let toks = strip_test_spans(&tokenize(source));
    let mut ctx = FileCtx {
        rel: rel_path,
        class,
        toks,
        allows: parse_allow_directives(source),
        out: Vec::new(),
    };
    check_banned_idents(&mut ctx);
    check_panic_methods(&mut ctx);
    check_panic_macros(&mut ctx);
    check_indexing(&mut ctx);
    check_units(&mut ctx);
    check_ledger(&mut ctx);
    ctx.out.sort_by_key(|v| (v.line, v.rule));
    ctx.out
}

/// NF-DET-001/002/003: banned identifiers in simulation crates.
fn check_banned_idents(ctx: &mut FileCtx<'_>) {
    let groups: [(&'static str, &[&str], &str); 3] = [
        ("NF-DET-001", BANNED_TIME_IDENTS, "wall-clock time source"),
        ("NF-DET-002", BANNED_HASH_IDENTS, "hash-ordered collection"),
        ("NF-DET-003", BANNED_RNG_IDENTS, "non-SimRng randomness"),
    ];
    for (rule, idents, what) in groups {
        if !ctx.rule_applies(rule) {
            continue;
        }
        let hits: Vec<(u32, String)> = ctx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident && idents.contains(&t.text.as_str()))
            .map(|t| (t.line, t.text.clone()))
            .collect();
        for (line, name) in hits {
            ctx.push(rule, line, format!("{what} `{name}`"));
        }
    }
}

/// NF-PANIC-001: `.unwrap()` / `.expect(` method calls.
fn check_panic_methods(ctx: &mut FileCtx<'_>) {
    if !ctx.rule_applies("NF-PANIC-001") {
        return;
    }
    let mut hits = Vec::new();
    for i in 0..ctx.toks.len() {
        let Some(tok) = ctx.toks.get(i) else { break };
        if tok.kind != TokKind::Ident || !BANNED_PANIC_METHODS.contains(&tok.text.as_str()) {
            continue;
        }
        let dotted = i > 0 && ctx.toks.get(i - 1).is_some_and(|t| t.is_punct('.'));
        let called = ctx.toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if dotted && called {
            hits.push((tok.line, tok.text.clone()));
        }
    }
    for (line, name) in hits {
        ctx.push("NF-PANIC-001", line, format!("`.{name}()` can panic"));
    }
}

/// NF-PANIC-002: `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
fn check_panic_macros(ctx: &mut FileCtx<'_>) {
    if !ctx.rule_applies("NF-PANIC-002") {
        return;
    }
    let mut hits = Vec::new();
    for i in 0..ctx.toks.len() {
        let Some(tok) = ctx.toks.get(i) else { break };
        if tok.kind != TokKind::Ident || !BANNED_PANIC_MACROS.contains(&tok.text.as_str()) {
            continue;
        }
        if ctx.toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            hits.push((tok.line, tok.text.clone()));
        }
    }
    for (line, name) in hits {
        ctx.push(
            "NF-PANIC-002",
            line,
            format!("`{name}!` aborts the simulation"),
        );
    }
}

/// NF-PANIC-003: `expr[...]` indexing (heuristic: `[` directly after an
/// identifier, `)` or `]`).
fn check_indexing(ctx: &mut FileCtx<'_>) {
    if !ctx.rule_applies("NF-PANIC-003") {
        return;
    }
    let mut hits = Vec::new();
    for i in 1..ctx.toks.len() {
        let Some(tok) = ctx.toks.get(i) else { break };
        if !tok.is_punct('[') {
            continue;
        }
        let Some(prev) = ctx.toks.get(i - 1) else {
            continue;
        };
        let indexes = match prev.kind {
            TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            _ => false,
        };
        if indexes {
            hits.push(tok.line);
        }
    }
    for line in hits {
        ctx.push(
            "NF-PANIC-003",
            line,
            "slice indexing can panic; use get() or an iterator".to_string(),
        );
    }
}

fn is_dimensioned_name(name: &str) -> bool {
    let lower = name.to_lowercase();
    if DIMENSIONLESS_MARKERS.iter().any(|m| lower.contains(m)) {
        return false;
    }
    DIMENSIONED_MARKERS.iter().any(|m| lower.contains(m))
        || DIMENSIONED_SUFFIXES.iter().any(|s| lower.ends_with(s))
}

/// NF-UNIT-001: `name: f64` fields, parameters and consts whose name
/// carries a physical dimension. Local `let` bindings are exempt — the
/// typed-unit discipline bites at API boundaries.
fn check_units(ctx: &mut FileCtx<'_>) {
    if !ctx.rule_applies("NF-UNIT-001") || ctx.rel == "crates/types/src/units.rs" {
        return;
    }
    let mut hits = Vec::new();
    for i in 0..ctx.toks.len() {
        let Some(name_tok) = ctx.toks.get(i) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        let colon = ctx.toks.get(i + 1).is_some_and(|t| t.is_punct(':'));
        let f64_type = ctx.toks.get(i + 2).is_some_and(|t| t.is_ident("f64"));
        let terminated = ctx.toks.get(i + 3).is_none_or(|t| {
            t.is_punct(',')
                || t.is_punct(')')
                || t.is_punct('}')
                || t.is_punct('=')
                || t.is_punct(';')
        });
        if !(colon && f64_type && terminated) {
            continue;
        }
        // `let [mut] name: f64` is a local binding — exempt.
        let prev = i.checked_sub(1).and_then(|p| ctx.toks.get(p));
        let prev2 = i.checked_sub(2).and_then(|p| ctx.toks.get(p));
        let is_local = prev.is_some_and(|t| t.is_ident("let"))
            || (prev.is_some_and(|t| t.is_ident("mut"))
                && prev2.is_some_and(|t| t.is_ident("let")));
        if is_local {
            continue;
        }
        if rules::IDENT_ALLOWS
            .iter()
            .any(|a| a.rule == "NF-UNIT-001" && a.ident == name_tok.text)
        {
            continue;
        }
        if is_dimensioned_name(&name_tok.text) {
            hits.push((name_tok.line, name_tok.text.clone()));
        }
    }
    for (line, name) in hits {
        ctx.push(
            "NF-UNIT-001",
            line,
            format!(
                "`{name}: f64` looks dimensioned; use the typed units in \
                 neofog_types (Energy/Power/Duration)"
            ),
        );
    }
}

/// NF-LEDGER-001: energy-moving calls in the slot loop must book in the
/// `EnergyLedger` — an identifier `ledger` within two lines.
fn check_ledger(ctx: &mut FileCtx<'_>) {
    if !ctx.rule_applies("NF-LEDGER-001") {
        return;
    }
    // Any identifier mentioning the ledger counts as a booking site:
    // `ledger`, `ledgers[i]`, `EnergyLedger::open`, ...
    let ledger_lines: BTreeSet<u32> = ctx
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("ledger"))
        .map(|t| t.line)
        .collect();
    let mut hits = Vec::new();
    for i in 1..ctx.toks.len() {
        let Some(tok) = ctx.toks.get(i) else { break };
        if tok.kind != TokKind::Ident || !LEDGER_METHODS.contains(&tok.text.as_str()) {
            continue;
        }
        let dotted = ctx.toks.get(i - 1).is_some_and(|t| t.is_punct('.'));
        let called = ctx.toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !(dotted && called) {
            continue;
        }
        let near_ledger = ledger_lines
            .range(tok.line.saturating_sub(2)..=tok.line + 2)
            .next()
            .is_some();
        if !near_ledger {
            hits.push((tok.line, tok.text.clone()));
        }
    }
    for (line, name) in hits {
        ctx.push(
            "NF-LEDGER-001",
            line,
            format!("`.{name}()` moves energy without booking it in the ledger"),
        );
    }
}

/// Outcome of linting a file tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// Number of files that were classified and scanned.
    pub files_checked: usize,
    /// All diagnostics, ordered by path then line.
    pub violations: Vec<Violation>,
}

/// Recursively collects `.rs` files under `dir` into `out` as paths
/// relative to `root`.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root` (`crates/*/src` plus the
/// root package's `src/`).
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading files.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(root, &dir, &mut files)?;
        }
    }
    files.sort();
    let mut report = LintReport::default();
    for rel in &files {
        if classify(rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(root.join(rel))?;
        report.files_checked += 1;
        report.violations.extend(lint_source(rel, &source));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_matching_is_segment_wise() {
        assert!(glob_matches(
            "crates/core/src/sim/*.rs",
            "crates/core/src/sim/harvest.rs"
        ));
        assert!(glob_matches(
            "crates/core/src/sim/*.rs",
            "crates/core/src/sim/mod.rs"
        ));
        // `*` never crosses a `/`.
        assert!(!glob_matches(
            "crates/core/src/sim/*.rs",
            "crates/core/src/sim/deep/x.rs"
        ));
        // Fewer segments than the pattern is not a match either.
        assert!(!glob_matches(
            "crates/core/src/sim/*.rs",
            "crates/core/src/sim.rs"
        ));
        // Patterns without `*` are exact-path equality.
        assert!(glob_matches(
            "crates/core/src/fleet.rs",
            "crates/core/src/fleet.rs"
        ));
        assert!(!glob_matches(
            "crates/core/src/fleet.rs",
            "crates/core/src/fleet2.rs"
        ));
        // Multiple stars in one segment backtrack correctly.
        assert!(glob_matches(
            "crates/*/src/*_end.rs",
            "crates/core/src/slot_end.rs"
        ));
        assert!(!glob_matches(
            "crates/*/src/*_end.rs",
            "crates/core/src/slotend.rs"
        ));
    }

    #[test]
    fn classification_covers_the_layout() {
        assert!(classify("crates/core/src/sim/mod.rs").is_some_and(|c| c.is_sim));
        assert!(classify("crates/types/src/units.rs").is_some_and(|c| !c.is_sim));
        assert!(classify("crates/bench/src/bin/headline.rs").is_some_and(|c| !c.is_library));
        assert_eq!(classify("crates/core/tests/prop_balance.rs"), None);
        assert_eq!(classify("shims/proptest/src/lib.rs"), None);
        assert!(classify("src/lib.rs").is_some_and(|c| c.crate_name == "neofog"));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let v = lint_source("crates/types/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v.first().map(|v| v.line), Some(1));
    }

    #[test]
    fn inline_allow_waives_one_site() {
        let src = "// neofog-lint: allow(NF-PANIC-001) fixture\nfn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap(); }\n";
        let v = lint_source("crates/types/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v.first().map(|v| v.line), Some(3));
    }
}

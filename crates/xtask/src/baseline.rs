//! The checked-in violation baseline (`lint-baseline.json`).
//!
//! The graph rules (NF-REACH, NF-NV, NF-DET-004) inherit every
//! pre-existing finding the per-site waivers deliberately did not hide
//! — chiefly loop-bound indexing in numeric kernels that the slot loop
//! reaches. Those live in `lint-baseline.json` at the workspace root:
//! `cargo xtask lint` subtracts baselined findings (reporting how
//! many), fails on anything new, and warns when a baseline entry no
//! longer matches any finding so the file can only shrink honestly.
//! Regenerate with `cargo xtask lint --update-baseline` after fixing
//! sites (review the diff — the tool cannot tell a fix from a
//! regression elsewhere).
//!
//! Entries are keyed on `(rule, path, message)` with an occurrence
//! count; messages contain function display names but no line numbers,
//! so unrelated edits moving code up or down a file do not churn the
//! baseline.

use crate::engine::Violation;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Name of the baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// One aggregated baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    rule: String,
    path: String,
    message: String,
    count: u64,
}

/// A parsed baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: Vec<Entry>,
}

impl Baseline {
    /// Loads the baseline at `path`. A missing file is an empty
    /// baseline; a malformed one is an error.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files and
    /// [`io::ErrorKind::InvalidData`] for malformed JSON.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        if !path.is_file() {
            return Ok(Baseline::default());
        }
        let text = std::fs::read_to_string(path)?;
        parse(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Aggregates `violations` into a fresh baseline.
    #[must_use]
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), u64> = BTreeMap::new();
        for v in violations {
            *counts
                .entry((v.rule.to_string(), v.path.clone(), v.message.clone()))
                .or_insert(0) += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((rule, path, message), count)| Entry {
                    rule,
                    path,
                    message,
                    count,
                })
                .collect(),
        }
    }

    /// Number of findings the baseline waives in total.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Splits `violations` into the ones the baseline does not cover
    /// and the ones it waives — `(kept, suppressed)`. Suppressed
    /// findings are returned whole (not just counted) so SARIF output
    /// can report them with a `suppressions` entry instead of hiding
    /// them. Entries left with unmatched count append a stale-baseline
    /// warning.
    #[must_use]
    pub fn apply(
        &self,
        violations: Vec<Violation>,
        warnings: &mut Vec<String>,
    ) -> (Vec<Violation>, Vec<Violation>) {
        let mut remaining: BTreeMap<(String, String, String), u64> = self
            .entries
            .iter()
            .map(|e| ((e.rule.clone(), e.path.clone(), e.message.clone()), e.count))
            .collect();
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        for v in violations {
            let key = (v.rule.to_string(), v.path.clone(), v.message.clone());
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    suppressed.push(v);
                }
                _ => kept.push(v),
            }
        }
        for ((rule, path, message), n) in remaining {
            if n > 0 {
                warnings.push(format!(
                    "stale baseline entry: [{rule}] {path} — \"{message}\" \
                     waives {n} finding(s) that no longer occur; regenerate \
                     with `cargo xtask lint --update-baseline`"
                ));
            }
        }
        (kept, suppressed)
    }

    /// Renders the baseline as deterministic, diff-friendly JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"rule\": {}, ", crate::sarif::json_str(&e.rule)));
            s.push_str(&format!("\"path\": {}, ", crate::sarif::json_str(&e.path)));
            s.push_str(&format!(
                "\"message\": {}, ",
                crate::sarif::json_str(&e.message)
            ));
            s.push_str(&format!("\"count\": {}}}", e.count));
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

// --- minimal JSON reader -------------------------------------------------
//
// The workspace builds offline with no serde backend, so the baseline
// (and the model cache in `crate::cache`) is read by this purpose-built
// scanner: objects, arrays, strings with the escapes `render` emits,
// and unsigned integers. Anything else is a parse error — the files are
// machine-written.

pub(crate) struct Reader {
    chars: Vec<char>,
    pos: usize,
}

impl Reader {
    pub(crate) fn new(text: &str) -> Reader {
        Reader {
            chars: text.chars().collect(),
            pos: 0,
        }
    }

    pub(crate) fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    pub(crate) fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    pub(crate) fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.pos += 1;
        }
    }

    pub(crate) fn eat(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.pos))
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    pub(crate) fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at offset {start}"));
        }
        self.chars
            .get(start..self.pos)
            .map(|cs| cs.iter().collect::<String>())
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "number out of range".to_string())
    }
}

fn parse(text: &str) -> Result<Baseline, String> {
    let mut r = Reader::new(text);
    r.eat('{')?;
    let mut entries = Vec::new();
    loop {
        r.skip_ws();
        if r.peek() == Some('}') {
            r.bump();
            break;
        }
        let key = r.string()?;
        r.eat(':')?;
        match key.as_str() {
            "version" => {
                let v = r.number()?;
                if v != 1 {
                    return Err(format!("unsupported baseline version {v}"));
                }
            }
            "entries" => {
                r.eat('[')?;
                loop {
                    r.skip_ws();
                    if r.peek() == Some(']') {
                        r.bump();
                        break;
                    }
                    entries.push(parse_entry(&mut r)?);
                    r.skip_ws();
                    if r.peek() == Some(',') {
                        r.bump();
                    }
                }
            }
            other => return Err(format!("unknown key `{other}`")),
        }
        r.skip_ws();
        if r.peek() == Some(',') {
            r.bump();
        }
    }
    Ok(Baseline { entries })
}

fn parse_entry(r: &mut Reader) -> Result<Entry, String> {
    r.eat('{')?;
    let mut rule = None;
    let mut path = None;
    let mut message = None;
    let mut count = None;
    loop {
        r.skip_ws();
        if r.peek() == Some('}') {
            r.bump();
            break;
        }
        let key = r.string()?;
        r.eat(':')?;
        match key.as_str() {
            "rule" => rule = Some(r.string()?),
            "path" => path = Some(r.string()?),
            "message" => message = Some(r.string()?),
            "count" => count = Some(r.number()?),
            other => return Err(format!("unknown entry key `{other}`")),
        }
        r.skip_ws();
        if r.peek() == Some(',') {
            r.bump();
        }
    }
    match (rule, path, message, count) {
        (Some(rule), Some(path), Some(message), Some(count)) => Ok(Entry {
            rule,
            path,
            message,
            count,
        }),
        _ => Err("entry missing rule/path/message/count".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, message: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            message: message.to_string(),
            subject: String::new(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let vs = vec![
            v("NF-REACH-001", "crates/core/src/a.rs", "m \"one\""),
            v("NF-REACH-001", "crates/core/src/a.rs", "m \"one\""),
            v("NF-NV-001", "crates/nvp/src/b.rs", "m two"),
        ];
        let b = Baseline::from_violations(&vs);
        let parsed = parse(&b.render()).expect("round trip");
        assert_eq!(parsed.entries, b.entries);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn apply_suppresses_counts_and_flags_stale_leftovers() {
        let base = Baseline::from_violations(&[
            v("NF-REACH-001", "a.rs", "m"),
            v("NF-REACH-001", "a.rs", "m"),
            v("NF-NV-001", "b.rs", "gone"),
        ]);
        // One of the two `m` findings remains, `gone` was fixed, and a
        // brand-new finding appears.
        let current = vec![
            v("NF-REACH-001", "a.rs", "m"),
            v("NF-DET-004", "c.rs", "new"),
        ];
        let mut warnings = Vec::new();
        let (kept, suppressed) = base.apply(current, &mut warnings);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed.first().map(|v| v.rule), Some("NF-REACH-001"));
        assert_eq!(kept.len(), 1);
        assert_eq!(kept.first().map(|v| v.rule), Some("NF-DET-004"));
        // Two stale keys: the unmatched half of `m` and all of `gone`.
        assert_eq!(warnings.len(), 2, "{warnings:?}");
    }

    #[test]
    fn missing_file_is_an_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/lint-baseline.json")).expect("empty");
        assert_eq!(b.total(), 0);
    }
}

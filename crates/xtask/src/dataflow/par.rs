//! NF-PAR-001/002: parallelism discipline for the work-stealing
//! runner and the sharded slot kernel.
//!
//! Entry points are every function in the runner and slot-kernel
//! modules ([`rules::PAR_ENTRY_GLOBS`]) — `run_batch`, `worker_loop`,
//! `drain`, the per-phase `Sweep` impls, `drive`, and their helpers.
//! Because the call graph links `R::map(...)` and `reducer.fold(...)`
//! to *every* `Reduce` impl in the workspace ("assume reachable"),
//! the closure covers each reducer body too.
//! Two site families are scanned on the closure:
//!
//! * **NF-PAR-001** — interior mutability (`Mutex`, `RwLock`,
//!   `RefCell`, `Cell`, ...) and `static mut`: shared mutable state a
//!   worker could race on, or use to make `map` results depend on
//!   scheduling order.
//! * **NF-PAR-002** — unordered-iteration sources (`HashMap`,
//!   `HashSet`): iteration order varies run to run, so any fold over
//!   them breaks the parallel == serial golden guarantee the runner's
//!   tests pin.
//!
//! Atomics and channels are *not* flagged: the pool's own
//! `AtomicUsize` job cursor and mpsc result channel are the sanctioned
//! coordination mechanism, and determinism is restored by `drain`
//! folding results in ascending job order.

use crate::engine::{glob_matches, Violation};
use crate::graph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::parser::FileModel;
use crate::rules;
use std::ops::Range;

/// Interior-mutability sites in `range`: `(line, name)`. Matches any
/// mention of the banned types (construction, annotation, or
/// qualified call — a type that never appears cannot be raced on) and
/// `static mut` declarations.
pub(crate) fn interior_mut_sites(toks: &[Tok], range: Range<usize>) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for i in range {
        let Some(tok) = toks.get(i) else { break };
        if tok.kind != TokKind::Ident {
            continue;
        }
        if rules::PAR_INTERIOR_MUT_IDENTS.contains(&tok.text.as_str()) {
            hits.push((tok.line, tok.text.clone()));
        } else if tok.text == "static" && toks.get(i + 1).is_some_and(|t| t.is_ident("mut")) {
            hits.push((tok.line, "static mut".to_string()));
        }
    }
    hits
}

/// Unordered-collection sites in `range`: `(line, name)`.
pub(crate) fn unordered_sites(toks: &[Tok], range: Range<usize>) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for i in range {
        let Some(tok) = toks.get(i) else { break };
        if tok.kind == TokKind::Ident && rules::BANNED_HASH_IDENTS.contains(&tok.text.as_str()) {
            hits.push((tok.line, tok.text.clone()));
        }
    }
    hits
}

/// NF-PAR-001/002: racy or order-sensitive constructs transitively
/// reachable from the parallel runner.
pub(crate) fn parallel_discipline(models: &[FileModel], graph: &CallGraph) -> Vec<Violation> {
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(id, n)| {
            let rel = models.get(n.file).map(|m| m.rel.as_str())?;
            rules::PAR_ENTRY_GLOBS
                .iter()
                .any(|g| glob_matches(g, rel))
                .then_some(id)
        })
        .collect();
    let reach = graph.reach_forward(&entries);
    let mut out = Vec::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if !reach.visited(id) {
            continue;
        }
        let Some(m) = models.get(n.file) else {
            continue;
        };
        if !m.class.is_library {
            continue;
        }
        let chain = graph.chain(&reach, id);
        for (line, name) in interior_mut_sites(&m.toks, n.body.clone()) {
            out.push(Violation {
                rule: "NF-PAR-001",
                path: m.rel.clone(),
                line,
                message: format!(
                    "`{}` uses interior mutability `{name}` and is reachable from the parallel runner",
                    n.display
                ),
                subject: name,
                chain: chain.clone(),
            });
        }
        for (line, name) in unordered_sites(&m.toks, n.body.clone()) {
            out.push(Violation {
                rule: "NF-PAR-002",
                path: m.rel.clone(),
                line,
                message: format!(
                    "`{}` uses unordered `{name}` and is reachable from the parallel runner",
                    n.display
                ),
                subject: name,
                chain: chain.clone(),
            });
        }
    }
    out
}

//! NF-ALLOC-001/002: heap allocation reachable from the slot loop.
//!
//! Entry points are the six per-slot phase modules
//! ([`rules::ALLOC_ENTRY_FILES`]) — deliberately not `sim/mod.rs` or
//! `sim/ctx.rs`, whose constructors perform the sanctioned warm-up
//! allocations the counting-allocator test also skips. From those
//! entries the workspace call graph is walked forward and every
//! function reached is scanned for two site families:
//!
//! * **NF-ALLOC-001** — allocating construction: `Box::new`,
//!   `Arc::new`, `Vec::with_capacity`, the `vec!`/`format!` macros,
//!   and the allocating adapters `.collect()`, `.to_vec()`,
//!   `.to_owned()`, `.to_string()`, `.clone()`.
//! * **NF-ALLOC-002** — in-place container growth that may
//!   reallocate: `.push()`, `.extend()`, `.insert()`, `.resize()`,
//!   `.reserve()` and friends.
//!
//! The lexer cannot see receiver types, so `.clone()` on a `Copy`
//! struct or a `.push()` into a pre-reserved scratch vector are
//! matched too; those sites carry audited waivers (inline or in the
//! baseline) rather than being silently skipped — the point is that a
//! reviewer sees the complete allocation surface of the hot path.

use crate::engine::Violation;
use crate::graph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::parser::FileModel;
use crate::rules;
use std::ops::Range;

/// `Type::ctor(...)` allocating-constructor sites in `range`:
/// `(line, "Type::ctor")`.
pub(crate) fn alloc_ctor_sites(toks: &[Tok], range: Range<usize>) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for i in range {
        let Some(ty) = toks.get(i) else { break };
        if ty.kind != TokKind::Ident || !rules::ALLOC_CTOR_TYPES.contains(&ty.text.as_str()) {
            continue;
        }
        let pathsep = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'));
        if !pathsep {
            continue;
        }
        let Some(ctor) = toks.get(i + 3).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if !rules::ALLOC_CTOR_FNS.contains(&ctor.text.as_str()) {
            continue;
        }
        // `Type::ctor(` or the turbofish `Type::ctor::<T>(`.
        let mut call_at = i + 4;
        if toks.get(i + 4).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 6).is_some_and(|t| t.is_punct('<'))
        {
            call_at = crate::parser::skip_angles(toks, i + 6);
        }
        if toks.get(call_at).is_some_and(|t| t.is_punct('(')) {
            hits.push((ty.line, format!("{}::{}", ty.text, ctor.text)));
        }
    }
    hits
}

/// `vec!` / `format!` macro sites in `range`: `(line, name)`.
pub(crate) fn alloc_macro_sites(toks: &[Tok], range: Range<usize>) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for i in range {
        let Some(tok) = toks.get(i) else { break };
        if tok.kind != TokKind::Ident || !rules::ALLOC_MACROS.contains(&tok.text.as_str()) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            hits.push((tok.line, tok.text.clone()));
        }
    }
    hits
}

/// Dotted method-call sites of `names` in `range`: `(line, name)`.
/// Shared by the adapter (001) and growth (002) scans.
pub(crate) fn dotted_method_sites(
    toks: &[Tok],
    range: Range<usize>,
    names: &[&str],
) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for i in range {
        if i == 0 {
            continue;
        }
        let Some(tok) = toks.get(i) else { break };
        if tok.kind != TokKind::Ident || !names.contains(&tok.text.as_str()) {
            continue;
        }
        let dotted = toks.get(i - 1).is_some_and(|t| t.is_punct('.'));
        // `.collect::<Vec<_>>(` — hop the turbofish to find the paren.
        let mut call_at = i + 1;
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
        {
            call_at = crate::parser::skip_angles(toks, i + 3);
        }
        if dotted && toks.get(call_at).is_some_and(|t| t.is_punct('(')) {
            hits.push((tok.line, tok.text.clone()));
        }
    }
    hits
}

/// NF-ALLOC-001/002: allocation sites transitively reachable from the
/// slot loop's phase functions.
pub(crate) fn alloc_reachability(models: &[FileModel], graph: &CallGraph) -> Vec<Violation> {
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(id, n)| {
            let rel = models.get(n.file).map(|m| m.rel.as_str())?;
            rules::ALLOC_ENTRY_FILES.contains(&rel).then_some(id)
        })
        .collect();
    let reach = graph.reach_forward(&entries);
    let mut out = Vec::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if !reach.visited(id) {
            continue;
        }
        let Some(m) = models.get(n.file) else {
            continue;
        };
        if !m.class.is_library {
            continue;
        }
        let chain = graph.chain(&reach, id);
        let mut push = |rule: &'static str, line: u32, what: String, subject: String| {
            out.push(Violation {
                rule,
                path: m.rel.clone(),
                line,
                message: format!("`{}` {what} and is reachable from the slot loop", n.display),
                subject,
                chain: chain.clone(),
            });
        };
        for (line, site) in alloc_ctor_sites(&m.toks, n.body.clone()) {
            let what = format!("allocates via `{site}`");
            push("NF-ALLOC-001", line, what, site);
        }
        for (line, name) in alloc_macro_sites(&m.toks, n.body.clone()) {
            let what = format!("allocates via `{name}!`");
            push("NF-ALLOC-001", line, what, name);
        }
        for (line, name) in
            dotted_method_sites(&m.toks, n.body.clone(), rules::ALLOC_ADAPTER_METHODS)
        {
            let what = format!("allocates via `.{name}()`");
            push("NF-ALLOC-001", line, what, name);
        }
        for (line, name) in
            dotted_method_sites(&m.toks, n.body.clone(), rules::ALLOC_GROWTH_METHODS)
        {
            let what = format!("grows a container via `.{name}()`");
            push("NF-ALLOC-002", line, what, name);
        }
    }
    out
}

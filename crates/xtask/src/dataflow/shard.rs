//! NF-SHARD-001/002 and NF-FLOAT-001/002: shard discipline and
//! cross-thread float determinism for the sharded slot kernel.
//!
//! The kernel's determinism contract (DESIGN.md §17) has two halves,
//! and each rule pair guards one of them statically:
//!
//! * **Shard isolation** — a sweep body sees one position-aligned
//!   `ColumnsShard` split slice and emits into its own
//!   `ShardScratch::events` buffer; `drive()` splices buffers in
//!   ascending shard order so parallel emission order equals serial
//!   order. NF-SHARD-001 flags any sweep-reachable function whose
//!   signature or body names full-fleet state (`NodeColumns`,
//!   `NodeCold`, `SlotCtx`, ...) — a global-index escape hatch that
//!   aliases rows another thread owns. NF-SHARD-002 flags direct
//!   `.emit(..)`/`.on_event(..)` dispatch (or naming `EventBus` /
//!   `Observers`) downstream of a sweep — events published in thread
//!   completion order instead of splice order.
//!
//! * **Integer cross-shard reductions** — float addition is not
//!   associative, so any f64 accumulation whose grouping depends on
//!   shard count breaks bit-identity between thread counts.
//!   NF-FLOAT-001 flags compound assignment and `sum()`/`fold()`/
//!   `product()` sites with float evidence in the enclosing statement;
//!   NF-FLOAT-002 flags float comparisons, which amplify a 1-ulp
//!   wobble into a control-flow divergence. Entry roots are the sweep
//!   bodies plus every function of the shard driver, the fork-join
//!   layer and the transmit module (owner of the cross-shard
//!   suffix-sum/carry pass); sites are only *reported* in the
//!   kernel/coordinator files ([`rules::FLOAT_SITE_GLOBS`]) — the one
//!   layer that iterates shards, and therefore the only place a
//!   cross-shard reduction can live. Node-local float math behind a
//!   `NodeView` is waived in the baseline with per-site rationale.
//!
//! Entry selection is *function-shaped*, not file-shaped: only
//! functions named `sweep`/`*_sweep` in [`rules::SHARD_ENTRY_FILES`]
//! root the NF-SHARD closure, because the same files also contain the
//! sanctioned coordinators (`drive`, `splice`, `ColumnsShard::full`)
//! that legitimately hold the whole fleet — and no sweep can call back
//! into them. Like [`crate::reach`], messages omit line numbers (the
//! baseline stays stable as code drifts) and carry the witness call
//! chain in [`crate::engine::Violation::chain`].

use crate::engine::{glob_matches, Violation};
use crate::graph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::parser::FileModel;
use crate::rules;
use std::collections::BTreeSet;
use std::ops::Range;

/// Node ids of sweep-shaped functions in the shard entry files.
fn sweep_entries(models: &[FileModel], graph: &CallGraph) -> Vec<usize> {
    graph
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(id, n)| {
            let rel = models.get(n.file).map(|m| m.rel.as_str())?;
            (rules::SHARD_ENTRY_FILES.contains(&rel) && rules::is_sweep_name(&n.name)).then_some(id)
        })
        .collect()
}

/// NF-SHARD-001/002: full-fleet state or direct observer dispatch
/// transitively reachable from a shard sweep.
pub(crate) fn shard_discipline(models: &[FileModel], graph: &CallGraph) -> Vec<Violation> {
    let reach = graph.reach_forward(&sweep_entries(models, graph));
    let mut out = Vec::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if !reach.visited(id) {
            continue;
        }
        let Some(m) = models.get(n.file) else {
            continue;
        };
        if !m.class.is_library {
            continue;
        }
        let chain = graph.chain(&reach, id);
        // Banned type names anywhere in the signature or body: a type
        // that is never named cannot be indexed into. The signature
        // matters as much as the body — `fn helper(cols: &mut
        // NodeColumns, ..)` is the classic escape hatch.
        for range in [n.sig.clone(), n.body.clone()] {
            for i in range {
                let Some(tok) = m.toks.get(i) else { break };
                if tok.kind != TokKind::Ident {
                    continue;
                }
                if rules::SHARD_GLOBAL_STATE_IDENTS.contains(&tok.text.as_str()) {
                    out.push(Violation {
                        rule: "NF-SHARD-001",
                        path: m.rel.clone(),
                        line: tok.line,
                        message: format!(
                            "`{}` names full-fleet state `{}` and is reachable from a shard sweep",
                            n.display, tok.text
                        ),
                        subject: tok.text.clone(),
                        chain: chain.clone(),
                    });
                } else if rules::SHARD_BUS_IDENTS.contains(&tok.text.as_str()) {
                    out.push(Violation {
                        rule: "NF-SHARD-002",
                        path: m.rel.clone(),
                        line: tok.line,
                        message: format!(
                            "`{}` names the event bus `{}` and is reachable from a shard sweep",
                            n.display, tok.text
                        ),
                        subject: tok.text.clone(),
                        chain: chain.clone(),
                    });
                }
            }
        }
        // Dotted `.emit(` / `.on_event(` dispatch in the body. The
        // sweep's own `emit(ev)` closure parameter is a bare call and
        // never matches — that is the sanctioned scratch-buffer path.
        for i in n.body.clone() {
            let Some(tok) = m.toks.get(i) else { break };
            if tok.kind != TokKind::Ident || !rules::SHARD_EMIT_METHODS.contains(&tok.text.as_str())
            {
                continue;
            }
            let dotted = i
                .checked_sub(1)
                .and_then(|p| m.toks.get(p))
                .is_some_and(|p| p.is_punct('.'));
            let called = m.toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            if dotted && called {
                out.push(Violation {
                    rule: "NF-SHARD-002",
                    path: m.rel.clone(),
                    line: tok.line,
                    message: format!(
                        "`{}` dispatches `.{}()` directly, bypassing the shard event splice",
                        n.display, tok.text
                    ),
                    subject: tok.text.clone(),
                    chain: chain.clone(),
                });
            }
        }
    }
    out
}

/// Statement bounds around token `k`, clamped to `range`: the token
/// span between the nearest `;`/`{`/`}` on each side. Coarse but
/// sufficient — float *evidence* (a float literal or an `f64`/`f32`
/// identifier) only counts when it shares a statement with the
/// flagged operator.
fn stmt_bounds(toks: &[Tok], k: usize, range: &Range<usize>) -> Range<usize> {
    let boundary = |t: &Tok| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
    let mut lo = k;
    while lo > range.start {
        if toks.get(lo - 1).is_some_and(boundary) {
            break;
        }
        lo -= 1;
    }
    let mut hi = k + 1;
    while hi < range.end {
        if toks.get(hi).is_some_and(boundary) {
            break;
        }
        hi += 1;
    }
    lo..hi
}

/// `true` when `stmt` contains a float literal or a float type name.
fn has_float_evidence(toks: &[Tok], stmt: Range<usize>) -> bool {
    stmt.filter_map(|i| toks.get(i)).any(|t| {
        t.is_float_literal()
            || (t.kind == TokKind::Ident && rules::FLOAT_TYPE_IDENTS.contains(&t.text.as_str()))
    })
}

/// Float accumulation sites in `range`: `(line, op)`. Compound
/// assignment (`+=`, `-=`, `*=`, `/=`, `%=`) and the iterator
/// reductions of [`rules::FLOAT_FOLD_METHODS`], each gated on float
/// evidence within the enclosing statement. Plain `=` is a
/// *derivation* (overwrite), not an accumulation, and stays allowed.
fn float_accum_sites(toks: &[Tok], range: Range<usize>) -> Vec<(u32, String)> {
    let mut hits: BTreeSet<(u32, String)> = BTreeSet::new();
    for i in range.clone() {
        let Some(tok) = toks.get(i) else { break };
        let compound = ['+', '-', '*', '/', '%']
            .iter()
            .find(|&&c| tok.is_punct(c))
            .filter(|_| toks.get(i + 1).is_some_and(|t| t.is_punct('=')));
        if let Some(&c) = compound {
            if has_float_evidence(toks, stmt_bounds(toks, i, &range)) {
                hits.insert((tok.line, format!("{c}=")));
            }
            continue;
        }
        if tok.kind == TokKind::Ident
            && rules::FLOAT_FOLD_METHODS.contains(&tok.text.as_str())
            && i.checked_sub(1)
                .and_then(|p| toks.get(p))
                .is_some_and(|p| p.is_punct('.'))
            && toks.get(i + 1).is_some_and(|t| {
                // Plain `.sum()` / turbofish `.sum::<f64>()`.
                t.is_punct('(') || t.is_punct(':')
            })
            && has_float_evidence(toks, stmt_bounds(toks, i, &range))
        {
            hits.insert((tok.line, format!("{}()", tok.text)));
        }
    }
    hits.into_iter().collect()
}

/// Float comparison sites in `range`: `(line, op)`. Token-shape
/// exclusions keep generics, shifts, arrows and turbofish out:
/// `<` after `:` or an uppercase-led identifier is a type argument
/// list, adjacent `<<`/`>>` are shifts, `->`/`=>` are arrows.
fn float_cmp_sites(toks: &[Tok], range: Range<usize>) -> Vec<(u32, String)> {
    let mut hits: BTreeSet<(u32, String)> = BTreeSet::new();
    for i in range.clone() {
        let Some(tok) = toks.get(i) else { break };
        if tok.kind != TokKind::Punct {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(i + 1);
        let next_eq = next.is_some_and(|t| t.is_punct('='));
        let op: Option<String> = if tok.is_punct('!') && next_eq {
            Some("!=".into())
        } else if tok.is_punct('=') && next_eq {
            // `==`, unless this is the second char of !=/<=/>=/==.
            (!prev.is_some_and(|p| {
                p.is_punct('!') || p.is_punct('<') || p.is_punct('>') || p.is_punct('=')
            }))
            .then(|| "==".into())
        } else if tok.is_punct('<') {
            let shift =
                prev.is_some_and(|p| p.is_punct('<')) || next.is_some_and(|t| t.is_punct('<'));
            let generic = prev.is_some_and(|p| {
                p.is_punct(':')
                    || (p.kind == TokKind::Ident
                        && p.text.starts_with(|c: char| c.is_ascii_uppercase()))
            }) || next.is_some_and(|t| t.kind == TokKind::Lifetime);
            (!shift && !generic).then(|| if next_eq { "<=".into() } else { "<".into() })
        } else if tok.is_punct('>') {
            let shift =
                prev.is_some_and(|p| p.is_punct('>')) || next.is_some_and(|t| t.is_punct('>'));
            let arrow = prev.is_some_and(|p| p.is_punct('-') || p.is_punct('='));
            let generic_close = prev.is_some_and(|p| p.kind == TokKind::Lifetime);
            (!shift && !arrow && !generic_close).then(|| {
                if next_eq {
                    ">=".into()
                } else {
                    ">".into()
                }
            })
        } else {
            None
        };
        if let Some(op) = op {
            if has_float_evidence(toks, stmt_bounds(toks, i, &range)) {
                hits.insert((tok.line, op));
            }
        }
    }
    hits.into_iter().collect()
}

/// NF-FLOAT-001/002: float accumulation or comparison transitively
/// reachable from the parallel drive path or the transmit carry pass.
pub(crate) fn float_discipline(models: &[FileModel], graph: &CallGraph) -> Vec<Violation> {
    let mut entries = sweep_entries(models, graph);
    for (id, n) in graph.nodes.iter().enumerate() {
        let Some(rel) = models.get(n.file).map(|m| m.rel.as_str()) else {
            continue;
        };
        if rules::FLOAT_ENTRY_FILES.contains(&rel) {
            entries.push(id);
        }
    }
    let reach = graph.reach_forward(&entries);
    let mut out = Vec::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if !reach.visited(id) {
            continue;
        }
        let Some(m) = models.get(n.file) else {
            continue;
        };
        if !m.class.is_library
            || !rules::FLOAT_SITE_GLOBS
                .iter()
                .any(|g| glob_matches(g, &m.rel))
        {
            continue;
        }
        let chain = graph.chain(&reach, id);
        for (line, op) in float_accum_sites(&m.toks, n.body.clone()) {
            out.push(Violation {
                rule: "NF-FLOAT-001",
                path: m.rel.clone(),
                line,
                message: format!(
                    "`{}` accumulates floating-point values (`{op}`) on the sharded drive path",
                    n.display
                ),
                subject: op,
                chain: chain.clone(),
            });
        }
        for (line, op) in float_cmp_sites(&m.toks, n.body.clone()) {
            out.push(Violation {
                rule: "NF-FLOAT-002",
                path: m.rel.clone(),
                line,
                message: format!(
                    "`{}` branches on a floating-point comparison (`{op}`) on the sharded drive path",
                    n.display
                ),
                subject: op,
                chain: chain.clone(),
            });
        }
    }
    out
}

//! Pass-3 dataflow rules: hot-path allocation discipline and
//! parallelism discipline.
//!
//! Both families are transitive twins of invariants the test suite
//! enforces dynamically at single points:
//!
//! * [`hot_path`] — **NF-ALLOC-001/002**: the counting-allocator test
//!   (`crates/core/tests/alloc_discipline.rs`) proves the steady-state
//!   slot loop performs zero heap allocations *on the configurations
//!   it drives*; the static rules flag every allocation site reachable
//!   from a phase function on any path, so a regression is caught at
//!   review time rather than on whichever path a test happens to
//!   exercise.
//! * [`par`] — **NF-PAR-001/002**: the runner's golden tests prove
//!   parallel == serial *for the reducers they run*; the static rules
//!   ban interior mutability and unordered-iteration sources on every
//!   path reachable from the work-stealing pool, including every
//!   `Reduce::map`/`fold` impl the conservative call graph links in.
//!
//! * [`shard`] — **NF-SHARD-001/002** and **NF-FLOAT-001/002**: the
//!   `parallel_equivalence` proptest proves parallel == serial *for
//!   the shard counts it samples*; the static rules ban full-fleet
//!   state access and direct bus dispatch downstream of any sweep
//!   body, and float accumulation/comparison on the sharded drive
//!   path — the invariants that make one FNV-1a golden pin every
//!   thread count at once.
//!
//! Like [`crate::reach`], diagnostics omit line numbers from their
//! messages (keeping the baseline stable as code drifts) and carry the
//! witness call chain in [`crate::engine::Violation::chain`].

pub(crate) mod hot_path;
pub(crate) mod par;
pub(crate) mod shard;
